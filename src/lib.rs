//! # zpl-fusion
//!
//! A reproduction of *"The Implementation and Evaluation of Fusion and
//! Contraction in Array Languages"* (E. C. Lewis, C. Lin, L. Snyder;
//! PLDI 1998) as a Rust workspace.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`lang`] — the ZPL-like array language frontend (`zlang`).
//! * [`fusion`] — the paper's contribution: array-statement normalization,
//!   unconstrained distance vectors, the array statement dependence graph,
//!   statement fusion, array contraction, loop-structure search, and
//!   scalarization (`fusion-core`).
//! * [`loops`] — the scalarized loop-nest IR, printer, and the execution
//!   engines behind the [`Executor`](prelude::Executor) API: the
//!   tree-walking interpreter, the bytecode VM (checked, verified, and
//!   parallel tiled variants) (`loopir`).
//! * [`sim`] — the simulated machine: cache simulator and machine cost
//!   models (`machine`).
//! * [`par`] — the simulated parallel runtime: block distribution, ghost
//!   communication, communication optimizations (`runtime`).
//! * [`models`] — commercial-compiler behavior models and the paper's
//!   Figure 5 fragments (`compilers`).
//! * [`workloads`] — the paper's six benchmarks in `zlang` (`benchmarks`).
//!
//! # Quick start
//!
//! Compile a program, optimize it at the `C2` level (fuse + contract
//! compiler *and* user arrays — the paper's headline configuration), and
//! run it. Execution goes through an [`Engine`](prelude::Engine): the
//! default bytecode [`Vm`](loops::Vm), its verified and parallel tiled
//! (`vm-par`) variants, or the reference tree-walking
//! [`Interp`](loops::Interp) — all produce bit-identical results (at any
//! thread count) and, under an address-consuming observer, identical
//! memory-access streams.
//!
//! ```
//! # fn main() -> Result<(), zpl_fusion::Error> {
//! use zpl_fusion::prelude::*;
//!
//! let src = r#"
//!     program demo;
//!     config n : int = 32;
//!     region R = [1..n, 1..n];
//!     var A, B, C : [R] float;
//!     begin
//!       [R] B := A + A;     -- B is a user temporary...
//!       [R] C := B * B;     -- ...consumed only here
//!     end
//! "#;
//! let program = zpl_fusion::lang::compile(src)?;
//! let opt = Pipeline::new(Level::C2).optimize(&program);
//! // B was contracted: the scalarized code allocates fewer arrays.
//! assert!(opt.contracted.len() == 1);
//! let binding = ConfigBinding::defaults(&opt.scalarized.program);
//! let mut exec = Engine::default().executor(&opt.scalarized, binding)?;
//! let outcome = exec.execute(&mut NoopObserver)?;
//! assert_eq!(outcome.stats.arrays_allocated, 2); // A and C only
//! println!("checksum = {}", outcome.checksum());
//! # Ok(())
//! # }
//! ```

pub use benchmarks as workloads;
pub use compilers as models;
pub use fusion_core as fusion;
pub use loopir as loops;
pub use machine as sim;
pub use runtime as par;
pub use zlang as lang;

mod error;
pub use error::Error;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::Error;
    pub use fusion_core::pipeline::{Level, Pipeline};
    pub use fusion_core::{Diagnostic, VerifyLevel};
    pub use loopir::{
        Engine, ExecOpts, Executor, Interp, NoopObserver, RunOutcome, SharedProgram, TileStats,
        VerifyDiagnostic, Vm,
    };
    pub use zlang::ir::ConfigBinding;
}
