//! `zlc` — the zpl-fusion compiler driver.
//!
//! Compile a `zlang` program, optimize it at a chosen level, inspect every
//! intermediate representation, and execute it on a simulated machine.
//!
//! ```text
//! zlc <file.zl> [options]
//!
//! options:
//!   --level <baseline|f1|c1|f2|f3|c2|c2+f3|c2+f4>   (default c2)
//!                                 append `+dse` and/or `+rce` to also run
//!                                 the array-level cleanup passes, e.g.
//!                                 `--level c2+f3+dse+rce`
//!   --dimension-contraction       enable lower-dimensional contraction
//!   --spatial-cap <k>             bound pairwise fusion to k array streams
//!   --favor-comm                  Section 5.5 favor-communication policy
//!   --print <ir|loops|asdg|report|source>   what to print (repeatable)
//!   --emit <pass>                 dump the IR snapshot taken right after
//!                                 the named pass (e.g. `normalize`, `dse`,
//!                                 `fuse-contraction`, `contract`,
//!                                 `scalarize`)
//!   --verify                      re-check every pipeline stage and the
//!                                 compiled bytecode; report diagnostics
//!   --run                         execute and print scalars + statistics
//!   --engine <interp|vm|vm-verified|vm-par>   execution engine (default vm)
//!   --threads <n>                 worker threads for --engine vm-par
//!                                 (default 0 = auto)
//!   --machine <t3e|sp2|paragon>   simulate on a machine model (with --run)
//!   --procs <p>                   simulated processors (default 1)
//!   --set <name=value>            override an integer config (repeatable)
//!   --supervise                   run under the fault-tolerant supervisor
//!                                 (degrades engine/level on faults)
//!   --deadline-ms <n>             wall-clock budget per supervised attempt
//!   --fuel <n>                    instruction budget per supervised attempt
//!   --inject <plan>               install a deterministic fault plan, e.g.
//!                                 `seed=42,vm-trap` or `seed=1,comm-drop:0.5`
//! ```

use fusion_core::pass::PassId;
use fusion_core::pipeline::{Level, Pipeline};
use fusion_core::supervisor::{Budgets, Supervisor};
use fusion_core::verify::Severity;
use fusion_core::VerifyLevel;
use loopir::{Engine, Vm};
use machine::presets::MachineKind;
use runtime::{simulate, simulate_outcome, CommPolicy, ExecConfig, SimResult};
use std::cell::RefCell;
use std::process::ExitCode;
use std::time::Duration;
use testkit::faults::{self, FaultPlan};
use zlang::error::render_diagnostic;
use zlang::ir::{ConfigBinding, Program};

struct Options {
    file: String,
    level: Level,
    dse: bool,
    rce: bool,
    dimension_contraction: bool,
    spatial_cap: Option<usize>,
    favor_comm: bool,
    prints: Vec<String>,
    emit: Option<PassId>,
    verify: bool,
    run: bool,
    engine: Engine,
    threads: usize,
    machine: Option<MachineKind>,
    procs: u64,
    sets: Vec<(String, i64)>,
    supervise: bool,
    deadline_ms: Option<u64>,
    fuel: Option<u64>,
    inject: Option<String>,
}

fn usage(msg: &str) -> ExitCode {
    eprint!("{}", render_diagnostic("error", "cli", msg, None, &[]));
    eprintln!(
        "usage: zlc <file.zl> [--level L[+dse][+rce]] [--dimension-contraction]\n\
         \x20          [--spatial-cap K] [--favor-comm]\n\
         \x20          [--print ir|loops|asdg|report|source]... [--emit PASS] [--verify]\n\
         \x20          [--run] [--engine interp|vm|vm-verified|vm-par] [--threads N]\n\
         \x20          [--machine t3e|sp2|paragon] [--procs P] [--set name=value]...\n\
         \x20          [--supervise] [--deadline-ms N] [--fuel N] [--inject PLAN]"
    );
    ExitCode::from(2)
}

/// Parses a `--level` spec: a paper level name, optionally followed by
/// `+dse` / `+rce` suffixes (in any order) enabling the array-level
/// cleanup passes that no paper level runs.
fn parse_level(s: &str) -> Option<(Level, bool, bool)> {
    let (mut base, mut dse, mut rce) = (s, false, false);
    loop {
        if let Some(rest) = base.strip_suffix("+dse") {
            base = rest;
            dse = true;
        } else if let Some(rest) = base.strip_suffix("+rce") {
            base = rest;
            rce = true;
        } else {
            break;
        }
    }
    let level = Level::all().into_iter().find(|l| l.name() == base)?;
    Some((level, dse, rce))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        file: String::new(),
        level: Level::C2,
        dse: false,
        rce: false,
        dimension_contraction: false,
        spatial_cap: None,
        favor_comm: false,
        prints: Vec::new(),
        emit: None,
        verify: false,
        run: false,
        engine: Engine::default(),
        threads: 0,
        machine: None,
        procs: 1,
        sets: Vec::new(),
        supervise: false,
        deadline_ms: None,
        fuel: None,
        inject: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--level" => {
                let v = value("--level")?;
                let (level, dse, rce) =
                    parse_level(&v).ok_or_else(|| format!("unknown level `{v}`"))?;
                opts.level = level;
                opts.dse = dse;
                opts.rce = rce;
            }
            "--dimension-contraction" => opts.dimension_contraction = true,
            "--spatial-cap" => {
                opts.spatial_cap = Some(
                    value("--spatial-cap")?
                        .parse()
                        .map_err(|_| "bad cap".to_string())?,
                );
            }
            "--favor-comm" => opts.favor_comm = true,
            "--print" => opts.prints.push(value("--print")?),
            "--emit" => {
                let v = value("--emit")?;
                opts.emit = Some(PassId::from_name(&v).ok_or_else(|| {
                    format!(
                        "unknown pass `{v}` (expected one of: {})",
                        PassId::all().map(|p| p.name()).join(", ")
                    )
                })?);
            }
            "--verify" => opts.verify = true,
            "--run" => opts.run = true,
            "--engine" => {
                opts.engine = value("--engine")?.parse()?;
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "bad threads".to_string())?;
            }
            "--machine" => {
                opts.machine = Some(match value("--machine")?.as_str() {
                    "t3e" => MachineKind::T3e,
                    "sp2" => MachineKind::Sp2,
                    "paragon" => MachineKind::Paragon,
                    m => return Err(format!("unknown machine `{m}`")),
                });
            }
            "--procs" => {
                opts.procs = value("--procs")?
                    .parse()
                    .map_err(|_| "bad procs".to_string())?;
            }
            "--set" => {
                let v = value("--set")?;
                let (name, val) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--set wants name=value, got `{v}`"))?;
                opts.sets.push((
                    name.to_string(),
                    val.parse().map_err(|_| format!("bad value in `{v}`"))?,
                ));
            }
            "--supervise" => opts.supervise = true,
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|_| "bad deadline".to_string())?,
                );
            }
            "--fuel" => {
                opts.fuel = Some(
                    value("--fuel")?
                        .parse()
                        .map_err(|_| "bad fuel".to_string())?,
                );
            }
            "--inject" => opts.inject = Some(value("--inject")?),
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            file => {
                if !opts.file.is_empty() {
                    return Err("more than one input file".to_string());
                }
                opts.file = file.to_string();
            }
        }
    }
    if opts.file.is_empty() {
        return Err("no input file".to_string());
    }
    Ok(opts)
}

/// Builds a config binding for `program` from `--set` overrides, then
/// sanity-checks that the resulting region extents are allocatable:
/// a config like `--set n=9999999999` must produce a diagnostic, not a
/// capacity-overflow panic deep inside the allocator.
fn checked_binding(program: &Program, sets: &[(String, i64)]) -> Result<ConfigBinding, String> {
    let mut binding = ConfigBinding::defaults(program);
    for (name, value) in sets {
        if !binding.set_by_name(program, name, *value) {
            return Err(format!("no config named `{name}`"));
        }
    }
    // Estimate total allocation with overflow-proof arithmetic.
    const MAX_BYTES: u128 = 1 << 40; // 1 TiB
    let mut total: u128 = 0;
    for array in &program.arrays {
        let region = program.region(array.region);
        let mut elems: u128 = 1;
        for (lo, hi) in region.bounds(&binding) {
            let extent = (hi as i128 - lo as i128 + 1).max(0) as u128;
            elems = elems.saturating_mul(extent);
        }
        total = total.saturating_add(elems.saturating_mul(8));
        if total > MAX_BYTES {
            return Err(format!(
                "config binding allocates over 1 TiB (array `{}` on region `{}`); \
                 reduce the bound set with --set",
                array.name, region.name
            ));
        }
    }
    Ok(binding)
}

fn fail(code: &str, message: &str, location: Option<&str>) -> ExitCode {
    eprint!(
        "{}",
        render_diagnostic("error", code, message, location, &[])
    );
    ExitCode::FAILURE
}

/// The `--supervise` path: run the program under the fault-tolerant
/// supervisor, attaching the machine simulation as a backend when
/// requested, and print the outcome plus the attempt trail.
fn run_supervised(opts: &Options, program: &Program) -> ExitCode {
    let budgets = Budgets {
        deadline: opts.deadline_ms.map(Duration::from_millis),
        fuel: opts.fuel,
        ..Budgets::none()
    };
    let last_sim: RefCell<Option<SimResult>> = RefCell::new(None);
    let last_sim_ref = &last_sim;
    let mut sup = Supervisor::new(opts.level, opts.engine)
        .with_budgets(budgets)
        .with_threads(opts.threads);
    for (name, value) in &opts.sets {
        sup = sup.with_binding(name, *value);
    }
    if let Some(machine) = opts.machine.map(|k| k.machine()) {
        let procs = opts.procs;
        let threads = opts.threads;
        sup = sup.with_sim(move |sp, binding, engine, limits| {
            let cfg = ExecConfig {
                machine: machine.clone(),
                procs,
                policy: CommPolicy::default(),
                engine,
                threads,
                limits,
            };
            let (outcome, sim) = simulate_outcome(sp, binding.clone(), &cfg)?;
            *last_sim_ref.borrow_mut() = Some(sim);
            Ok(outcome)
        });
    }
    match sup.run_program(program) {
        Ok(run) => {
            for (i, s) in program.scalars.iter().enumerate() {
                println!(
                    "{} = {}",
                    s.name,
                    run.outcome.scalar(zlang::ir::ScalarId(i as u32))
                );
            }
            let stats = &run.outcome.stats;
            println!(
                "-- {} points, {} loads, {} stores, {} flops, peak {} bytes",
                stats.points, stats.loads, stats.stores, stats.flops, stats.peak_bytes
            );
            if let Some(sim) = last_sim.borrow().as_ref() {
                println!(
                    "-- simulated x{}: {:.3} ms ({} msgs, {} bytes, {} retries)",
                    opts.procs,
                    sim.total_ms(),
                    sim.comm.messages,
                    sim.comm.bytes,
                    sim.comm.retries,
                );
            }
            print!("{}", run.report.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprint!(
                "{}",
                render_diagnostic("error", "supervisor", &e.to_string(), None, &[])
            );
            eprint!("{}", e.report.render());
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };

    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            return fail("io", &format!("cannot read {}: {e}", opts.file), None);
        }
    };
    let program = match zlang::compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprint!("{}", e.render(&opts.file));
            return ExitCode::FAILURE;
        }
    };

    // Validate config overrides against the source program up front, so
    // every later stage works with a known-sane binding.
    if let Err(msg) = checked_binding(&program, &opts.sets) {
        return fail("config", &msg, Some(&opts.file));
    }

    let _fault_guard = match &opts.inject {
        None => None,
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(plan) => Some(faults::install(plan)),
            Err(e) => return usage(&format!("bad --inject plan: {e}")),
        },
    };

    if opts.supervise {
        return run_supervised(&opts, &program);
    }

    let mut pipeline = Pipeline::new(opts.level);
    if opts.dse {
        pipeline = pipeline.with_dse();
    }
    if opts.rce {
        pipeline = pipeline.with_rce();
    }
    if let Some(pass) = opts.emit {
        pipeline = pipeline.with_emit(pass);
    }
    if opts.dimension_contraction {
        pipeline = pipeline.with_dimension_contraction();
    }
    if let Some(cap) = opts.spatial_cap {
        pipeline = pipeline.with_spatial_cap(cap);
    }
    if opts.favor_comm {
        pipeline = pipeline.with_forbidden(runtime::comm::favor_comm_pairs);
    }
    if opts.verify {
        pipeline = pipeline.with_verify(VerifyLevel::Always);
    }
    let opt = pipeline.optimize(&program);

    if let Some(pass) = opts.emit {
        match &opt.emitted {
            Some(snapshot) => print!("{snapshot}"),
            None => {
                return fail(
                    "emit",
                    &format!(
                        "pass `{pass}` did not run at level {}{}{}",
                        opts.level.name(),
                        if opts.dse { "+dse" } else { "" },
                        if opts.rce { "+rce" } else { "" },
                    ),
                    Some(&opts.file),
                );
            }
        }
    }

    if opts.verify {
        let binding = match checked_binding(&opt.scalarized.program, &opts.sets) {
            Ok(b) => b,
            Err(msg) => return fail("config", &msg, Some(&opts.file)),
        };
        let mut errors = 0usize;
        let mut warnings = 0usize;
        for d in &opt.diagnostics {
            eprint!("{}", d.render());
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
        }
        match Vm::new(&opt.scalarized, binding) {
            Ok(mut vm) => {
                if let Err(diags) = vm.verify() {
                    for d in &diags {
                        eprint!("{}", d.render());
                    }
                    errors += diags.len();
                }
            }
            Err(e) => {
                eprintln!("zlc: cannot compile bytecode for verification: {e}");
                errors += 1;
            }
        }
        if errors > 0 {
            eprintln!(
                "zlc: verify: {errors} error(s), {warnings} warning(s) at level {}",
                opts.level.name()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "verify: ok (pipeline stages and bytecode at level {}{})",
            opts.level.name(),
            if warnings > 0 {
                format!("; {warnings} warning(s)")
            } else {
                String::new()
            }
        );
    }

    for what in &opts.prints {
        match what.as_str() {
            "ir" => print!("{}", zlang::pretty::program(&program)),
            "source" => print!("{}", zlang::pretty::source(&program)),
            "loops" => print!("{}", loopir::printer::print(&opt.scalarized)),
            "asdg" => {
                // The pipeline's cached per-block analyses, not a rebuild:
                // what is printed is exactly what fusion consumed.
                for (bi, (block, detail)) in opt.norm.blocks.iter().zip(&opt.details).enumerate() {
                    println!("// block {bi}");
                    print!(
                        "{}",
                        fusion_core::asdg::to_dot(&opt.norm.program, block, &detail.asdg)
                    );
                }
            }
            "report" => {
                print!("{}", fusion_core::explain::report(&opt));
                println!(
                    "arrays: {} -> {} ({} nests; {} defs contracted{})",
                    opt.report.before(),
                    opt.report.after(),
                    opt.report.nests,
                    opt.report.contracted_defs,
                    if opt.report.dimension_contracted > 0 {
                        format!("; {} dimension-contracted", opt.report.dimension_contracted)
                    } else {
                        String::new()
                    }
                );
            }
            other => {
                eprintln!("zlc: unknown --print target `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if opts.run {
        let binding = match checked_binding(&opt.scalarized.program, &opts.sets) {
            Ok(b) => b,
            Err(msg) => return fail("config", &msg, Some(&opts.file)),
        };
        match opts.machine {
            None => {
                let outcome = opts
                    .engine
                    .executor_with(
                        &opt.scalarized,
                        binding,
                        loopir::ExecOpts::with_threads(opts.threads),
                    )
                    .and_then(|mut exec| exec.execute(&mut loopir::NoopObserver));
                match outcome {
                    Ok(out) => {
                        for (i, s) in opt.scalarized.program.scalars.iter().enumerate() {
                            println!("{} = {}", s.name, out.scalar(zlang::ir::ScalarId(i as u32)));
                        }
                        let stats = &out.stats;
                        println!(
                            "-- {} points, {} loads, {} stores, {} flops, peak {} bytes",
                            stats.points, stats.loads, stats.stores, stats.flops, stats.peak_bytes
                        );
                    }
                    Err(e) => {
                        return fail("exec", &e.to_string(), Some(&opts.file));
                    }
                }
            }
            Some(kind) => {
                let cfg = ExecConfig {
                    machine: kind.machine(),
                    procs: opts.procs,
                    policy: CommPolicy::default(),
                    engine: opts.engine,
                    threads: opts.threads,
                    limits: loopir::ExecLimits::none(),
                };
                match simulate(&opt.scalarized, binding, &cfg) {
                    Ok(r) => {
                        println!(
                            "{} x{}: {:.3} ms simulated ({:.3} ms compute, {:.3} ms comm, \
                             {} msgs, {} bytes, {} l1 misses, peak {} bytes)",
                            kind.name(),
                            opts.procs,
                            r.total_ms(),
                            r.compute_ns / 1e6,
                            r.comm.effective_ns() / 1e6,
                            r.comm.messages,
                            r.comm.bytes,
                            r.mem.l1_misses,
                            r.run.peak_bytes,
                        );
                    }
                    Err(e) => {
                        return fail("exec", &e.to_string(), Some(&opts.file));
                    }
                }
            }
        }
    }

    ExitCode::SUCCESS
}
