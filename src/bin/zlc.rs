//! `zlc` — the zpl-fusion compiler driver.
//!
//! Compile a `zlang` program, optimize it at a chosen level, inspect every
//! intermediate representation, and execute it on a simulated machine.
//!
//! ```text
//! zlc <file.zl> [options]
//!
//! options:
//!   --level <baseline|f1|c1|f2|f3|c2|c2+f3|c2+f4>   (default c2)
//!   --dimension-contraction       enable lower-dimensional contraction
//!   --spatial-cap <k>             bound pairwise fusion to k array streams
//!   --favor-comm                  Section 5.5 favor-communication policy
//!   --print <ir|loops|asdg|report|source>   what to print (repeatable)
//!   --verify                      re-check every pipeline stage and the
//!                                 compiled bytecode; report diagnostics
//!   --run                         execute and print scalars + statistics
//!   --engine <interp|vm|vm-verified>   execution engine (default vm)
//!   --machine <t3e|sp2|paragon>   simulate on a machine model (with --run)
//!   --procs <p>                   simulated processors (default 1)
//!   --set <name=value>            override an integer config (repeatable)
//! ```

use fusion_core::pipeline::{Level, Pipeline};
use fusion_core::verify::Severity;
use fusion_core::VerifyLevel;
use loopir::{Engine, Vm};
use machine::presets::MachineKind;
use runtime::{simulate, CommPolicy, ExecConfig};
use std::process::ExitCode;
use zlang::ir::ConfigBinding;

struct Options {
    file: String,
    level: Level,
    dimension_contraction: bool,
    spatial_cap: Option<usize>,
    favor_comm: bool,
    prints: Vec<String>,
    verify: bool,
    run: bool,
    engine: Engine,
    machine: Option<MachineKind>,
    procs: u64,
    sets: Vec<(String, i64)>,
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("zlc: {msg}");
    eprintln!(
        "usage: zlc <file.zl> [--level L] [--dimension-contraction] [--spatial-cap K]\n\
         \x20          [--favor-comm] [--print ir|loops|asdg|report|source]... [--verify]\n\
         \x20          [--run] [--engine interp|vm|vm-verified] [--machine t3e|sp2|paragon]\n\
         \x20          [--procs P] [--set name=value]..."
    );
    ExitCode::from(2)
}

fn parse_level(s: &str) -> Option<Level> {
    Level::all().into_iter().find(|l| l.name() == s)
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        file: String::new(),
        level: Level::C2,
        dimension_contraction: false,
        spatial_cap: None,
        favor_comm: false,
        prints: Vec::new(),
        verify: false,
        run: false,
        engine: Engine::default(),
        machine: None,
        procs: 1,
        sets: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--level" => {
                let v = value("--level")?;
                opts.level = parse_level(&v).ok_or_else(|| format!("unknown level `{v}`"))?;
            }
            "--dimension-contraction" => opts.dimension_contraction = true,
            "--spatial-cap" => {
                opts.spatial_cap = Some(
                    value("--spatial-cap")?
                        .parse()
                        .map_err(|_| "bad cap".to_string())?,
                );
            }
            "--favor-comm" => opts.favor_comm = true,
            "--print" => opts.prints.push(value("--print")?),
            "--verify" => opts.verify = true,
            "--run" => opts.run = true,
            "--engine" => {
                opts.engine = value("--engine")?.parse()?;
            }
            "--machine" => {
                opts.machine = Some(match value("--machine")?.as_str() {
                    "t3e" => MachineKind::T3e,
                    "sp2" => MachineKind::Sp2,
                    "paragon" => MachineKind::Paragon,
                    m => return Err(format!("unknown machine `{m}`")),
                });
            }
            "--procs" => {
                opts.procs = value("--procs")?
                    .parse()
                    .map_err(|_| "bad procs".to_string())?;
            }
            "--set" => {
                let v = value("--set")?;
                let (name, val) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--set wants name=value, got `{v}`"))?;
                opts.sets.push((
                    name.to_string(),
                    val.parse().map_err(|_| format!("bad value in `{v}`"))?,
                ));
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            file => {
                if !opts.file.is_empty() {
                    return Err("more than one input file".to_string());
                }
                opts.file = file.to_string();
            }
        }
    }
    if opts.file.is_empty() {
        return Err("no input file".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };

    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("zlc: cannot read {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let program = match zlang::compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("zlc: {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };

    let mut pipeline = Pipeline::new(opts.level);
    if opts.dimension_contraction {
        pipeline = pipeline.with_dimension_contraction();
    }
    if let Some(cap) = opts.spatial_cap {
        pipeline = pipeline.with_spatial_cap(cap);
    }
    if opts.favor_comm {
        pipeline = pipeline.with_forbidden(runtime::comm::favor_comm_pairs);
    }
    if opts.verify {
        pipeline = pipeline.with_verify(VerifyLevel::Always);
    }
    let opt = pipeline.optimize(&program);

    if opts.verify {
        let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
        for (name, value) in &opts.sets {
            if !binding.set_by_name(&opt.scalarized.program, name, *value) {
                eprintln!("zlc: no config named `{name}`");
                return ExitCode::FAILURE;
            }
        }
        let mut errors = 0usize;
        let mut warnings = 0usize;
        for d in &opt.diagnostics {
            eprint!("{}", d.render());
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
        }
        match Vm::new(&opt.scalarized, binding) {
            Ok(mut vm) => {
                if let Err(diags) = vm.verify() {
                    for d in &diags {
                        eprint!("{}", d.render());
                    }
                    errors += diags.len();
                }
            }
            Err(e) => {
                eprintln!("zlc: cannot compile bytecode for verification: {e}");
                errors += 1;
            }
        }
        if errors > 0 {
            eprintln!(
                "zlc: verify: {errors} error(s), {warnings} warning(s) at level {}",
                opts.level.name()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "verify: ok (pipeline stages and bytecode at level {}{})",
            opts.level.name(),
            if warnings > 0 {
                format!("; {warnings} warning(s)")
            } else {
                String::new()
            }
        );
    }

    for what in &opts.prints {
        match what.as_str() {
            "ir" => print!("{}", zlang::pretty::program(&program)),
            "source" => print!("{}", zlang::pretty::source(&program)),
            "loops" => print!("{}", loopir::printer::print(&opt.scalarized)),
            "asdg" => {
                for (bi, block) in opt.norm.blocks.iter().enumerate() {
                    println!("// block {bi}");
                    let g = fusion_core::asdg::build(&opt.norm.program, block);
                    print!(
                        "{}",
                        fusion_core::asdg::to_dot(&opt.norm.program, block, &g)
                    );
                }
            }
            "report" => {
                print!("{}", fusion_core::explain::report(&opt));
                println!(
                    "arrays: {} -> {} ({} nests; {} defs contracted{})",
                    opt.report.before(),
                    opt.report.after(),
                    opt.report.nests,
                    opt.report.contracted_defs,
                    if opt.report.dimension_contracted > 0 {
                        format!("; {} dimension-contracted", opt.report.dimension_contracted)
                    } else {
                        String::new()
                    }
                );
            }
            other => {
                eprintln!("zlc: unknown --print target `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if opts.run {
        let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
        for (name, value) in &opts.sets {
            if !binding.set_by_name(&opt.scalarized.program, name, *value) {
                eprintln!("zlc: no config named `{name}`");
                return ExitCode::FAILURE;
            }
        }
        match opts.machine {
            None => {
                let outcome = opts
                    .engine
                    .executor(&opt.scalarized, binding)
                    .and_then(|mut exec| exec.execute(&mut loopir::NoopObserver));
                match outcome {
                    Ok(out) => {
                        for (i, s) in opt.scalarized.program.scalars.iter().enumerate() {
                            println!("{} = {}", s.name, out.scalar(zlang::ir::ScalarId(i as u32)));
                        }
                        let stats = &out.stats;
                        println!(
                            "-- {} points, {} loads, {} stores, {} flops, peak {} bytes",
                            stats.points, stats.loads, stats.stores, stats.flops, stats.peak_bytes
                        );
                    }
                    Err(e) => {
                        eprintln!("zlc: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Some(kind) => {
                let cfg = ExecConfig {
                    machine: kind.machine(),
                    procs: opts.procs,
                    policy: CommPolicy::default(),
                    engine: opts.engine,
                };
                match simulate(&opt.scalarized, binding, &cfg) {
                    Ok(r) => {
                        println!(
                            "{} x{}: {:.3} ms simulated ({:.3} ms compute, {:.3} ms comm, \
                             {} msgs, {} bytes, {} l1 misses, peak {} bytes)",
                            kind.name(),
                            opts.procs,
                            r.total_ms(),
                            r.compute_ns / 1e6,
                            r.comm.effective_ns() / 1e6,
                            r.comm.messages,
                            r.comm.bytes,
                            r.mem.l1_misses,
                            r.run.peak_bytes,
                        );
                    }
                    Err(e) => {
                        eprintln!("zlc: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }

    ExitCode::SUCCESS
}
