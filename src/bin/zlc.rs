//! `zlc` — the zpl-fusion compiler driver.
//!
//! Compile a `zlang` program, optimize it at a chosen level, inspect every
//! intermediate representation, and execute it on a simulated machine.
//!
//! ```text
//! zlc <file.zl> [options]
//! zlc serve <file.zl>... [--requests N] [--workers N] [run options]
//!
//! options:
//!   --level <baseline|f1|c1|f2|f3|c2|c2+f3|c2+f4>   (default c2)
//!                                 append `+dse`, `+rce`, and/or `+rce2` to
//!                                 also run the array-level cleanup passes,
//!                                 e.g. `--level c2+f3+dse+rce2`
//!   --dimension-contraction       enable lower-dimensional contraction
//!   --spatial-cap <k>             bound pairwise fusion to k array streams
//!   --favor-comm                  Section 5.5 favor-communication policy
//!   --print <ir|loops|bytecode|asdg|avail|report|source|hash>   what to
//!                                 print (repeatable); `avail` dumps the
//!                                 offset-lattice availability facts;
//!                                 `bytecode` disassembles the compiled VM
//!                                 program for the selected engine (the
//!                                 superinstruction/lane form under
//!                                 `--engine vm-simd` or `vm-par`)
//!   --emit <pass>                 dump the IR snapshot taken right after
//!                                 the named pass (e.g. `normalize`, `dse`,
//!                                 `rce2`, `fuse-contraction`, `contract`,
//!                                 `scalarize`)
//!   --list-passes                 list every pass `--emit` accepts and exit
//!   --verify                      re-check every pipeline stage and the
//!                                 compiled bytecode; report diagnostics
//!   --run                         execute and print scalars + statistics
//!   --engine <interp|vm|vm-verified|vm-simd|vm-par>   execution engine
//!                                 (default vm)
//!   --list-engines                list the execution engines and exit
//!   --threads <n>                 worker threads for --engine vm-par
//!                                 (default 0 = auto)
//!   --lanes <n>                   unrolled f64 lanes for --engine vm-simd
//!                                 and vm-par (default 0 = engine default
//!                                 of 4; 1 = scalar dispatch)
//!   --machine <t3e|sp2|paragon>   simulate on a machine model (with --run)
//!   --procs <p>                   simulated processors (default 1)
//!   --set <name=value>            override an integer config (repeatable)
//!   --supervise                   run under the fault-tolerant supervisor
//!                                 (degrades engine/level on faults)
//!   --deadline-ms <n>             wall-clock budget per supervised attempt
//!   --fuel <n>                    instruction budget per supervised attempt
//!   --inject <plan>               install a deterministic fault plan, e.g.
//!                                 `seed=42,vm-trap` or `seed=1,comm-drop:0.5`
//!
//! serve mode:
//!   --requests <n>                total requests, round-robin over the
//!                                 input files (default: one per file)
//!   --workers <n>                 worker threads serving the batch
//!                                 (default 4)
//!   --queue-cap <n>               bound the admission queue (default 0 =
//!                                 unbounded)
//!   --shed <policy>               what to do when the queue is full:
//!                                 reject-newest, drop-oldest, or block
//!                                 (default block)
//!   --retries <n>                 retry transient full-ladder failures up
//!                                 to n times with deterministic backoff
//!                                 (default 0)
//!   --deadline-ms <n>             in serve mode: total per-request
//!                                 deadline measured from admission (queue
//!                                 wait included); expired requests shed
//!   --inject <plan>               in serve mode the plan is installed on
//!                                 every worker, re-seeded per worker
//! ```

use fusion_core::pass::PassId;
use fusion_core::serve::{serve_with, RetryPolicy, ServeOptions, ServeRequest, ShedPolicy};
use fusion_core::verify::Severity;
use fusion_core::{CompileCache, RunRequest};
use loopir::{Engine, Vm};
use machine::presets::MachineKind;
use runtime::{simulate, simulate_outcome, ExecConfig, SimResult};
use std::cell::RefCell;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use testkit::faults::{self, FaultPlan};
use zlang::error::render_diagnostic;
use zlang::ir::{ConfigBinding, Program};

struct Options {
    serve: bool,
    file: String,
    files: Vec<String>,
    requests: usize,
    workers: usize,
    queue_cap: usize,
    shed: ShedPolicy,
    retries: u32,
    request: RunRequest,
    dimension_contraction: bool,
    spatial_cap: Option<usize>,
    favor_comm: bool,
    prints: Vec<String>,
    emit: Option<PassId>,
    run: bool,
    machine: Option<MachineKind>,
    procs: u64,
    supervise: bool,
    inject: Option<String>,
}

fn usage(msg: &str) -> ExitCode {
    eprint!("{}", render_diagnostic("error", "cli", msg, None, &[]));
    eprintln!(
        "usage: zlc <file.zl> [--level L[+dse][+rce][+rce2]] [--dimension-contraction]\n\
         \x20          [--spatial-cap K] [--favor-comm]\n\
         \x20          [--print ir|loops|bytecode|asdg|avail|report|source|hash]... [--emit PASS]\n\
         \x20          [--verify] [--run] [--engine interp|vm|vm-verified|vm-simd|vm-par]\n\
         \x20          [--threads N] [--lanes N]\n\
         \x20          [--machine t3e|sp2|paragon] [--procs P] [--set name=value]...\n\
         \x20          [--supervise] [--deadline-ms N] [--fuel N] [--inject PLAN]\n\
         \x20      zlc serve <file.zl>... [--requests N] [--workers N] [--queue-cap N]\n\
         \x20          [--shed reject-newest|drop-oldest|block] [--retries N] [run options]\n\
         \x20      zlc --list-engines | --list-passes"
    );
    ExitCode::from(2)
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        serve: false,
        file: String::new(),
        files: Vec::new(),
        requests: 0,
        workers: 4,
        queue_cap: 0,
        shed: ShedPolicy::Block,
        retries: 0,
        request: RunRequest::new(),
        dimension_contraction: false,
        spatial_cap: None,
        favor_comm: false,
        prints: Vec::new(),
        emit: None,
        run: false,
        machine: None,
        procs: 1,
        supervise: false,
        inject: None,
    };
    let mut saw_positional = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--level" => {
                let v = value("--level")?;
                opts.request = std::mem::take(&mut opts.request).with_level_spec(&v)?;
            }
            "--dimension-contraction" => opts.dimension_contraction = true,
            "--spatial-cap" => {
                opts.spatial_cap = Some(
                    value("--spatial-cap")?
                        .parse()
                        .map_err(|_| "bad cap".to_string())?,
                );
            }
            "--favor-comm" => opts.favor_comm = true,
            "--print" => opts.prints.push(value("--print")?),
            "--emit" => {
                let v = value("--emit")?;
                opts.emit = Some(PassId::from_name(&v).ok_or_else(|| {
                    format!(
                        "unknown pass `{v}` (expected one of: {})",
                        PassId::all().map(|p| p.name()).join(", ")
                    )
                })?);
            }
            "--verify" => opts.request.verify = true,
            "--run" => opts.run = true,
            "--engine" => {
                let v = value("--engine")?;
                opts.request = std::mem::take(&mut opts.request).with_engine_name(&v)?;
            }
            "--threads" => {
                opts.request.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "bad threads".to_string())?;
            }
            "--lanes" => {
                opts.request.lanes = value("--lanes")?
                    .parse()
                    .map_err(|_| "bad lanes".to_string())?;
            }
            "--machine" => {
                opts.machine = Some(match value("--machine")?.as_str() {
                    "t3e" => MachineKind::T3e,
                    "sp2" => MachineKind::Sp2,
                    "paragon" => MachineKind::Paragon,
                    m => return Err(format!("unknown machine `{m}`")),
                });
            }
            "--procs" => {
                opts.procs = value("--procs")?
                    .parse()
                    .map_err(|_| "bad procs".to_string())?;
            }
            "--set" => {
                let v = value("--set")?;
                let (name, val) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--set wants name=value, got `{v}`"))?;
                let val = val.parse().map_err(|_| format!("bad value in `{v}`"))?;
                opts.request = std::mem::take(&mut opts.request).with_set(name, val);
            }
            "--supervise" => opts.supervise = true,
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "bad deadline".to_string())?;
                opts.request =
                    std::mem::take(&mut opts.request).with_deadline(Duration::from_millis(ms));
            }
            "--fuel" => {
                let fuel = value("--fuel")?
                    .parse()
                    .map_err(|_| "bad fuel".to_string())?;
                opts.request = std::mem::take(&mut opts.request).with_fuel(fuel);
            }
            "--inject" => opts.inject = Some(value("--inject")?),
            "--requests" => {
                opts.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "bad request count".to_string())?;
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "bad worker count".to_string())?;
            }
            "--queue-cap" => {
                opts.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|_| "bad queue cap".to_string())?;
            }
            "--shed" => {
                opts.shed = value("--shed")?.parse()?;
            }
            "--retries" => {
                opts.retries = value("--retries")?
                    .parse()
                    .map_err(|_| "bad retry count".to_string())?;
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            "serve" if !saw_positional => {
                saw_positional = true;
                opts.serve = true;
            }
            file => {
                saw_positional = true;
                if opts.serve {
                    opts.files.push(file.to_string());
                } else {
                    if !opts.file.is_empty() {
                        return Err("more than one input file".to_string());
                    }
                    opts.file = file.to_string();
                }
            }
        }
    }
    if opts.serve {
        if opts.files.is_empty() {
            return Err("serve needs at least one input file".to_string());
        }
    } else if opts.file.is_empty() {
        return Err("no input file".to_string());
    }
    Ok(opts)
}

/// Builds a config binding for `program` from `--set` overrides, then
/// sanity-checks that the resulting region extents are allocatable:
/// a config like `--set n=9999999999` must produce a diagnostic, not a
/// capacity-overflow panic deep inside the allocator.
fn checked_binding(program: &Program, sets: &[(String, i64)]) -> Result<ConfigBinding, String> {
    let mut binding = ConfigBinding::defaults(program);
    for (name, value) in sets {
        if !binding.set_by_name(program, name, *value) {
            return Err(format!("no config named `{name}`"));
        }
    }
    // Estimate total allocation with overflow-proof arithmetic.
    const MAX_BYTES: u128 = 1 << 40; // 1 TiB
    let mut total: u128 = 0;
    for array in &program.arrays {
        let region = program.region(array.region);
        let mut elems: u128 = 1;
        for (lo, hi) in region.bounds(&binding) {
            let extent = (hi as i128 - lo as i128 + 1).max(0) as u128;
            elems = elems.saturating_mul(extent);
        }
        total = total.saturating_add(elems.saturating_mul(8));
        if total > MAX_BYTES {
            return Err(format!(
                "config binding allocates over 1 TiB (array `{}` on region `{}`); \
                 reduce the bound set with --set",
                array.name, region.name
            ));
        }
    }
    Ok(binding)
}

fn fail(code: &str, message: &str, location: Option<&str>) -> ExitCode {
    eprint!(
        "{}",
        render_diagnostic("error", code, message, location, &[])
    );
    ExitCode::FAILURE
}

/// The `--supervise` path: run the program under the fault-tolerant
/// supervisor, attaching the machine simulation as a backend when
/// requested, and print the outcome plus the attempt trail.
fn run_supervised(opts: &Options, program: &Program) -> ExitCode {
    let last_sim: RefCell<Option<SimResult>> = RefCell::new(None);
    let last_sim_ref = &last_sim;
    let mut sup = opts.request.supervisor();
    if let Some(machine) = opts.machine.map(|k| k.machine()) {
        let procs = opts.procs;
        let request = opts.request.clone();
        sup = sup.with_sim(move |sp, binding, engine, limits| {
            // The ladder may have degraded below the requested rung, so
            // the per-attempt engine and limits override the request's.
            let cfg = ExecConfig::from_request(&request, machine.clone(), procs)
                .with_engine(engine)
                .with_limits(limits);
            let (outcome, sim) = simulate_outcome(sp, binding.clone(), &cfg)?;
            *last_sim_ref.borrow_mut() = Some(sim);
            Ok(outcome)
        });
    }
    match sup.run_program(program) {
        Ok(run) => {
            for (i, s) in program.scalars.iter().enumerate() {
                println!(
                    "{} = {}",
                    s.name,
                    run.outcome.scalar(zlang::ir::ScalarId(i as u32))
                );
            }
            let stats = &run.outcome.stats;
            println!(
                "-- {} points, {} loads, {} stores, {} flops, peak {} bytes",
                stats.points, stats.loads, stats.stores, stats.flops, stats.peak_bytes
            );
            if let Some(sim) = last_sim.borrow().as_ref() {
                println!(
                    "-- simulated x{}: {:.3} ms ({} msgs, {} bytes, {} retries)",
                    opts.procs,
                    sim.total_ms(),
                    sim.comm.messages,
                    sim.comm.bytes,
                    sim.comm.retries,
                );
            }
            print!("{}", run.report.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprint!(
                "{}",
                render_diagnostic("error", "supervisor", &e.to_string(), None, &[])
            );
            eprint!("{}", e.report.render());
            ExitCode::FAILURE
        }
    }
}

/// The `serve` subcommand: compile-check the input files, expand them to
/// `--requests` round-robin serve requests, run the batch across
/// `--workers` threads over one shared compile cache with admission
/// control, deadlines, retries, and circuit breakers, and print the
/// latency/cache/breaker report.
fn run_serve(opts: &Options) -> ExitCode {
    let mut programs = Vec::new();
    for file in &opts.files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => return fail("io", &format!("cannot read {file}: {e}"), None),
        };
        // Surface parse errors with the file name up front; the serving
        // path itself only reports a one-line failure per request.
        if let Err(e) = zlang::compile(&source) {
            eprint!("{}", e.render(file));
            return ExitCode::FAILURE;
        }
        programs.push((file.clone(), source));
    }
    let total = if opts.requests == 0 {
        programs.len()
    } else {
        opts.requests
    };
    // In serve mode `--deadline-ms` is the total admission-to-completion
    // deadline: queue wait is charged against it, and the supervisor gets
    // only the remainder as each attempt's wall-clock budget.
    let deadline = opts.request.budgets.deadline;
    let batch: Vec<ServeRequest> = (0..total)
        .map(|i| {
            let (name, source) = &programs[i % programs.len()];
            let mut req = ServeRequest::new(name, source, opts.request.clone());
            if let Some(d) = deadline {
                req = req.with_deadline(d);
            }
            req
        })
        .collect();
    let mut serve_opts = ServeOptions::new()
        .with_workers(opts.workers)
        .with_queue_cap(opts.queue_cap)
        .with_shed(opts.shed)
        .with_retry(RetryPolicy::retries(opts.retries));
    if let Some(spec) = &opts.inject {
        match FaultPlan::parse(spec) {
            Ok(plan) => serve_opts = serve_opts.with_faults(plan),
            Err(e) => return usage(&format!("bad --inject plan: {e}")),
        }
    }
    let cache = Arc::new(CompileCache::new());
    let report = serve_with(&batch, &serve_opts, &cache);
    print!("{}", report.render());
    if report.failed() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-engines") {
        for engine in Engine::all() {
            println!("{engine}");
        }
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-passes") {
        for pass in PassId::all() {
            println!("{pass}");
        }
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };

    if opts.serve {
        return run_serve(&opts);
    }

    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            return fail("io", &format!("cannot read {}: {e}", opts.file), None);
        }
    };
    let program = match zlang::compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprint!("{}", e.render(&opts.file));
            return ExitCode::FAILURE;
        }
    };

    // Validate config overrides against the source program up front, so
    // every later stage works with a known-sane binding.
    if let Err(msg) = checked_binding(&program, &opts.request.sets) {
        return fail("config", &msg, Some(&opts.file));
    }

    let _fault_guard = match &opts.inject {
        None => None,
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(plan) => Some(faults::install(plan)),
            Err(e) => return usage(&format!("bad --inject plan: {e}")),
        },
    };

    if opts.supervise {
        return run_supervised(&opts, &program);
    }

    let mut pipeline = opts.request.pipeline();
    if let Some(pass) = opts.emit {
        pipeline = pipeline.with_emit(pass);
    }
    if opts.dimension_contraction {
        pipeline = pipeline.with_dimension_contraction();
    }
    if let Some(cap) = opts.spatial_cap {
        pipeline = pipeline.with_spatial_cap(cap);
    }
    if opts.favor_comm {
        pipeline = pipeline.with_forbidden(runtime::comm::favor_comm_pairs);
    }
    let opt = pipeline.optimize(&program);

    if let Some(pass) = opts.emit {
        match &opt.emitted {
            Some(snapshot) => print!("{snapshot}"),
            None => {
                return fail(
                    "emit",
                    &format!(
                        "pass `{pass}` did not run at level {}",
                        opts.request.level_spec(),
                    ),
                    Some(&opts.file),
                );
            }
        }
    }

    if opts.request.verify {
        let binding = match checked_binding(&opt.scalarized.program, &opts.request.sets) {
            Ok(b) => b,
            Err(msg) => return fail("config", &msg, Some(&opts.file)),
        };
        let mut errors = 0usize;
        let mut warnings = 0usize;
        for d in &opt.diagnostics {
            eprint!("{}", d.render());
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
        }
        match Vm::new(&opt.scalarized, binding) {
            Ok(mut vm) => {
                if let Err(diags) = vm.verify() {
                    for d in &diags {
                        eprint!("{}", d.render());
                    }
                    errors += diags.len();
                }
            }
            Err(e) => {
                eprintln!("zlc: cannot compile bytecode for verification: {e}");
                errors += 1;
            }
        }
        if errors > 0 {
            eprintln!(
                "zlc: verify: {errors} error(s), {warnings} warning(s) at level {}",
                opts.request.level_spec()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "verify: ok (pipeline stages and bytecode at level {}{})",
            opts.request.level_spec(),
            if warnings > 0 {
                format!("; {warnings} warning(s)")
            } else {
                String::new()
            }
        );
    }

    for what in &opts.prints {
        match what.as_str() {
            "ir" => print!("{}", zlang::pretty::program(&program)),
            "source" => print!("{}", zlang::pretty::source(&program)),
            // The compile cache's content digest of the source program
            // (binding-independent; see fusion_core::hash).
            "hash" => println!("{:016x}", fusion_core::hash::program_hash(&program)),
            "loops" => print!("{}", loopir::printer::print(&opt.scalarized)),
            // The compiled bytecode for the selected engine: plain ops
            // for interp/vm/vm-verified, the superinstruction + lane
            // annotation form for vm-simd/vm-par.
            "bytecode" => {
                let binding = match checked_binding(&opt.scalarized.program, &opts.request.sets) {
                    Ok(b) => b,
                    Err(msg) => return fail("config", &msg, Some(&opts.file)),
                };
                let vm = if matches!(opts.request.engine, Engine::VmSimd | Engine::VmPar) {
                    Vm::new_superfused(&opt.scalarized, binding)
                } else {
                    Vm::new(&opt.scalarized, binding)
                };
                match vm {
                    Ok(vm) => print!("{}", vm.disasm()),
                    Err(e) => return fail("compile", &e.to_string(), Some(&opts.file)),
                }
            }
            // The offset-lattice availability facts the +rce2 pass
            // consumes, computed fresh over the normalized program.
            "avail" => print!(
                "{}",
                fusion_core::avail::report(&fusion_core::normal::normalize(&program))
            ),
            "asdg" => {
                // The pipeline's cached per-block analyses, not a rebuild:
                // what is printed is exactly what fusion consumed.
                for (bi, (block, detail)) in opt.norm.blocks.iter().zip(&opt.details).enumerate() {
                    println!("// block {bi}");
                    print!(
                        "{}",
                        fusion_core::asdg::to_dot(&opt.norm.program, block, &detail.asdg)
                    );
                }
            }
            "report" => {
                print!("{}", fusion_core::explain::report(&opt));
                println!(
                    "arrays: {} -> {} ({} nests; {} defs contracted{})",
                    opt.report.before(),
                    opt.report.after(),
                    opt.report.nests,
                    opt.report.contracted_defs,
                    if opt.report.dimension_contracted > 0 {
                        format!("; {} dimension-contracted", opt.report.dimension_contracted)
                    } else {
                        String::new()
                    }
                );
            }
            other => {
                eprintln!("zlc: unknown --print target `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if opts.run {
        let binding = match checked_binding(&opt.scalarized.program, &opts.request.sets) {
            Ok(b) => b,
            Err(msg) => return fail("config", &msg, Some(&opts.file)),
        };
        match opts.machine {
            None => {
                let outcome = opts
                    .request
                    .engine
                    .executor_with(&opt.scalarized, binding, opts.request.exec_opts())
                    .and_then(|mut exec| exec.execute(&mut loopir::NoopObserver));
                match outcome {
                    Ok(out) => {
                        for (i, s) in opt.scalarized.program.scalars.iter().enumerate() {
                            println!("{} = {}", s.name, out.scalar(zlang::ir::ScalarId(i as u32)));
                        }
                        let stats = &out.stats;
                        println!(
                            "-- {} points, {} loads, {} stores, {} flops, peak {} bytes",
                            stats.points, stats.loads, stats.stores, stats.flops, stats.peak_bytes
                        );
                    }
                    Err(e) => {
                        return fail("exec", &e.to_string(), Some(&opts.file));
                    }
                }
            }
            Some(kind) => {
                let cfg = ExecConfig::from_request(&opts.request, kind.machine(), opts.procs);
                match simulate(&opt.scalarized, binding, &cfg) {
                    Ok(r) => {
                        println!(
                            "{} x{}: {:.3} ms simulated ({:.3} ms compute, {:.3} ms comm, \
                             {} msgs, {} bytes, {} l1 misses, peak {} bytes)",
                            kind.name(),
                            opts.procs,
                            r.total_ms(),
                            r.compute_ns / 1e6,
                            r.comm.effective_ns() / 1e6,
                            r.comm.messages,
                            r.comm.bytes,
                            r.mem.l1_misses,
                            r.run.peak_bytes,
                        );
                    }
                    Err(e) => {
                        return fail("exec", &e.to_string(), Some(&opts.file));
                    }
                }
            }
        }
    }

    ExitCode::SUCCESS
}
