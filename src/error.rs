//! The workspace-level error type.
//!
//! The two fallible layers — the `zlang` frontend (lex/parse/sema) and the
//! `loopir` execution engines — each have their own error type. [`Error`]
//! unifies them so applications can use one `Result` type end to end:
//!
//! ```
//! fn run(src: &str) -> Result<f64, zpl_fusion::Error> {
//!     use zpl_fusion::prelude::*;
//!     let program = zpl_fusion::lang::compile(src)?;
//!     let opt = Pipeline::new(Level::C2).optimize(&program);
//!     let binding = ConfigBinding::defaults(&opt.scalarized.program);
//!     let mut exec = Engine::default().executor(&opt.scalarized, binding)?;
//!     Ok(exec.execute(&mut NoopObserver)?.checksum())
//! }
//! assert!(run("program p; begin end").is_ok());
//! assert!(run("progrm p;").is_err());
//! ```

use std::fmt;

/// Any error the workspace can produce: a frontend compile error or an
/// execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A lex, parse, or semantic-analysis error from the `zlang` frontend.
    Compile(zlang::error::Error),
    /// An execution error from either engine (out-of-region access, or a
    /// program the bytecode compiler cannot lower).
    Exec(loopir::ExecError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Compile(e) => e.fmt(f),
            Error::Exec(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Compile(e) => Some(e),
            Error::Exec(e) => Some(e),
        }
    }
}

impl From<zlang::error::Error> for Error {
    fn from(e: zlang::error::Error) -> Self {
        Error::Compile(e)
    }
}

impl From<loopir::ExecError> for Error {
    fn from(e: loopir::ExecError) -> Self {
        Error::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_both_layers_with_sources() {
        let c: Error = zlang::compile("progrm nope;").unwrap_err().into();
        assert!(matches!(c, Error::Compile(_)));
        assert!(std::error::Error::source(&c).is_some());
        let x: Error = loopir::ExecError::trap("boom").into();
        assert_eq!(x.to_string(), "execution error: boom");
        assert!(std::error::Error::source(&x).is_some());
    }
}
