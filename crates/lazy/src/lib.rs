//! A lazy array frontend: build programs at *runtime*, fuse them as a
//! batch.
//!
//! The paper's pipeline (normalize → ASDG → FUSION-FOR-CONTRACTION →
//! scalarize) consumes whole programs, which traditionally come from
//! source files. This crate records array computations as a host program
//! runs — element-wise arithmetic, constant shifts, and reductions build
//! an expression graph instead of executing eagerly — and lowers the
//! recorded batch into an ordinary [`zlang::ir::Program`] on flush. The
//! optimizer then sees every statement of the batch at once, so
//! cross-statement fusion and array contraction apply to code that never
//! existed as source text.
//!
//! Recording is deterministic: arrays, regions, and scalars are named in
//! creation order (`a0`, `R0`, `s0`, ...), so two identical recordings
//! produce structurally identical programs — and therefore identical
//! [`fusion_core::hash::program_hash`] digests, which is what makes the
//! serving path's compile cache effective for lazy workloads: a hot loop
//! re-recording the same batch hits the cache and skips the pipeline
//! entirely.
//!
//! ```
//! use fusion_core::{CompileCache, RunRequest};
//! use lazy::Batch;
//!
//! let mut b = Batch::new("smooth");
//! let interior = b.region(&[(2, 63)]);
//! let grid = b.region(&[(1, 64)]);
//! let a = b.store(grid, 2.0);
//! // Three-point stencil over the interior; reads stay in bounds.
//! let s = b.store(interior, (a.at(&[-1]) + a + a.at(&[1])) / 3.0);
//! let total = b.sum(interior, s);
//!
//! let cache = CompileCache::new();
//! let (out, hit) = b.flush(&RunRequest::new(), &cache).unwrap();
//! assert!(!hit, "first flush compiles");
//! assert_eq!(out.value(total), 124.0);
//! let (out2, hit) = b.flush(&RunRequest::new(), &cache).unwrap();
//! assert!(hit, "second flush reuses the compiled batch");
//! assert_eq!(out2.value(total).to_bits(), out.value(total).to_bits());
//! ```

use fusion_core::supervisor::SupervisorError;
use fusion_core::{CompileCache, RunRequest};
use loopir::{ExecError, NoopObserver, RunOutcome};
use std::ops::{Add, Div, Mul, Neg, Sub};
use zlang::ast::{BinOp, ReduceOp, Type, UnOp};
use zlang::ir::{
    ArrayDecl, ArrayExpr, ArrayId, ArrayStmt, Extent, LinExpr, Offset, Program, RegionDecl,
    RegionId, ScalarDecl, ScalarId, Stmt,
};

/// A handle to a recorded region (a constant rectangular index set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    id: RegionId,
    rank: usize,
}

/// A handle to a materialized array — the result of a [`Batch::store`].
///
/// Reading it in a later expression uses the array at zero offset;
/// [`Arr::at`] shifts the read by a constant offset (zlang's `A@[d]`).
#[derive(Debug, Clone, Copy)]
pub struct Arr {
    id: ArrayId,
    rank: usize,
}

impl Arr {
    /// This array read at a constant offset: at iteration point `i` the
    /// statement reads `self[i + offset]`.
    ///
    /// # Panics
    ///
    /// Panics if `offset.len()` differs from the array's rank.
    pub fn at(&self, offset: &[i64]) -> Expr {
        assert_eq!(
            offset.len(),
            self.rank,
            "lazy: offset {offset:?} has rank {}, array has rank {}",
            offset.len(),
            self.rank
        );
        Expr(ArrayExpr::Read(self.id, Offset(offset.to_vec())))
    }
}

/// A handle to a recorded scalar — the result of a reduction. Read the
/// final value out of an [`Evaluated`] with [`Evaluated::value`], or use
/// it inside later expressions (it broadcasts over the region).
#[derive(Debug, Clone, Copy)]
pub struct Scl {
    id: ScalarId,
}

/// A recorded element-wise expression: the right-hand side of a future
/// [`Batch::store`] or reduction. Built by the arithmetic operators over
/// [`Arr`], [`Scl`], `f64`, and other `Expr`s.
#[derive(Debug, Clone)]
pub struct Expr(ArrayExpr);

impl From<Arr> for Expr {
    fn from(a: Arr) -> Self {
        Expr(ArrayExpr::Read(a.id, Offset::zero(a.rank)))
    }
}

impl From<Scl> for Expr {
    fn from(s: Scl) -> Self {
        Expr(ArrayExpr::ScalarRef(s.id))
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Self {
        Expr(ArrayExpr::Const(v))
    }
}

macro_rules! lazy_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<T: Into<Expr>> $trait<T> for Expr {
            type Output = Expr;
            fn $method(self, rhs: T) -> Expr {
                Expr(ArrayExpr::Binary(
                    $op,
                    Box::new(self.0),
                    Box::new(rhs.into().0),
                ))
            }
        }
        impl<T: Into<Expr>> $trait<T> for Arr {
            type Output = Expr;
            fn $method(self, rhs: T) -> Expr {
                Expr::from(self).$method(rhs)
            }
        }
        impl<T: Into<Expr>> $trait<T> for Scl {
            type Output = Expr;
            fn $method(self, rhs: T) -> Expr {
                Expr::from(self).$method(rhs)
            }
        }
        impl $trait<Expr> for f64 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::from(self).$method(rhs)
            }
        }
        impl $trait<Arr> for f64 {
            type Output = Expr;
            fn $method(self, rhs: Arr) -> Expr {
                Expr::from(self).$method(Expr::from(rhs))
            }
        }
    };
}

lazy_binop!(Add, add, BinOp::Add);
lazy_binop!(Sub, sub, BinOp::Sub);
lazy_binop!(Mul, mul, BinOp::Mul);
lazy_binop!(Div, div, BinOp::Div);

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr(ArrayExpr::Unary(UnOp::Neg, Box::new(self.0)))
    }
}

impl Neg for Arr {
    type Output = Expr;
    fn neg(self) -> Expr {
        -Expr::from(self)
    }
}

/// The recording context: a batch of array computations waiting to be
/// fused, compiled, and run as one program.
#[derive(Debug, Clone)]
pub struct Batch {
    program: Program,
}

impl Batch {
    /// An empty batch. `name` becomes the program name (part of the
    /// structural hash, so batches with different names never share
    /// cache entries).
    pub fn new(name: &str) -> Self {
        Batch {
            program: Program {
                name: name.to_string(),
                configs: Vec::new(),
                regions: Vec::new(),
                arrays: Vec::new(),
                scalars: Vec::new(),
                body: Vec::new(),
                names: Default::default(),
            },
        }
    }

    /// Declares a rectangular region with constant inclusive bounds, one
    /// `(lo, hi)` pair per dimension.
    ///
    /// # Panics
    ///
    /// Panics on an empty bounds list or a dimension with `lo > hi`.
    pub fn region(&mut self, bounds: &[(i64, i64)]) -> Region {
        assert!(
            !bounds.is_empty(),
            "lazy: a region needs at least one dimension"
        );
        for &(lo, hi) in bounds {
            assert!(lo <= hi, "lazy: empty region dimension [{lo}..{hi}]");
        }
        let id = RegionId(self.program.regions.len() as u32);
        let name = format!("R{}", id.0);
        self.program.names.register_region(&name, id);
        self.program.regions.push(RegionDecl {
            name,
            extents: bounds
                .iter()
                .map(|&(lo, hi)| Extent {
                    lo: LinExpr::constant(lo),
                    hi: LinExpr::constant(hi),
                })
                .collect(),
        });
        Region {
            id,
            rank: bounds.len(),
        }
    }

    /// The current iteration index along dimension `dim` (0-based), as an
    /// expression — zlang's `#1`, `#2`, ... index generators.
    pub fn index(&self, dim: u8) -> Expr {
        Expr(ArrayExpr::Index(dim))
    }

    /// Records an element-wise store: a fresh array over `region`,
    /// assigned `expr` at every point of `region`. This is the lazy
    /// analogue of `[R] a := expr;` — nothing executes until
    /// [`Batch::flush`].
    ///
    /// # Panics
    ///
    /// Panics (with the offending array and offset) if any read in
    /// `expr` can fall outside the read array's declared region for some
    /// point of `region`, if any read or index generator has the wrong
    /// rank, or if a scalar is read before the statement recording it.
    pub fn store(&mut self, region: Region, expr: impl Into<Expr>) -> Arr {
        let rhs = expr.into().0;
        self.check_rhs(region, &rhs);
        let id = ArrayId(self.program.arrays.len() as u32);
        let name = format!("a{}", id.0);
        self.program.names.register_array(&name, id);
        self.program.arrays.push(ArrayDecl {
            name,
            region: region.id,
            compiler_temp: false,
            collapsed: Vec::new(),
        });
        self.program.body.push(Stmt::Array(ArrayStmt {
            region: region.id,
            lhs: id,
            rhs,
        }));
        Arr {
            id,
            rank: region.rank,
        }
    }

    /// Records a sum reduction of `expr` over `region` (`+<< [R] expr`).
    pub fn sum(&mut self, region: Region, expr: impl Into<Expr>) -> Scl {
        self.reduce(ReduceOp::Sum, region, expr.into())
    }

    /// Records a product reduction (`*<< [R] expr`).
    pub fn prod(&mut self, region: Region, expr: impl Into<Expr>) -> Scl {
        self.reduce(ReduceOp::Prod, region, expr.into())
    }

    /// Records a max reduction (`max<< [R] expr`).
    pub fn max(&mut self, region: Region, expr: impl Into<Expr>) -> Scl {
        self.reduce(ReduceOp::Max, region, expr.into())
    }

    /// Records a min reduction (`min<< [R] expr`).
    pub fn min(&mut self, region: Region, expr: impl Into<Expr>) -> Scl {
        self.reduce(ReduceOp::Min, region, expr.into())
    }

    fn reduce(&mut self, op: ReduceOp, region: Region, expr: Expr) -> Scl {
        let arg = expr.0;
        self.check_rhs(region, &arg);
        let id = ScalarId(self.program.scalars.len() as u32);
        let name = format!("s{}", id.0);
        self.program.names.register_scalar(&name, id);
        self.program.scalars.push(ScalarDecl {
            name,
            ty: Type::Float,
        });
        self.program.body.push(Stmt::Reduce {
            lhs: id,
            op,
            region: region.id,
            arg,
        });
        Scl { id }
    }

    /// Number of statements recorded so far.
    pub fn recorded(&self) -> usize {
        self.program.body.len()
    }

    /// The recorded batch as an array-level IR program — exactly what a
    /// source file compiling to the same statements would produce.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The recorded batch as zlang source text. Compiling this source
    /// yields a program equal to [`Batch::program`] (and with an equal
    /// structural hash) — the bridge for differential testing against
    /// the static frontend.
    pub fn source(&self) -> String {
        zlang::pretty::source(&self.program)
    }

    /// Flushes through the serving path: look the batch up in `cache`
    /// (compiling and publishing on a miss), then execute under `req`'s
    /// engine and limits. Returns the outcome and whether the compile
    /// was a cache hit.
    ///
    /// # Errors
    ///
    /// Compile/verify failures from the cache and runtime faults from
    /// the engine, as [`ExecError`].
    pub fn flush(
        &self,
        req: &RunRequest,
        cache: &CompileCache,
    ) -> Result<(Evaluated, bool), ExecError> {
        let (cached, hit) = cache.get_or_compile(&self.program, req)?;
        let mut exec = cached.executor(req.exec_opts());
        exec.set_limits(req.limits());
        let outcome = exec.execute(&mut NoopObserver)?;
        Ok((Evaluated { outcome }, hit))
    }

    /// Runs the batch once under `req`'s fault-tolerant
    /// [`Supervisor`](fusion_core::Supervisor) — no cache, full
    /// degradation ladder.
    ///
    /// # Errors
    ///
    /// Only when every ladder rung faults.
    pub fn run(&self, req: &RunRequest) -> Result<Evaluated, SupervisorError> {
        let run = req.supervisor().run_program(&self.program)?;
        Ok(Evaluated {
            outcome: run.outcome,
        })
    }

    /// Validates that `rhs`, executed at every point of `target`, stays
    /// inside every read array's declared region; also checks read and
    /// index-generator ranks and scalar recording order.
    fn check_rhs(&self, target: Region, rhs: &ArrayExpr) {
        let bounds = |r: RegionId| -> Vec<(i64, i64)> {
            self.program.regions[r.0 as usize]
                .extents
                .iter()
                .map(|e| (e.lo.base, e.hi.base))
                .collect()
        };
        let tb = bounds(target.id);
        let walk = |e: &ArrayExpr| {
            self.walk(e, &mut |node| match node {
                ArrayExpr::Read(a, off) => {
                    let decl = self
                        .program
                        .arrays
                        .get(a.0 as usize)
                        .unwrap_or_else(|| panic!("lazy: read of undeclared array {a:?}"));
                    let ab = bounds(decl.region);
                    assert_eq!(
                        off.0.len(),
                        tb.len(),
                        "lazy: `{}` (rank {}) read from a rank-{} statement",
                        decl.name,
                        off.0.len(),
                        tb.len()
                    );
                    for (d, &delta) in off.0.iter().enumerate() {
                        let (tlo, thi) = tb[d];
                        let (alo, ahi) = ab[d];
                        assert!(
                            tlo + delta >= alo && thi + delta <= ahi,
                            "lazy: read of `{}` at offset {:?} reaches \
                             [{}..{}] in dimension {d}, outside its region [{alo}..{ahi}] \
                             (store into a larger region first)",
                            decl.name,
                            off.0,
                            tlo + delta,
                            thi + delta,
                        );
                    }
                }
                ArrayExpr::Index(d) => {
                    assert!(
                        (*d as usize) < tb.len(),
                        "lazy: index generator for dimension {d} in a rank-{} statement",
                        tb.len()
                    );
                }
                ArrayExpr::ScalarRef(s) => {
                    assert!(
                        (s.0 as usize) < self.program.scalars.len(),
                        "lazy: reference to unrecorded scalar {s:?}"
                    );
                }
                _ => {}
            });
        };
        walk(rhs);
    }

    fn walk(&self, e: &ArrayExpr, f: &mut impl FnMut(&ArrayExpr)) {
        f(e);
        match e {
            ArrayExpr::Unary(_, inner) => self.walk(inner, f),
            ArrayExpr::Binary(_, l, r) => {
                self.walk(l, f);
                self.walk(r, f);
            }
            ArrayExpr::Call(_, args) => {
                for a in args {
                    self.walk(a, f);
                }
            }
            _ => {}
        }
    }
}

/// The results of one executed batch.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The raw outcome (scalars + execution counters).
    pub outcome: RunOutcome,
}

impl Evaluated {
    /// The final value of a recorded reduction.
    pub fn value(&self, s: Scl) -> f64 {
        self.outcome.scalar(s.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::hash::program_hash;
    use fusion_core::{Level, Pipeline};
    use loopir::Engine;

    /// A stencil batch with a user temporary the optimizer can contract.
    fn stencil() -> (Batch, Scl) {
        let mut b = Batch::new("stencil");
        let grid = b.region(&[(1, 32)]);
        let interior = b.region(&[(2, 31)]);
        let a = b.store(grid, 1.0);
        let t = b.store(interior, (a.at(&[-1]) + a.at(&[1])) * 0.5);
        let r = b.store(interior, t + 1.0);
        let s = b.sum(interior, r);
        (b, s)
    }

    #[test]
    fn records_and_runs_a_stencil() {
        let (b, s) = stencil();
        assert_eq!(b.recorded(), 4);
        let out = b.run(&RunRequest::new()).unwrap();
        assert_eq!(out.value(s), 60.0); // 30 interior points of 2.0
    }

    #[test]
    fn recorded_batch_fuses_and_contracts() {
        let (b, _) = stencil();
        let opt = Pipeline::new(Level::C2).optimize(b.program());
        // `t` is consumed only by the next statement at matching offsets.
        assert!(
            opt.contracted_names().iter().any(|n| n == "a1"),
            "{:?}",
            opt.contracted_names()
        );
    }

    #[test]
    fn identical_recordings_hash_identically_and_hit_the_cache() {
        let (b1, _) = stencil();
        let (b2, s2) = stencil();
        assert_eq!(b1.program(), b2.program());
        assert_eq!(program_hash(b1.program()), program_hash(b2.program()));
        let cache = CompileCache::new();
        let req = RunRequest::new().with_engine(Engine::VmVerified);
        let (out1, hit1) = b1.flush(&req, &cache).unwrap();
        let (out2, hit2) = b2.flush(&req, &cache).unwrap();
        assert!(!hit1 && hit2);
        assert_eq!(
            out1.value(s2).to_bits(),
            out2.value(s2).to_bits(),
            "hit must be bit-identical"
        );
    }

    #[test]
    fn source_round_trips_to_an_equal_program() {
        let (b, _) = stencil();
        let reparsed = zlang::compile(&b.source()).unwrap();
        assert_eq!(*b.program(), reparsed);
        assert_eq!(program_hash(b.program()), program_hash(&reparsed));
    }

    #[test]
    fn scalar_results_broadcast_into_later_stores() {
        let mut b = Batch::new("normalize");
        let r = b.region(&[(1, 8)]);
        let a = b.store(r, 3.0);
        let total = b.sum(r, a);
        let scaled = b.store(r, a / total);
        let check = b.sum(r, scaled);
        let out = b.run(&RunRequest::new()).unwrap();
        assert_eq!(out.value(check), 1.0);
        let _ = scaled;
    }

    #[test]
    #[should_panic(expected = "outside its region")]
    fn out_of_bounds_read_panics_at_record_time() {
        let mut b = Batch::new("oob");
        let r = b.region(&[(1, 8)]);
        let a = b.store(r, 1.0);
        let _ = b.store(r, a.at(&[1]));
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn rank_mismatch_panics_at_record_time() {
        let mut b = Batch::new("rank");
        let r1 = b.region(&[(1, 8)]);
        let r2 = b.region(&[(1, 4), (1, 4)]);
        let a = b.store(r1, 1.0);
        let _ = b.store(r2, a.at(&[0]));
    }

    #[test]
    fn two_dimensional_batches_work() {
        let mut b = Batch::new("mat");
        let m = b.region(&[(1, 4), (1, 4)]);
        let a = b.store(m, 2.0);
        let sq = b.store(m, a * a - 1.0);
        let s = b.sum(m, sq);
        let out = b.run(&RunRequest::new()).unwrap();
        assert_eq!(out.value(s), 48.0);
        let _ = sq;
    }
}
