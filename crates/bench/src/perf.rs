//! Figures 9, 10, 11: runtime improvement of each transformation level
//! over baseline, per benchmark, machine, and processor count.
//!
//! As in the paper, problem sizes scale with the processor count (the
//! per-processor block is constant), so the simulation interprets one
//! processor's block and varies only the communication structure with `p`.

use crate::table::{pct, Table};
use benchmarks::Benchmark;
use fusion_core::pipeline::{Level, Pipeline};
use loopir::Engine;
use machine::presets::{Machine, MachineKind};
use runtime::{simulate, CommPolicy, ExecConfig, SimResult};
use zlang::ir::ConfigBinding;

/// The transformation levels plotted in the figures (baseline excluded —
/// it is the reference).
pub const PLOT_LEVELS: [Level; 7] = [
    Level::F1,
    Level::C1,
    Level::F2,
    Level::F3,
    Level::C2,
    Level::C2F3,
    Level::C2F4,
];

/// Processor counts used in the figures.
pub const PROCS: [u64; 4] = [1, 4, 16, 64];

/// The per-processor block size (points per distributed dimension) used
/// for a benchmark.
pub fn block_size(bench: &Benchmark) -> i64 {
    match bench.rank {
        1 => 8192,
        2 => 40,
        _ => 10,
    }
}

/// Runs one configuration.
///
/// # Panics
///
/// Panics if the benchmark fails to execute (a bug in the embedded
/// sources, covered by the `benchmarks` tests).
pub fn run(
    bench: &Benchmark,
    level: Level,
    machine: &Machine,
    procs: u64,
    block: i64,
    engine: Engine,
) -> SimResult {
    let opt = Pipeline::new(level).optimize(&bench.program());
    let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
    binding.set_by_name(&opt.scalarized.program, bench.size_config, block);
    let cfg = ExecConfig {
        machine: machine.clone(),
        procs,
        policy: CommPolicy::default(),
        engine,
        threads: 0,
        limits: loopir::ExecLimits::none(),
    };
    simulate(&opt.scalarized, binding, &cfg)
        .unwrap_or_else(|e| panic!("{} at {level} on {}: {e}", bench.name, machine.name))
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// Transformation level.
    pub level: Level,
    /// Processor count.
    pub procs: u64,
    /// Percent improvement over baseline (positive = faster).
    pub improvement: f64,
    /// Absolute simulated time, nanoseconds.
    pub total_ns: f64,
}

/// All points for one benchmark on one machine.
#[derive(Debug, Clone)]
pub struct PerfSeries {
    /// The benchmark.
    pub bench: Benchmark,
    /// Points, ordered by (level, procs).
    pub points: Vec<PerfPoint>,
}

impl PerfSeries {
    /// The improvement for a given level/procs, if measured.
    pub fn improvement(&self, level: Level, procs: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.level == level && p.procs == procs)
            .map(|p| p.improvement)
    }
}

/// Measures every level × procs for one benchmark on one machine.
pub fn series(
    bench: &Benchmark,
    machine: &Machine,
    levels: &[Level],
    procs: &[u64],
    block: i64,
    engine: Engine,
) -> PerfSeries {
    let mut points = Vec::new();
    for &p in procs {
        let base = run(bench, Level::Baseline, machine, p, block, engine);
        for &level in levels {
            let r = run(bench, level, machine, p, block, engine);
            points.push(PerfPoint {
                level,
                procs: p,
                improvement: r.improvement_over(&base),
                total_ns: r.total_ns,
            });
        }
    }
    PerfSeries {
        bench: *bench,
        points,
    }
}

/// Renders one machine's figure (Figure 9 = T3E, 10 = SP-2, 11 = Paragon).
pub fn report(kind: MachineKind, levels: &[Level], procs: &[u64], engine: Engine) -> String {
    let machine = kind.machine();
    let fig = match kind {
        MachineKind::T3e => "Figure 9",
        MachineKind::Sp2 => "Figure 10",
        MachineKind::Paragon => "Figure 11",
    };
    let mut out = format!(
        "{fig} — % improvement over baseline on the {} (scaled problem size)\n\n",
        machine.name
    );
    for bench in benchmarks::all() {
        let block = block_size(&bench);
        let s = series(&bench, &machine, levels, procs, block, engine);
        let mut header: Vec<String> = vec![format!("{} (p=)", bench.name)];
        header.extend(procs.iter().map(|p| p.to_string()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&header_refs);
        for &level in levels {
            let mut row = vec![level.name().to_string()];
            for &p in procs {
                row.push(s.improvement(level, p).map_or("-".into(), pct));
            }
            t.row(row);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::presets::t3e;

    #[test]
    fn c2_beats_baseline_on_every_benchmark() {
        let m = t3e();
        for bench in benchmarks::all() {
            // Small blocks keep the test fast.
            let block = if bench.rank == 1 {
                2048
            } else if bench.rank == 2 {
                24
            } else {
                8
            };
            let base = run(&bench, Level::Baseline, &m, 1, block, Engine::default());
            let c2 = run(&bench, Level::C2, &m, 1, block, Engine::default());
            assert!(
                c2.total_ns < base.total_ns,
                "{}: c2 {} >= baseline {}",
                bench.name,
                c2.total_ns,
                base.total_ns
            );
        }
    }

    #[test]
    fn ep_improvement_is_processor_independent() {
        // The paper: EP scales perfectly, so its improvement is flat in p.
        let bench = benchmarks::by_name("ep").unwrap();
        let s = series(
            &bench,
            &t3e(),
            &[Level::C2],
            &[1, 4, 16, 64],
            block_size(&bench),
            Engine::default(),
        );
        let imps: Vec<f64> = [1u64, 4, 16, 64]
            .iter()
            .map(|&p| s.improvement(Level::C2, p).unwrap())
            .collect();
        let spread = imps.iter().cloned().fold(f64::MIN, f64::max)
            - imps.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 2.0, "EP improvement must be ~flat in p: {imps:?}");
    }

    #[test]
    fn series_collects_all_points() {
        let bench = benchmarks::by_name("frac").unwrap();
        let s = series(
            &bench,
            &t3e(),
            &[Level::C1, Level::C2],
            &[1, 4],
            16,
            Engine::default(),
        );
        assert_eq!(s.points.len(), 4);
        assert!(s.improvement(Level::C2, 4).is_some());
        assert!(s.improvement(Level::C2F4, 4).is_none());
    }
}
