//! Section 5.5: the interaction of fusion with communication optimization.
//!
//! Compares two policies at the `c2+f3` level: *favor fusion* (the paper's
//! default — fusion is never blocked by communication concerns) and *favor
//! communication* (fusion is rejected when it would consume a
//! communication's overlap window). The paper reports slowdowns of up to
//! 66% when communication is favored, because the lost contraction is
//! worth more than the preserved overlap.

use crate::table::{pct, Table};
use benchmarks::Benchmark;
use fusion_core::pipeline::{Level, Pipeline};
use loopir::Engine;
use machine::presets::{Machine, MachineKind};
use runtime::comm::favor_comm_pairs;
use runtime::{simulate, CommPolicy, ExecConfig};
use zlang::ir::ConfigBinding;

/// One benchmark's comparison on one machine.
#[derive(Debug, Clone)]
pub struct TradeoffRow {
    /// The benchmark.
    pub bench: Benchmark,
    /// Simulated time with fusion favored, nanoseconds.
    pub favor_fusion_ns: f64,
    /// Simulated time with communication favored, nanoseconds.
    pub favor_comm_ns: f64,
    /// Arrays contracted under each policy.
    pub contracted_fusion: usize,
    /// Arrays contracted when communication is favored.
    pub contracted_comm: usize,
}

impl TradeoffRow {
    /// Percent slowdown of favoring communication (positive = slower, the
    /// paper's presentation).
    pub fn slowdown(&self) -> f64 {
        100.0 * (self.favor_comm_ns - self.favor_fusion_ns) / self.favor_fusion_ns
    }
}

/// Runs the comparison for every benchmark on one machine at `procs`.
pub fn rows(machine: &Machine, procs: u64) -> Vec<TradeoffRow> {
    benchmarks::all()
        .into_iter()
        .map(|bench| {
            let block = crate::perf::block_size(&bench);
            let program = bench.program();
            let run = |favor_comm: bool| {
                let pipeline = if favor_comm {
                    Pipeline::new(Level::C2F3).with_forbidden(favor_comm_pairs)
                } else {
                    Pipeline::new(Level::C2F3)
                };
                let opt = pipeline.optimize(&program);
                let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
                binding.set_by_name(&opt.scalarized.program, bench.size_config, block);
                let cfg = ExecConfig {
                    machine: machine.clone(),
                    procs,
                    policy: CommPolicy::default(),
                    engine: Engine::default(),
                    threads: 0,
                    limits: loopir::ExecLimits::none(),
                };
                let r = simulate(&opt.scalarized, binding, &cfg)
                    .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
                (r, opt.contracted.len())
            };
            let (ff, contracted_fusion) = run(false);
            let (fc, contracted_comm) = run(true);
            TradeoffRow {
                bench,
                favor_fusion_ns: ff.total_ns,
                favor_comm_ns: fc.total_ns,
                contracted_fusion,
                contracted_comm,
            }
        })
        .collect()
}

/// Renders the Section 5.5 comparison across all three machines.
pub fn report(procs: u64) -> String {
    let mut out = format!(
        "Section 5.5 — slowdown when favoring communication optimization over fusion\n\
         (c2+f3, p = {procs}; positive = favoring communication is slower)\n\n"
    );
    let mut t = Table::new(&[
        "application",
        "T3E slowdown",
        "SP-2 slowdown",
        "Paragon slowdown",
        "contracted (fusion)",
        "contracted (comm)",
    ]);
    let per_machine: Vec<Vec<TradeoffRow>> = MachineKind::all()
        .iter()
        .map(|k| rows(&k.machine(), procs))
        .collect();
    for (i, bench) in benchmarks::all().iter().enumerate() {
        t.row(vec![
            bench.name.to_string(),
            pct(per_machine[0][i].slowdown()),
            pct(per_machine[1][i].slowdown()),
            pct(per_machine[2][i].slowdown()),
            per_machine[0][i].contracted_fusion.to_string(),
            per_machine[0][i].contracted_comm.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::presets::t3e;

    #[test]
    fn favoring_comm_never_contracts_more() {
        for r in rows(&t3e(), 16) {
            assert!(
                r.contracted_comm <= r.contracted_fusion,
                "{}: {} > {}",
                r.bench.name,
                r.contracted_comm,
                r.contracted_fusion
            );
        }
    }

    #[test]
    fn stencil_benchmarks_slow_down_when_comm_is_favored() {
        let rs = rows(&t3e(), 16);
        let by = |name: &str| rs.iter().find(|r| r.bench.name == name).unwrap();
        // The codes that lose many contractions slow down clearly.
        for name in ["tomcatv", "sp"] {
            assert!(
                by(name).slowdown() > 5.0,
                "{name}: slowdown {}",
                by(name).slowdown()
            );
        }
        // Simple loses only one contraction on the T3E; like the paper's
        // Fibro, it may even speed up slightly — but never by much.
        assert!(
            by("simple").slowdown() > -5.0,
            "simple: {}",
            by("simple").slowdown()
        );
        // EP has no communication to speak of.
        assert!(
            by("ep").slowdown().abs() < 1.0,
            "ep: {}",
            by("ep").slowdown()
        );
        // Net across the stencil codes, favoring fusion wins (the paper's
        // conclusion: "fusion for contraction should be favored").
        let net: f64 = ["simple", "tomcatv", "sp"]
            .iter()
            .map(|n| by(n).slowdown())
            .sum();
        assert!(net > 0.0, "net {net}");
    }
}
