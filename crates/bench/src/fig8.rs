//! Figure 8: effect of contraction on memory usage and the maximum problem
//! size that fits one node's memory.
//!
//! The paper's methodology: count simultaneously-live arrays before (`l_b`)
//! and after (`l_a`) contraction; predict the problem-size change
//! `C(l_b, l_a) = 100 (l_b - l_a) / l_a`; then *measure* the largest
//! problem that allocates successfully under the node's memory limit. We
//! measure through the optimizer's allocation footprint (exactly what the
//! interpreter would allocate), searched with [`machine::memory`].

use crate::table::{pct, Table};
use benchmarks::Benchmark;
use fusion_core::pipeline::{Level, Optimized, Pipeline};
use loopir::ScalarProgram;
use machine::memory::{max_problem_size, predicted_percent_change};
use machine::presets::{sp2, t3e};
use zlang::ir::ConfigBinding;

/// Bytes of array storage the scalarized program allocates at problem size
/// `n` (every live array's full region).
pub fn footprint_bytes(sp: &ScalarProgram, size_config: &str, n: i64) -> u64 {
    let mut binding = ConfigBinding::defaults(&sp.program);
    binding.set_by_name(&sp.program, size_config, n);
    sp.live_arrays()
        .iter()
        .map(|&a| {
            sp.program
                .region(sp.program.array(a).region)
                .size(&binding)
                .saturating_mul(8)
        })
        .fold(0u64, u64::saturating_add)
}

/// One benchmark's Figure 8 measurements on one machine.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// The benchmark.
    pub bench: Benchmark,
    /// Simultaneously-live arrays before contraction.
    pub live_before: usize,
    /// Simultaneously-live arrays after contraction.
    pub live_after: usize,
    /// Predicted problem-size change `C(l_b, l_a)` (percent;
    /// infinite when everything contracts).
    pub predicted: f64,
    /// Largest problem size (per dimension) without contraction.
    pub max_n_before: Option<u64>,
    /// Largest problem size (per dimension) with contraction
    /// (`None` = nothing fits, `Some(hi)` saturates when memory use is
    /// constant).
    pub max_n_after: Option<u64>,
    /// Measured per-dimension change, percent.
    pub measured_dim: f64,
    /// Measured total-volume change, percent.
    pub measured_vol: f64,
}

const SEARCH_HI: u64 = 1 << 20;

fn optimize(bench: &Benchmark, level: Level) -> Optimized {
    Pipeline::new(level).optimize(&bench.program())
}

/// Computes the Figure 8 data on a machine with `node_memory` bytes.
pub fn rows(node_memory: u64) -> Vec<Fig8Row> {
    benchmarks::all()
        .into_iter()
        .map(|bench| {
            let base = optimize(&bench, Level::Baseline);
            let c2 = optimize(&bench, Level::C2);
            let live_before = base.scalarized.live_arrays().len();
            let live_after = c2.scalarized.live_arrays().len();
            let search = |sp: &ScalarProgram| {
                max_problem_size(2, SEARCH_HI, node_memory, |n| {
                    footprint_bytes(sp, bench.size_config, n as i64)
                })
            };
            let max_n_before = search(&base.scalarized);
            let max_n_after = search(&c2.scalarized);
            let (measured_dim, measured_vol) = match (max_n_before, max_n_after) {
                (Some(b), Some(a)) if b > 0 => {
                    let dim = 100.0 * (a as f64 - b as f64) / b as f64;
                    let ratio = a as f64 / b as f64;
                    let vol = 100.0 * (ratio.powi(bench.rank as i32) - 1.0);
                    (dim, vol)
                }
                _ => (0.0, 0.0),
            };
            Fig8Row {
                live_before,
                live_after,
                predicted: predicted_percent_change(live_before, live_after),
                max_n_before,
                max_n_after,
                measured_dim,
                measured_vol,
                bench,
            }
        })
        .collect()
}

fn fmt_n(n: Option<u64>) -> String {
    match n {
        None => "0".to_string(),
        Some(v) if v >= SEARCH_HI => "unbounded".to_string(),
        Some(v) => v.to_string(),
    }
}

/// Renders the Figure 8 table for the T3E and SP-2 memory budgets.
pub fn report() -> String {
    let mut out = String::from(
        "Figure 8 — maximum problem size in fixed node memory (measured via allocation footprint)\n",
    );
    for m in [t3e(), sp2()] {
        out.push_str(&format!(
            "\n{} ({} MB/node):\n",
            m.name,
            m.node_memory >> 20
        ));
        let mut t = Table::new(&[
            "application",
            "l_b",
            "l_a",
            "C (predicted)",
            "max n w/o",
            "max n w/",
            "dim change",
            "vol change",
            "paper dim%",
        ]);
        for r in rows(m.node_memory) {
            let paper_pred =
                predicted_percent_change(r.bench.paper.live_before, r.bench.paper.live_after);
            t.row(vec![
                r.bench.name.to_string(),
                r.live_before.to_string(),
                r.live_after.to_string(),
                pct(r.predicted),
                fmt_n(r.max_n_before),
                fmt_n(r.max_n_after),
                pct(r.measured_dim),
                pct(r.measured_vol),
                pct(paper_pred),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ep_becomes_constant_memory() {
        let rows = rows(t3e().node_memory);
        let ep = rows.iter().find(|r| r.bench.name == "ep").unwrap();
        assert_eq!(ep.live_after, 0);
        assert_eq!(ep.predicted, f64::INFINITY);
        assert_eq!(
            ep.max_n_after,
            Some(SEARCH_HI),
            "search saturates: memory is constant"
        );
    }

    #[test]
    fn contraction_always_allows_larger_problems() {
        for r in rows(32 * 1024 * 1024) {
            let (Some(b), Some(a)) = (r.max_n_before, r.max_n_after) else {
                panic!("{}: nothing fits", r.bench.name)
            };
            assert!(a > b, "{}: {b} -> {a}", r.bench.name);
        }
    }

    #[test]
    fn prediction_tracks_measurement() {
        // The paper: the C value accurately predicts the change in problem
        // volume. Allow slack for integer truncation.
        for r in rows(t3e().node_memory) {
            if r.predicted.is_finite() && r.bench.rank > 1 {
                let rel = (r.measured_vol - r.predicted).abs() / r.predicted.max(1.0);
                assert!(
                    rel < 0.15,
                    "{}: predicted {:.1}% measured {:.1}%",
                    r.bench.name,
                    r.predicted,
                    r.measured_vol
                );
            }
        }
    }

    #[test]
    fn footprint_is_monotone_in_n() {
        let b = benchmarks::by_name("tomcatv").unwrap();
        let opt = Pipeline::new(Level::Baseline).optimize(&b.program());
        let f16 = footprint_bytes(&opt.scalarized, "n", 16);
        let f32 = footprint_bytes(&opt.scalarized, "n", 32);
        assert!(f32 > f16);
    }
}
