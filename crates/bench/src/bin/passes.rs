//! Per-pass compile-time profile of the optimization pipeline.
//!
//! Runs every paper benchmark through `fusion_core`'s pass manager at one
//! level (default `c2+f3`) and reports, per pass, the median wall-clock
//! time plus the statement and cluster counters the manager records. The
//! verdict is printed as a table and written to `BENCH_passes.json` for
//! CI trend tracking.
//!
//! ```text
//! passes [--level L] [--dse] [--rce] [--rounds N]
//! ```

use fusion_core::pass::PassId;
use fusion_core::pipeline::{Level, Pipeline};
use std::fmt::Write as _;

const DEFAULT_ROUNDS: usize = 9;

fn usage() -> ! {
    eprintln!("usage: passes [--level L] [--dse] [--rce] [--rounds N]");
    std::process::exit(2);
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut level = Level::C2F3;
    let (mut dse, mut rce) = (false, false);
    let mut rounds = DEFAULT_ROUNDS;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--level" => {
                let v = it.next().unwrap_or_else(|| usage());
                level = Level::all()
                    .into_iter()
                    .find(|l| l.name() == v.as_str())
                    .unwrap_or_else(|| usage());
            }
            "--dse" => dse = true,
            "--rce" => rce = true,
            "--rounds" => {
                rounds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }

    let spec = format!(
        "{}{}{}",
        level.name(),
        if dse { "+dse" } else { "" },
        if rce { "+rce" } else { "" }
    );
    let mut bench_objects = Vec::new();
    println!("per-pass compile profile at {spec} ({rounds} rounds, median)");
    for b in benchmarks::all() {
        let program = b.program();
        let pipeline = {
            let mut p = Pipeline::new(level);
            if dse {
                p = p.with_dse();
            }
            if rce {
                p = p.with_rce();
            }
            p
        };
        // Warm-up run; its traces also fix the pass schedule and counters.
        let shape = pipeline.optimize(&program);
        let mut per_pass: Vec<Vec<f64>> = vec![Vec::new(); shape.passes.len()];
        let mut totals = Vec::new();
        for _ in 0..rounds {
            let opt = pipeline.optimize(&program);
            assert_eq!(opt.passes.len(), per_pass.len(), "schedule drifted");
            for (slot, t) in per_pass.iter_mut().zip(&opt.passes) {
                slot.push(t.duration.as_secs_f64() * 1e6);
            }
            totals.push(
                opt.passes
                    .iter()
                    .map(|t| t.duration.as_secs_f64())
                    .sum::<f64>()
                    * 1e6,
            );
        }
        let total_us = median(totals);
        println!(
            "\n{:10} {} blocks, {} asdg builds, total {total_us:9.1} us",
            b.name,
            shape.norm.blocks.len(),
            shape.asdg_builds
        );
        let mut pass_objects = Vec::new();
        for (times, t) in per_pass.into_iter().zip(&shape.passes) {
            let us = median(times);
            println!(
                "  {:22} {us:9.1} us  {:3} stmts  {:3} clusters{}",
                t.id.name(),
                t.stmts,
                t.clusters,
                if t.changed { "  *" } else { "" }
            );
            pass_objects.push(format!(
                "{{\"pass\": \"{}\", \"median_us\": {us:.3}, \"changed\": {}, \
                 \"stmts\": {}, \"clusters\": {}}}",
                t.id.name(),
                t.changed,
                t.stmts,
                t.clusters
            ));
        }
        let mut obj = String::new();
        let _ = write!(
            obj,
            "    {{\n      \"name\": \"{}\",\n      \"blocks\": {},\n      \
             \"asdg_builds\": {},\n      \"total_us\": {total_us:.3},\n      \"passes\": [\n",
            b.name,
            shape.norm.blocks.len(),
            shape.asdg_builds
        );
        let _ = write!(obj, "        {}", pass_objects.join(",\n        "));
        let _ = write!(obj, "\n      ]\n    }}");
        bench_objects.push(obj);
    }

    // Sanity guard mirroring the pass-manager tests: at paper levels every
    // block's ASDG is built exactly once.
    let scheduled: Vec<&str> = {
        let b = benchmarks::by_name("simple").unwrap();
        let mut p = Pipeline::new(level);
        if dse {
            p = p.with_dse();
        }
        if rce {
            p = p.with_rce();
        }
        p.optimize(&b.program())
            .passes
            .iter()
            .map(|t| t.id.name())
            .collect()
    };
    assert!(scheduled.contains(&PassId::Scalarize.name()));

    let json = format!(
        "{{\n  \"bench\": \"passes\",\n  \"level\": \"{spec}\",\n  \"rounds\": {rounds},\n  \
         \"benchmarks\": [\n{}\n  ]\n}}\n",
        bench_objects.join(",\n")
    );
    if let Err(e) = std::fs::write("BENCH_passes.json", &json) {
        eprintln!("passes: cannot write BENCH_passes.json: {e}");
        std::process::exit(1);
    }
    println!("\nwrote BENCH_passes.json");
}
