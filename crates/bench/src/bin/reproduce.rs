//! Regenerates the paper's tables and figures as text reports.
//!
//! Usage:
//!
//! ```text
//! reproduce fig6|fig7|fig8|fig9|fig10|fig11|sec55|ablation|all [--quick] [--engine interp|vm]
//! ```
//!
//! `--quick` reduces the processor sweep (figures 9–11) to p ∈ {1, 16}.
//! `--engine` selects the scalarized-program execution engine (default:
//! the bytecode VM; `interp` runs the reference tree-walking interpreter —
//! the results are identical, only wall-clock reproduction time differs).

use bench::{fig6, fig7, fig8, perf, sec55};
use fusion_core::pipeline::Level;
use loopir::Engine;
use machine::presets::MachineKind;

fn usage() -> ! {
    eprintln!(
        "usage: reproduce <fig6|fig7|fig8|fig9|fig10|fig11|sec55|ablation|all> \
         [--quick] [--engine interp|vm]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let quick = args.iter().any(|a| a == "--quick");
    let engine = match args.iter().position(|a| a == "--engine") {
        None => Engine::default(),
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(e)) => e,
            Some(Err(e)) => {
                eprintln!("reproduce: {e}");
                usage()
            }
            None => usage(),
        },
    };
    let procs: Vec<u64> = if quick {
        vec![1, 16]
    } else {
        perf::PROCS.to_vec()
    };
    let levels: Vec<Level> = perf::PLOT_LEVELS.to_vec();

    let run_fig = |kind: MachineKind| {
        println!("{}", perf::report(kind, &levels, &procs, engine));
    };
    match args[0].as_str() {
        "fig6" => println!("{}", fig6::report()),
        "fig7" => println!("{}", fig7::report()),
        "fig8" => println!("{}", fig8::report()),
        "fig9" => run_fig(MachineKind::T3e),
        "fig10" => run_fig(MachineKind::Sp2),
        "fig11" => run_fig(MachineKind::Paragon),
        "sec55" => println!("{}", sec55::report(16)),
        "ablation" => {
            for kind in MachineKind::all() {
                println!("{}", bench::ablation::report(&kind.machine(), engine));
            }
            println!("{}", bench::ablation::dimension_report(engine));
        }
        "all" => {
            println!("{}", fig6::report());
            println!("{}", fig7::report());
            println!("{}", fig8::report());
            run_fig(MachineKind::T3e);
            run_fig(MachineKind::Sp2);
            run_fig(MachineKind::Paragon);
            println!("{}", sec55::report(16));
            for kind in MachineKind::all() {
                println!("{}", bench::ablation::report(&kind.machine(), engine));
            }
            println!("{}", bench::ablation::dimension_report(engine));
        }
        _ => usage(),
    }
}
