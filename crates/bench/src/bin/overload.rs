//! Overload benchmark: the serving fault model under pressure.
//!
//! Replays the mixed benchmark workload through
//! [`fusion_core::serve::serve_with`] in three scenarios and asserts the
//! acceptance bars for each, then writes `BENCH_overload.json`:
//!
//! * **clean** — unbounded queue, no faults: nothing sheds, nothing
//!   fails, every result is `f64::to_bits`-identical to a one-shot
//!   [`Engine::Interp`] reference; reports service and end-to-end
//!   p50/p99 so the overload-control machinery's clean-path cost is
//!   visible.
//! * **overload** — a 4-deep admission queue under `reject-newest` with
//!   injected worker stalls: requests shed (with the `queue-full`
//!   cause), and the requests that *are* served stay bit-identical to
//!   the reference — load shedding never contaminates a result.
//! * **breaker** — every cache hit of one warm key corrupted: the key
//!   trips its circuit breaker open within the failure threshold, the
//!   cached artifact is quarantined, and the cooldown-window request is
//!   routed to the reference rung (cache bypassed) and still served.
//!
//! ```text
//! overload [--quick] [--workers N]
//! ```

use fusion_core::serve::{serve, serve_with, Disposition, ServeOptions, ServeRequest, ShedPolicy};
use fusion_core::{BreakerConfig, CompileCache, RunRequest};
use loopir::{Engine, Executor as _, Interp, NoopObserver};
use std::collections::HashMap;
use std::sync::Arc;
use testkit::faults::{FaultPlan, FaultSite};

const DEFAULT_REPEATS: usize = 12;
const QUICK_REPEATS: usize = 5;

/// Seed for the injected-fault schedules; fixed so runs are comparable.
const SEED: u64 = 0x0B5E55ED;

fn usage() -> ! {
    eprintln!("usage: overload [--quick] [--workers N]");
    std::process::exit(2);
}

/// A small problem size per rank, matching the serve benchmark.
fn small_n(rank: usize) -> i64 {
    match rank {
        1 => 64,
        2 => 16,
        _ => 6,
    }
}

/// The distinct workload: every benchmark on every engine.
fn distinct_workload() -> Vec<ServeRequest> {
    let mut distinct = Vec::new();
    for b in &benchmarks::all() {
        for engine in Engine::all() {
            let mut req = RunRequest::new()
                .with_engine(engine)
                .with_set(b.size_config, small_n(b.rank));
            if let Some(iters) = b.iters_config {
                req = req.with_set(iters, 2);
            }
            distinct.push(ServeRequest::new(b.name, b.source, req));
        }
    }
    distinct
}

/// One-shot `Engine::Interp` reference bits per benchmark name.
fn references(distinct: &[ServeRequest]) -> HashMap<String, Vec<u64>> {
    let mut reference = HashMap::new();
    for b in &benchmarks::all() {
        let req = distinct
            .iter()
            .find(|r| r.name == b.name)
            .expect("benchmark in workload")
            .request
            .clone()
            .with_engine(Engine::Interp);
        let program = b.program();
        let opt = req.pipeline().optimize(&program);
        let binding = req
            .binding_for(&opt.scalarized.program)
            .expect("valid sets");
        let out = Interp::new(&opt.scalarized, binding)
            .execute(&mut NoopObserver)
            .expect("reference run succeeds");
        reference.insert(
            b.name.to_string(),
            out.scalars.iter().map(|s| s.to_bits()).collect(),
        );
    }
    reference
}

/// Bar shared by every scenario: no served result may diverge from the
/// one-shot interp reference — under load shedding, faults, or breaker
/// routing alike.
fn assert_uncontaminated(
    scenario: &str,
    report: &fusion_core::ServeReport,
    reference: &HashMap<String, Vec<u64>>,
) {
    for r in report.records.iter().filter(|r| r.completed()) {
        let want = &reference[&r.name];
        assert_eq!(
            &r.scalars_bits, want,
            "{scenario}: request {} ({} on {}) diverged from the interp reference",
            r.index, r.name, r.engine
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut workers = 4usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let repeats = if quick {
        QUICK_REPEATS
    } else {
        DEFAULT_REPEATS
    };

    let distinct = distinct_workload();
    let reference = references(&distinct);
    let batch: Vec<ServeRequest> = (0..distinct.len() * repeats)
        .map(|i| distinct[i % distinct.len()].clone())
        .collect();

    // Scenario 1: clean path. The full overload-control stack is in the
    // loop (admission queue, deadline checks, breaker registry) but
    // nothing exercises it; the bars say it stays out of the way.
    println!(
        "clean: {} requests ({} distinct, x{repeats}) on {workers} workers",
        batch.len(),
        distinct.len()
    );
    let clean_cache = Arc::new(CompileCache::new());
    let clean = serve_with(
        &batch,
        &ServeOptions::new().with_workers(workers),
        &clean_cache,
    );
    print!("{}", clean.render());
    assert_eq!(clean.failed(), 0, "clean: no request may fail");
    assert_eq!(clean.shed(), 0, "clean: shed only under injected overload");
    assert_eq!(clean.breaker.trips, 0, "clean: no breaker trips");
    assert_uncontaminated("clean", &clean, &reference);

    // Scenario 2: overload. Two workers wedged by injected stalls behind
    // a 4-deep queue under reject-newest: admission sheds, service does
    // not contaminate.
    println!("\noverload: queue cap 4, reject-newest, serve-stall p=0.35, 2 workers");
    let over_cache = Arc::new(CompileCache::new());
    let over_opts = ServeOptions::new()
        .with_workers(2)
        .with_queue_cap(4)
        .with_shed(ShedPolicy::RejectNewest)
        .with_faults(FaultPlan::new(SEED).with(FaultSite::ServeStall, 0.35));
    let overload = serve_with(&batch, &over_opts, &over_cache);
    print!("{}", overload.render());
    assert_eq!(
        overload.completed() + overload.shed(),
        batch.len(),
        "overload: every request is accounted"
    );
    assert!(
        overload.shed() > 0,
        "overload: stalled workers behind a bounded queue must shed"
    );
    for r in &overload.records {
        if let Disposition::Shed(cause) = r.disposition {
            assert_eq!(cause.name(), "queue-full", "overload: typed shed cause");
        }
    }
    assert_uncontaminated("overload", &overload, &reference);

    // Scenario 3: breaker. One warm key, every cache hit corrupted; the
    // batch is failure_threshold + 1 requests so the last one lands in
    // the cooldown window and is routed to the reference rung.
    let config = BreakerConfig::default();
    println!(
        "\nbreaker: cache-corrupt p=1.0 on one warm key, {} requests, 1 worker",
        config.failure_threshold + 1
    );
    let brk_cache = Arc::new(CompileCache::new());
    let one = benchmarks::all()[0];
    let key_req = distinct
        .iter()
        .find(|r| r.name == one.name && r.request.engine == Engine::Vm)
        .expect("vm request in workload")
        .clone();
    serve(std::slice::from_ref(&key_req), 1, &brk_cache); // warm the requested rung
    let brk_reqs: Vec<ServeRequest> = (0..config.failure_threshold as usize + 1)
        .map(|_| key_req.clone())
        .collect();
    let brk_opts = ServeOptions::new()
        .with_workers(1)
        .with_faults(FaultPlan::new(SEED).with(FaultSite::CacheCorrupt, 1.0));
    let breaker = serve_with(&brk_reqs, &brk_opts, &brk_cache);
    print!("{}", breaker.render());
    assert_eq!(
        breaker.breaker.trips, 1,
        "breaker: the poisoned key trips within the failure threshold"
    );
    assert!(
        breaker.cache.quarantines >= 1,
        "breaker: tripping quarantines the cached artifact"
    );
    let routed = breaker.records.last().expect("non-empty batch");
    assert!(
        routed.breaker_routed && routed.completed(),
        "breaker: the cooldown-window request is served via the reference rung"
    );
    assert_uncontaminated("breaker", &breaker, &reference);

    let json = format!(
        "{{\n  \"bench\": \"overload\",\n  \"workers\": {workers},\n  \
         \"clean\": {{\"requests\": {}, \"wall_ms\": {:.3}, \
         \"service_p50_us\": {}, \"service_p99_us\": {}, \
         \"e2e_p50_us\": {}, \"e2e_p99_us\": {}, \
         \"hit_rate\": {:.4}, \"shed\": 0, \"failed\": 0}},\n  \
         \"overload\": {{\"requests\": {}, \"completed\": {}, \"shed\": {}, \
         \"failed\": {}, \"wall_ms\": {:.3}}},\n  \
         \"breaker\": {{\"requests\": {}, \"trips\": {}, \"reopens\": {}, \
         \"closes\": {}, \"probes\": {}, \"routed_to_reference\": {}, \
         \"quarantines\": {}}}\n}}\n",
        clean.records.len(),
        clean.wall.as_secs_f64() * 1e3,
        clean.percentile_us(50.0),
        clean.percentile_us(99.0),
        clean.e2e_percentile_us(50.0),
        clean.e2e_percentile_us(99.0),
        clean.cache.hit_rate(),
        overload.records.len(),
        overload.completed(),
        overload.shed(),
        overload.failed(),
        overload.wall.as_secs_f64() * 1e3,
        breaker.records.len(),
        breaker.breaker.trips,
        breaker.breaker.reopens,
        breaker.breaker.closes,
        breaker.breaker.probes,
        breaker.breaker.rejected,
        breaker.cache.quarantines,
    );
    if let Err(e) = std::fs::write("BENCH_overload.json", &json) {
        eprintln!("overload: cannot write BENCH_overload.json: {e}");
        std::process::exit(1);
    }
    println!("\nwrote BENCH_overload.json");
}
