//! Parallel tiled execution benchmark: speedup vs thread count.
//!
//! Runs SIMPLE and SP at large problem sizes through the `c2+f3` pipeline
//! on the verified sequential VM (the baseline), the parallel tiled VM at
//! 1/2/4 threads, the superinstruction/lane engine (`vm-simd`), and the
//! simd × tiling composition (`vm-par` with lanes) at the same thread
//! counts, asserting bit-identical checksums throughout, and writes
//! `BENCH_parallel.json`. The original fields are unchanged; the lane
//! rows ride along as `vm_simd_wall_ms` and `simd_wall_ms`.
//!
//! The headline **speedup** figure is *modeled from the per-tile stats
//! stream* ([`Vm::tile_stats`]), in the same spirit as the repo's machine
//! simulation: each operation (load, store, flop, iteration point) costs
//! one unit; the sequential run costs the [`RunStats`] total; a parallel
//! run replaces each fanned-out ladder's cost with its critical path
//! under `t` workers — `max(batch_total / t, max_tile)` per batch, the
//! classic greedy-scheduling bound. This keeps the number deterministic
//! and meaningful on any CI host (including single-core runners, where
//! raw wall-clock can show no parallel speedup at all). Wall-clock times
//! are included as auxiliary fields.
//!
//! ```text
//! parallel [--rounds N]
//! ```

use fusion_core::pipeline::{Level, Pipeline};
use loopir::{NoopObserver, RunOutcome, RunStats, TileStats, Vm};
use std::fmt::Write as _;
use std::time::Instant;
use zlang::ir::ConfigBinding;

const THREADS: [usize; 3] = [1, 2, 4];
const DEFAULT_ROUNDS: usize = 3;

fn usage() -> ! {
    eprintln!("usage: parallel [--rounds N]");
    std::process::exit(2);
}

/// Unit cost of a run: every counted operation costs one.
fn unit_cost(s: &RunStats) -> u64 {
    s.loads + s.stores + s.flops + s.points
}

fn tile_cost(t: &TileStats) -> u64 {
    t.loads + t.stores + t.flops + t.points
}

/// Modeled parallel cost: the sequential cost with each fanned-out batch
/// replaced by its greedy-schedule critical path under `threads` workers.
fn modeled_parallel_cost(serial: u64, tiles: &[TileStats], threads: usize) -> f64 {
    let mut tiled_total = 0u64;
    let mut parallel = 0.0f64;
    let mut batch_start = 0;
    while batch_start < tiles.len() {
        let batch = tiles[batch_start].batch;
        let mut end = batch_start;
        while end < tiles.len() && tiles[end].batch == batch {
            end += 1;
        }
        let costs: Vec<u64> = tiles[batch_start..end].iter().map(tile_cost).collect();
        let total: u64 = costs.iter().sum();
        let max = costs.iter().copied().max().unwrap_or(0);
        tiled_total += total;
        parallel += (total as f64 / threads as f64).max(max as f64);
        batch_start = end;
    }
    (serial - tiled_total) as f64 + parallel
}

struct Config {
    bench: &'static str,
    n: i64,
}

/// SIMPLE at n=256 (rank 2: 256x256 points per array) and SP at n=24
/// (rank 3) — large enough that the fused ladders dominate the run.
const CONFIGS: [Config; 2] = [
    Config {
        bench: "simple",
        n: 256,
    },
    Config { bench: "sp", n: 24 },
];

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Runs the shared compiled program `rounds` times, a fresh [`Vm`] per
/// round (VM counters accumulate across runs on one instance; the shared
/// handle makes per-round instances compile-free). Returns the last
/// round's outcome and tile stream plus the median wall-clock.
fn timed(
    shared: &loopir::SharedProgram,
    threads: Option<usize>,
    lanes: usize,
    rounds: usize,
) -> (RunOutcome, Vec<TileStats>, f64) {
    use loopir::Executor as _;
    let mut last = None;
    let mut times = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut vm = Vm::from_shared(shared);
        if let Some(t) = threads {
            vm.set_threads(t);
        }
        if lanes > 0 {
            vm.set_lanes(lanes);
        }
        let started = Instant::now();
        let out = vm
            .execute(&mut NoopObserver)
            .expect("benchmark runs cleanly");
        times.push(started.elapsed().as_secs_f64() * 1e3);
        last = Some((out, vm.tile_stats().to_vec()));
    }
    let (out, tiles) = last.expect("rounds >= 1");
    (out, tiles, median(times))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rounds = DEFAULT_ROUNDS;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rounds" => {
                rounds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }

    let level = Level::C2F3;
    let mut bench_objects = Vec::new();
    let mut simple_speedup_at_4 = 0.0f64;
    println!("parallel tiled execution at {level} ({rounds} rounds, median wall-clock)");
    for cfg in CONFIGS {
        let b = benchmarks::by_name(cfg.bench).expect("known benchmark");
        let opt = Pipeline::new(level).optimize(&b.program());
        let sp = &opt.scalarized;
        let mut binding = ConfigBinding::defaults(&sp.program);
        binding.set_by_name(&sp.program, b.size_config, cfg.n);

        // Compile + verify once; every run shares the immutable program.
        let mut first = Vm::new(sp, binding.clone()).expect("benchmark compiles to bytecode");
        first.verify().expect("benchmark bytecode verifies");
        let shared = first.share();

        // The superinstruction/lane tier over the same source program:
        // compiled through the post-compile peephole, verified (including
        // the simd_structure phase), and shared just like the scalar
        // stream.
        let mut sfirst =
            Vm::new_superfused(sp, binding.clone()).expect("benchmark superfuses to bytecode");
        sfirst.verify().expect("superfused bytecode verifies");
        let sshared = sfirst.share();

        // Baseline: the verified sequential VM.
        let (base_out, _, base_ms) = timed(&shared, None, 0, rounds);
        let serial = unit_cost(&base_out.stats);
        println!(
            "\n{:8} n={:4}  vm-verified: cost {serial:>12}  {base_ms:8.2} ms",
            b.name, cfg.n
        );

        // vm-simd: lane dispatch, sequential.
        let (simd_out, _, simd_ms) = timed(&sshared, None, 8, rounds);
        assert_eq!(
            base_out.checksum().to_bits(),
            simd_out.checksum().to_bits(),
            "{}: vm-simd drifted from the sequential VM",
            b.name
        );
        println!(
            "           vm-simd    : {simd_ms:8.2} ms ({:.2}x vm-verified)",
            base_ms / simd_ms
        );

        let mut thread_objects = Vec::new();
        for threads in THREADS {
            let (out, tiles, wall_ms) = timed(&shared, Some(threads), 0, rounds);
            assert_eq!(
                base_out.checksum().to_bits(),
                out.checksum().to_bits(),
                "{} at {threads} threads drifted from the sequential VM",
                b.name
            );
            assert_eq!(
                base_out.stats, out.stats,
                "{}: merged stats drifted",
                b.name
            );
            assert!(
                !tiles.is_empty(),
                "{}: no ladder fanned out at {threads} threads",
                b.name
            );
            let parallel = modeled_parallel_cost(serial, &tiles, threads);
            let speedup = serial as f64 / parallel;
            if b.name == "simple" && threads == 4 {
                simple_speedup_at_4 = speedup;
            }

            // vm-par + simd: the same tile fan-out with lane dispatch in
            // each tile's innermost loops.
            let (sout, _, simd_wall_ms) = timed(&sshared, Some(threads), 8, rounds);
            assert_eq!(
                base_out.checksum().to_bits(),
                sout.checksum().to_bits(),
                "{} at {threads} threads + lanes drifted from the sequential VM",
                b.name
            );

            println!(
                "           {threads} threads: {:5} tiles, modeled speedup {speedup:5.2}x, \
                 {wall_ms:8.2} ms ({simd_wall_ms:8.2} ms with lanes)",
                tiles.len()
            );
            thread_objects.push(format!(
                "{{\"threads\": {threads}, \"tiles\": {}, \"modeled_parallel_cost\": \
                 {parallel:.1}, \"modeled_speedup\": {speedup:.4}, \"wall_ms\": {wall_ms:.4}, \
                 \"simd_wall_ms\": {simd_wall_ms:.4}}}",
                tiles.len()
            ));
        }
        let mut obj = String::new();
        let _ = write!(
            obj,
            "    {{\n      \"name\": \"{}\",\n      \"n\": {},\n      \
             \"serial_unit_cost\": {serial},\n      \"baseline_wall_ms\": {base_ms:.4},\n      \
             \"vm_simd_wall_ms\": {simd_ms:.4},\n      \
             \"threads\": [\n        {}\n      ]\n    }}",
            b.name,
            cfg.n,
            thread_objects.join(",\n        ")
        );
        bench_objects.push(obj);
    }

    // The acceptance bar this bench exists to demonstrate: the tiled
    // engine's modeled critical path at 4 threads beats the sequential
    // verified VM by at least 2.5x on SIMPLE.
    assert!(
        simple_speedup_at_4 >= 2.5,
        "SIMPLE modeled speedup at 4 threads is {simple_speedup_at_4:.2}x, expected >= 2.5x"
    );

    let json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"level\": \"{level}\",\n  \"rounds\": {rounds},\n  \
         \"cost_model\": \"unit cost per load/store/flop/point; parallel cost per batch is \
         max(total/threads, max_tile)\",\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
        bench_objects.join(",\n")
    );
    if let Err(e) = std::fs::write("BENCH_parallel.json", &json) {
        eprintln!("parallel: cannot write BENCH_parallel.json: {e}");
        std::process::exit(1);
    }
    println!("\nwrote BENCH_parallel.json");
}
