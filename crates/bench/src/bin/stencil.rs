//! FLOP and wall-clock impact of the `+rce2` stencil redundancy pass.
//!
//! Runs the three stencil-heavy paper benchmarks (Tomcatv, Simple, SP) at
//! `c2+f3` in three cleanup configurations — none, `+rce`, `+rce2` — on
//! the bytecode VM, and reports the executed floating-point operation
//! count (the VM's fuel counters, an exact machine-independent measure)
//! plus median wall-clock per run. Checksums are compared by bits across
//! the configurations: the pass must change *work*, never *answers*.
//! Results land in `BENCH_stencil.json` for CI trend tracking.
//!
//! ```text
//! stencil [--rounds N] [--quick] [--check]
//! ```
//!
//! `--check` exits nonzero unless `+rce2` cuts executed FLOPs by at least
//! 15% on at least one benchmark at the full sizes (SP clears it; Tomcatv
//! and Simple sit at their structural ceilings near 8% and 6% — see
//! EXPERIMENTS.md). `--check` therefore refuses to run with `--quick`,
//! whose shrunken grids inflate the non-eliminable halo fraction.

use fusion_core::pipeline::{Level, Pipeline};
use loopir::{Engine, NoopObserver};
use std::fmt::Write as _;
use std::time::Instant;
use zlang::ir::ConfigBinding;

const DEFAULT_ROUNDS: usize = 5;

/// The acceptance bar: `+rce2` must cut executed FLOPs by this much…
const FLOP_BAR_PCT: f64 = 15.0;
/// …on at least this many of the benchmarks. SP clears the 15% bar at
/// its full size; Tomcatv and Simple top out near 8% and 6% because
/// their remaining overlap is read-level, not shared-subexpression
/// level, and the pass only performs structural (bit-identical)
/// rewrites. The per-benchmark actuals are tracked in EXPERIMENTS.md.
const FLOP_BAR_COUNT: usize = 1;

fn usage() -> ! {
    eprintln!("usage: stencil [--rounds N] [--quick] [--check]");
    std::process::exit(2);
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

struct Variant {
    suffix: &'static str,
    flops: u64,
    median_ms: f64,
    checksum: u64,
}

fn run_variant(
    bench: &benchmarks::Benchmark,
    suffix: &'static str,
    n: i64,
    rounds: usize,
) -> Variant {
    let program = bench.program();
    let mut pipeline = Pipeline::new(Level::C2F3);
    match suffix {
        "" => {}
        "+rce" => pipeline = pipeline.with_rce(),
        "+rce2" => pipeline = pipeline.with_rce2(),
        _ => unreachable!(),
    }
    let opt = pipeline.optimize(&program);
    let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
    binding.set_by_name(&opt.scalarized.program, bench.size_config, n);
    let mut flops = 0;
    let mut checksum = 0;
    let mut times = Vec::new();
    for round in 0..rounds {
        let mut exec = Engine::Vm
            .executor(&opt.scalarized, binding.clone())
            .expect("compiles");
        let start = Instant::now();
        let out = exec.execute(&mut NoopObserver).expect("runs");
        times.push(start.elapsed().as_secs_f64() * 1e3);
        if round == 0 {
            flops = out.stats.flops;
            checksum = out.checksum().to_bits();
        } else {
            assert_eq!(
                out.stats.flops, flops,
                "{}{suffix}: flops drifted",
                bench.name
            );
        }
    }
    Variant {
        suffix,
        flops,
        median_ms: median(times),
        checksum,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rounds = DEFAULT_ROUNDS;
    let mut quick = false;
    let mut check = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rounds" => {
                rounds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--quick" => quick = true,
            "--check" => check = true,
            _ => usage(),
        }
    }
    if check && quick {
        eprintln!("stencil: --check applies to the full-size grids; drop --quick");
        std::process::exit(2);
    }

    println!("+rce2 stencil impact at c2+f3 on the VM ({rounds} rounds, median)");
    let mut bench_objects = Vec::new();
    let mut passing = 0usize;
    for name in ["tomcatv", "simple", "sp"] {
        let bench = benchmarks::by_name(name).expect("paper benchmark");
        let n = match (bench.rank, quick) {
            (3, true) => 8,
            (3, false) => 32,
            (_, true) => 32,
            (_, false) => 128,
        };
        let variants: Vec<Variant> = ["", "+rce", "+rce2"]
            .into_iter()
            .map(|s| run_variant(&bench, s, n, rounds))
            .collect();
        let base = &variants[0];
        for v in &variants[1..] {
            assert_eq!(
                v.checksum, base.checksum,
                "{name}{}: checksum diverged from the baseline configuration",
                v.suffix
            );
        }
        println!("\n{name} (n = {n})");
        let mut variant_objects = Vec::new();
        let mut rce2_cut = 0.0;
        for v in &variants {
            let cut = 100.0 * (base.flops as f64 - v.flops as f64) / base.flops as f64;
            if v.suffix == "+rce2" {
                rce2_cut = cut;
            }
            println!(
                "  c2+f3{:6} {:>12} flops ({cut:5.1}% cut)  {:8.3} ms",
                v.suffix, v.flops, v.median_ms
            );
            variant_objects.push(format!(
                "{{\"config\": \"c2+f3{}\", \"flops\": {}, \"flop_cut_pct\": {cut:.2}, \
                 \"median_ms\": {:.4}}}",
                v.suffix, v.flops, v.median_ms
            ));
        }
        if rce2_cut >= FLOP_BAR_PCT {
            passing += 1;
        }
        let mut obj = String::new();
        let _ = write!(
            obj,
            "    {{\n      \"name\": \"{name}\",\n      \"n\": {n},\n      \"configs\": [\n        {}\n      ]\n    }}",
            variant_objects.join(",\n        ")
        );
        bench_objects.push(obj);
    }

    let json = format!(
        "{{\n  \"bench\": \"stencil\",\n  \"rounds\": {rounds},\n  \"flop_bar_pct\": {FLOP_BAR_PCT},\n  \
         \"benchmarks\": [\n{}\n  ]\n}}\n",
        bench_objects.join(",\n")
    );
    if let Err(e) = std::fs::write("BENCH_stencil.json", &json) {
        eprintln!("stencil: cannot write BENCH_stencil.json: {e}");
        std::process::exit(1);
    }
    println!(
        "\nwrote BENCH_stencil.json ({passing}/3 benchmarks beat the {FLOP_BAR_PCT}% rce2 bar)"
    );
    if check && passing < FLOP_BAR_COUNT {
        eprintln!(
            "stencil: FAIL: +rce2 cut executed FLOPs by >= {FLOP_BAR_PCT}% on only {passing} \
             benchmark(s); the bar is {FLOP_BAR_COUNT}"
        );
        std::process::exit(1);
    }
}
