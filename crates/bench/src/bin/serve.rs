//! Serving-path benchmark: mixed batch replay through the compile cache.
//!
//! Builds a mixed workload — every benchmark program at a small problem
//! size, on every execution engine — and replays it round-robin as a
//! large request batch through [`fusion_core::serve::serve`] with one
//! shared [`CompileCache`]. Only the first occurrence of each
//! (program, binding, level, engine) coordinate compiles; every repeat
//! is a cache hit that skips the pass pipeline, the bytecode compiler,
//! and the verifier.
//!
//! Asserts the acceptance bars and writes `BENCH_serve.json`:
//!
//! * cache hit rate >= 90% over the batch;
//! * the cache-hit compile path is >= 10x faster than cold compilation
//!   (medians over the distinct workload entries);
//! * every served result is `f64::to_bits`-identical to a one-shot
//!   reference run on [`Engine::Interp`].
//!
//! ```text
//! serve [--quick] [--workers N]
//! ```

use fusion_core::serve::{serve, ServeRequest};
use fusion_core::{CompileCache, RunRequest};
use loopir::{Engine, Executor as _, Interp, NoopObserver};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

// With D distinct keys and R round-robin repeats the steady-state hit
// rate is exactly 1 - 1/R (each key misses once), so both modes clear
// the 90% bar with margin.
const DEFAULT_REPEATS: usize = 25;
const QUICK_REPEATS: usize = 12;

fn usage() -> ! {
    eprintln!("usage: serve [--quick] [--workers N]");
    std::process::exit(2);
}

/// A small problem size per rank: large enough to exercise fused nests,
/// small enough that compile time dominates a cold request.
fn small_n(rank: usize) -> i64 {
    match rank {
        1 => 64,
        2 => 16,
        _ => 6,
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut workers = 4usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let repeats = if quick {
        QUICK_REPEATS
    } else {
        DEFAULT_REPEATS
    };

    // The distinct workload: every benchmark on every engine, at a small
    // per-rank size (and minimal outer iterations where applicable).
    let benches = benchmarks::all();
    let mut distinct: Vec<ServeRequest> = Vec::new();
    for b in &benches {
        for engine in Engine::all() {
            let mut req = RunRequest::new()
                .with_engine(engine)
                .with_set(b.size_config, small_n(b.rank));
            if let Some(iters) = b.iters_config {
                req = req.with_set(iters, 2);
            }
            distinct.push(ServeRequest::new(b.name, b.source, req));
        }
    }

    // Reference results: one-shot Engine::Interp per benchmark, no cache.
    let mut reference: HashMap<&str, Vec<u64>> = HashMap::new();
    for b in &benches {
        let req = distinct
            .iter()
            .find(|r| r.name == b.name)
            .expect("benchmark in workload")
            .request
            .clone()
            .with_engine(Engine::Interp);
        let program = b.program();
        let opt = req.pipeline().optimize(&program);
        let binding = req
            .binding_for(&opt.scalarized.program)
            .expect("valid sets");
        let out = Interp::new(&opt.scalarized, binding)
            .execute(&mut NoopObserver)
            .expect("reference run succeeds");
        reference.insert(b.name, out.scalars.iter().map(|s| s.to_bits()).collect());
    }

    // The batch: the distinct workload, round-robin, `repeats` times.
    let batch: Vec<ServeRequest> = (0..distinct.len() * repeats)
        .map(|i| distinct[i % distinct.len()].clone())
        .collect();
    let cache = Arc::new(CompileCache::new());
    println!(
        "serving {} requests ({} distinct, x{repeats}) on {workers} workers",
        batch.len(),
        distinct.len()
    );
    let report = serve(&batch, workers, &cache);
    print!("{}", report.render());

    // Bar 1: the batch is dominated by cache hits.
    let hit_rate = report.cache.hit_rate();
    assert_eq!(report.failed(), 0, "no request may fail");
    assert_eq!(report.degraded(), 0, "no request may degrade");
    assert!(
        hit_rate >= 0.90,
        "cache hit rate {:.1}% is below the 90% bar",
        hit_rate * 100.0
    );

    // Bar 2: every served result matches the Interp reference bit for bit.
    for r in &report.records {
        let want = &reference[r.name.as_str()];
        assert_eq!(
            &r.scalars_bits, want,
            "request {} ({} on {}) diverged from the interp reference",
            r.index, r.name, r.engine
        );
    }
    println!(
        "all {} results bit-identical to interp reference",
        report.records.len()
    );

    // Bar 3: hit path vs cold compile, medians over the distinct
    // workload. Cold times come from fresh caches; hit times re-probe the
    // warm batch cache.
    let mut cold_us = Vec::new();
    let mut hit_us = Vec::new();
    for sr in &distinct {
        let program = zlang::compile(&sr.source).expect("workload compiles");
        let fresh = CompileCache::new();
        let started = Instant::now();
        fresh
            .get_or_compile(&program, &sr.request)
            .expect("cold compile succeeds");
        cold_us.push(started.elapsed().as_secs_f64() * 1e6);
        let started = Instant::now();
        let (_, hit) = cache
            .get_or_compile(&program, &sr.request)
            .expect("warm lookup succeeds");
        hit_us.push(started.elapsed().as_secs_f64() * 1e6);
        assert!(hit, "{}: batch cache should already hold this key", sr.name);
    }
    let cold = median(cold_us);
    let hit = median(hit_us);
    let amortization = cold / hit.max(1e-3);
    println!("compile path: cold {cold:.0} us vs hit {hit:.1} us ({amortization:.0}x)");
    assert!(
        amortization >= 10.0,
        "hit path is only {amortization:.1}x faster than cold compile, expected >= 10x"
    );

    let mut engines = String::new();
    for (i, (engine, s)) in report.per_engine().iter().enumerate() {
        let _ = write!(
            engines,
            "{}    {{\"engine\": \"{engine}\", \"completed\": {}, \"failed\": {}, \
             \"throughput_rps\": {:.1}}}",
            if i == 0 { "" } else { ",\n" },
            s.completed,
            s.failed,
            s.throughput()
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"requests\": {},\n  \"distinct\": {},\n  \
         \"workers\": {workers},\n  \"wall_ms\": {:.3},\n  \"p50_us\": {},\n  \"p99_us\": {},\n  \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"insertions\": {}, \"evictions\": {}, \
         \"hit_rate\": {hit_rate:.4}}},\n  \
         \"compile_cold_us\": {cold:.1},\n  \"compile_hit_us\": {hit:.2},\n  \
         \"amortization\": {amortization:.1},\n  \"per_engine\": [\n{engines}\n  ]\n}}\n",
        report.records.len(),
        distinct.len(),
        report.wall.as_secs_f64() * 1e3,
        report.percentile_us(50.0),
        report.percentile_us(99.0),
        report.cache.hits,
        report.cache.misses,
        report.cache.insertions,
        report.cache.evictions,
    );
    if let Err(e) = std::fs::write("BENCH_serve.json", &json) {
        eprintln!("serve: cannot write BENCH_serve.json: {e}");
        std::process::exit(1);
    }
    println!("wrote BENCH_serve.json");
}
