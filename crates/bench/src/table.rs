//! Minimal aligned text-table rendering for the reproduction reports.

/// A simple text table: a header row plus data rows, auto-aligned.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table: first column left-aligned, the rest right-aligned.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", c, w = widths[i]));
                }
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:+.1}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("alpha"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new(&["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(12.34), "+12.3%");
        assert_eq!(pct(-5.0), "-5.0%");
        assert_eq!(pct(f64::INFINITY), "inf");
    }
}
