//! Reproduction harness: drivers that regenerate every table and figure of
//! the paper's evaluation (Section 5).
//!
//! | Module   | Regenerates |
//! |----------|-------------|
//! | [`fig6`] | Figure 6 — commercial compiler behavior matrix |
//! | [`fig7`] | Figure 7 — static arrays contracted per benchmark |
//! | [`fig8`] | Figure 8 — memory usage and maximum problem size |
//! | [`perf`] | Figures 9/10/11 — runtime improvement per level, machine, and processor count |
//! | [`sec55`]| Section 5.5 — fusion vs. communication-optimization tradeoff |
//!
//! The `reproduce` binary prints any or all of these as text tables:
//!
//! ```text
//! reproduce fig6|fig7|fig8|fig9|fig10|fig11|sec55|all [--quick]
//! ```

pub mod ablation;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod perf;
pub mod sec55;
pub mod table;
