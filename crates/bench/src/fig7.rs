//! Figure 7: static arrays contracted per benchmark (compiler/user split),
//! with the paper's numbers side by side.

use crate::table::{pct, Table};
use benchmarks::Benchmark;
use fusion_core::pipeline::{Level, Pipeline, Report};

/// One benchmark's row of Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// The benchmark.
    pub bench: Benchmark,
    /// Our optimizer's accounting at C2.
    pub ours: Report,
}

/// Computes the Figure 7 data for every benchmark.
pub fn rows() -> Vec<Fig7Row> {
    benchmarks::all()
        .into_iter()
        .map(|bench| {
            let program = bench.program();
            let ours = Pipeline::new(Level::C2).optimize(&program).report;
            Fig7Row { bench, ours }
        })
        .collect()
}

/// Renders the Figure 7 table.
pub fn report() -> String {
    let mut t = Table::new(&[
        "application",
        "ours w/o contr (c/u)",
        "ours w/ contr",
        "% change",
        "paper w/o (c/u)",
        "paper w/",
        "paper %",
        "scalar equiv",
    ]);
    for r in rows() {
        let p = r.bench.paper;
        let paper_before = p.static_compiler + p.static_user;
        let paper_pct = if paper_before == 0 {
            0.0
        } else {
            100.0 * (p.static_after as f64 - paper_before as f64) / paper_before as f64
        };
        t.row(vec![
            r.bench.name.to_string(),
            format!(
                "{} ({}/{})",
                r.ours.before(),
                r.ours.compiler_before,
                r.ours.user_before
            ),
            format!("{}", r.ours.after()),
            pct(r.ours.percent_change()),
            format!("{} ({}/{})", paper_before, p.static_compiler, p.static_user),
            format!("{}", p.static_after),
            pct(paper_pct),
            p.scalar_equivalent
                .map_or("n/a".to_string(), |s| s.to_string()),
        ]);
    }
    format!(
        "Figure 7 — static arrays before/after contraction (c = compiler temps, u = user)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_reduces_static_arrays() {
        for r in rows() {
            assert!(
                r.ours.after() < r.ours.before(),
                "{}: {} -> {}",
                r.bench.name,
                r.ours.before(),
                r.ours.after()
            );
        }
    }

    #[test]
    fn ep_contracts_everything() {
        let r = rows().into_iter().find(|r| r.bench.name == "ep").unwrap();
        assert_eq!(r.ours.after(), 0);
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert!(r.contains("tomcatv"));
        assert!(r.contains("scalar equiv"));
    }
}
