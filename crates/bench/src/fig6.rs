//! Figure 6: observed behavior of five array-language compilers on the
//! Figure 5 fragments.

use compilers::behavior_matrix;

/// The paper's Figure 6, regenerated from the compiler models.
pub fn report() -> String {
    let m = behavior_matrix();
    let mut out = String::from(
        "Figure 6 — compiler behavior on the Figure 5 fragments\n\
         (yes = produced properly fused/contracted code)\n\n",
    );
    out.push_str(&m.render());
    out.push_str("\nFragments: ");
    for f in &m.fragments {
        out.push_str(&format!("{} {}; ", f.id, f.what));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_all_rows() {
        let r = super::report();
        for name in ["PGI", "IBM", "APR", "Cray", "ZPL"] {
            assert!(r.contains(name), "{r}");
        }
    }
}
