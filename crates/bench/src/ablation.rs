//! Ablation: spatial-locality-sensitive fusion (the paper's future work).
//!
//! Section 5.4's lesson — "fusion should not be performed arbitrarily in an
//! array language" — comes from `c2+f4` *hurting* cache-sensitive codes
//! (3% vs 16% improvement on Fibro). The paper leaves "the extension of
//! our algorithm for spatial locality sensitivity" to future work; we
//! implement it as a cap on the number of distinct arrays a fused loop may
//! stream (`Pipeline::with_spatial_cap`) and measure how much of the `f4`
//! regression it recovers.

use crate::table::{pct, Table};
use fusion_core::pipeline::{Level, Pipeline};
use loopir::Engine;
use machine::presets::Machine;
use runtime::{simulate, CommPolicy, ExecConfig, SimResult};
use zlang::ir::ConfigBinding;

/// Derives a stream cap from a machine's L1 geometry: enough room for each
/// stream to keep a handful of lines resident.
pub fn stream_cap(machine: &Machine) -> usize {
    let lines = machine.l1.bytes / machine.l1.line as u64;
    ((lines / 64) as usize).clamp(3, 24)
}

/// Result of the three-way comparison on one benchmark.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Benchmark name.
    pub name: &'static str,
    /// `c2+f3` time (the reference the paper recommends).
    pub c2f3_ns: f64,
    /// Unbounded `c2+f4` time.
    pub f4_ns: f64,
    /// Capped `c2+f4` time.
    pub f4_capped_ns: f64,
}

impl AblationRow {
    /// How much of the f4 regression the cap recovers (1.0 = all of it;
    /// negative = the cap made things worse; meaningless when f4 did not
    /// regress).
    pub fn recovery(&self) -> f64 {
        let regression = self.f4_ns - self.c2f3_ns;
        if regression <= 0.0 {
            return 1.0;
        }
        (self.f4_ns - self.f4_capped_ns) / regression
    }
}

fn run(
    bench: &benchmarks::Benchmark,
    machine: &Machine,
    cap: Option<usize>,
    engine: Engine,
) -> SimResult {
    let pipeline = match cap {
        Some(k) => Pipeline::new(Level::C2F4).with_spatial_cap(k),
        None => Pipeline::new(Level::C2F4),
    };
    let opt = pipeline.optimize(&bench.program());
    let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
    binding.set_by_name(
        &opt.scalarized.program,
        bench.size_config,
        crate::perf::block_size(bench),
    );
    let cfg = ExecConfig {
        machine: machine.clone(),
        procs: 16,
        policy: CommPolicy::default(),
        engine,
        threads: 0,
        limits: loopir::ExecLimits::none(),
    };
    simulate(&opt.scalarized, binding, &cfg).unwrap()
}

fn run_level(
    bench: &benchmarks::Benchmark,
    machine: &Machine,
    level: Level,
    engine: Engine,
) -> SimResult {
    let opt = Pipeline::new(level).optimize(&bench.program());
    let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
    binding.set_by_name(
        &opt.scalarized.program,
        bench.size_config,
        crate::perf::block_size(bench),
    );
    let cfg = ExecConfig {
        machine: machine.clone(),
        procs: 16,
        policy: CommPolicy::default(),
        engine,
        threads: 0,
        limits: loopir::ExecLimits::none(),
    };
    simulate(&opt.scalarized, binding, &cfg).unwrap()
}

/// Runs the ablation for every benchmark on one machine.
pub fn rows(machine: &Machine, engine: Engine) -> Vec<AblationRow> {
    let cap = stream_cap(machine);
    benchmarks::all()
        .iter()
        .map(|b| AblationRow {
            name: b.name,
            c2f3_ns: run_level(b, machine, Level::C2F3, engine).total_ns,
            f4_ns: run(b, machine, None, engine).total_ns,
            f4_capped_ns: run(b, machine, Some(cap), engine).total_ns,
        })
        .collect()
}

/// Renders the ablation table.
pub fn report(machine: &Machine, engine: Engine) -> String {
    let cap = stream_cap(machine);
    let mut t = Table::new(&[
        "application",
        "c2+f3 (ms)",
        "c2+f4 (ms)",
        "c2+f4 capped (ms)",
        "f4 regression",
        "recovered",
    ]);
    for r in rows(machine, engine) {
        let reg = 100.0 * (r.f4_ns - r.c2f3_ns) / r.c2f3_ns;
        t.row(vec![
            r.name.to_string(),
            format!("{:.3}", r.c2f3_ns / 1e6),
            format!("{:.3}", r.f4_ns / 1e6),
            format!("{:.3}", r.f4_capped_ns / 1e6),
            pct(reg),
            if reg > 0.5 {
                format!("{:.0}%", 100.0 * r.recovery())
            } else {
                "-".into()
            },
        ]);
    }
    format!(
        "Ablation — spatial-locality-sensitive fusion on the {} (stream cap {})\n\n{}",
        machine.name,
        cap,
        t.render()
    )
}

/// Dimension-contraction ablation: memory footprint of `c2` with and
/// without the lower-dimensional contraction extension, per benchmark.
pub fn dimension_report(engine: Engine) -> String {
    use loopir::NoopObserver;
    let mut t = Table::new(&[
        "application",
        "peak bytes (c2)",
        "peak bytes (c2+dim)",
        "collapsed arrays",
        "memory saved",
    ]);
    for b in benchmarks::all() {
        let mem = |opt: &fusion_core::pipeline::Optimized| {
            let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
            binding.set_by_name(
                &opt.scalarized.program,
                b.size_config,
                crate::perf::block_size(&b),
            );
            let mut exec = engine.executor(&opt.scalarized, binding).unwrap();
            exec.execute(&mut NoopObserver).unwrap().stats.peak_bytes
        };
        let plain = Pipeline::new(Level::C2).optimize(&b.program());
        let dimc = Pipeline::new(Level::C2)
            .with_dimension_contraction()
            .optimize(&b.program());
        let (mp, md) = (mem(&plain), mem(&dimc));
        let saved = if mp == 0 {
            0.0
        } else {
            100.0 * (mp - md) as f64 / mp as f64
        };
        t.row(vec![
            b.name.to_string(),
            mp.to_string(),
            md.to_string(),
            dimc.report.dimension_contracted.to_string(),
            format!("{saved:.1}%"),
        ]);
    }
    format!(
        "Ablation — dimension contraction (the paper's §5.2 SP deficiency, implemented)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::presets::t3e;

    #[test]
    fn cap_mitigates_whatever_f4_regression_exists() {
        // The paper: arbitrary fusion (f4) frequently regresses on
        // cache-sensitive codes. On the small-cache T3E model at least one
        // benchmark must regress, and the cap must claw back a meaningful
        // part of that loss.
        let m = t3e();
        let rs = rows(&m, Engine::default());
        let worst = rs
            .iter()
            .max_by(|a, b| {
                (a.f4_ns - a.c2f3_ns)
                    .partial_cmp(&(b.f4_ns - b.c2f3_ns))
                    .expect("finite times")
            })
            .expect("six benchmarks");
        assert!(
            worst.f4_ns > worst.c2f3_ns * 1.03,
            "some benchmark must show an f4 regression; worst was {} at {:+.1}%",
            worst.name,
            100.0 * (worst.f4_ns - worst.c2f3_ns) / worst.c2f3_ns
        );
        assert!(
            worst.recovery() > 0.4,
            "{}: the cap should recover a meaningful part: {:.2}",
            worst.name,
            worst.recovery()
        );
    }

    #[test]
    fn cap_never_hurts_much() {
        // Wherever arbitrary fusion HELPS, the cap must not destroy the
        // benefit relative to c2+f3.
        let m = t3e();
        for r in rows(&m, Engine::default()) {
            assert!(
                r.f4_capped_ns < r.c2f3_ns * 1.06,
                "{}: capped f4 must stay close to or better than c2+f3: {} vs {}",
                r.name,
                r.f4_capped_ns,
                r.c2f3_ns
            );
        }
    }

    #[test]
    fn stream_cap_scales_with_cache() {
        use machine::presets::{paragon, sp2};
        assert!(stream_cap(&sp2()) >= stream_cap(&t3e()));
        assert!(stream_cap(&paragon()) <= stream_cap(&sp2()));
    }
}
