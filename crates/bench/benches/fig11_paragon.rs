//! Bench for the Figure 11 experiment: simulated execution on the Intel
//! Paragon model (tiny cache — the machine where contraction's cache
//! effects are largest), baseline vs. c2 vs. c2+f4 across processor
//! counts.

use bench::perf;
use fusion_core::pipeline::Level;
use loopir::Engine;
use machine::presets::paragon;
use testkit::{bench, report};

fn main() {
    let m = paragon();
    let b = benchmarks::by_name("simple").unwrap();
    for procs in [1u64, 4, 16, 64] {
        for level in [Level::Baseline, Level::C2, Level::C2F4] {
            let t = bench(1, 10, || {
                perf::run(&b, level, &m, procs, 24, Engine::default())
            });
            report(
                &format!("fig11_paragon/simple/{}/p{}", level.name(), procs),
                &t,
            );
        }
    }
}
