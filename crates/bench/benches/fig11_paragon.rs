//! Criterion bench for the Figure 11 experiment: simulated execution on
//! the Intel Paragon model (tiny cache — the machine where contraction's
//! cache effects are largest), baseline vs. c2 vs. c2+f4 across processor
//! counts.

use bench::perf;
use criterion::{criterion_group, criterion_main, Criterion};
use fusion_core::pipeline::Level;
use machine::presets::paragon;

fn bench(c: &mut Criterion) {
    let m = paragon();
    let mut g = c.benchmark_group("fig11_paragon");
    g.sample_size(10);
    let b = benchmarks::by_name("simple").unwrap();
    for procs in [1u64, 4, 16, 64] {
        for level in [Level::Baseline, Level::C2, Level::C2F4] {
            g.bench_function(format!("simple/{}/p{}", level.name(), procs), |bb| {
                bb.iter(|| perf::run(&b, level, &m, procs, 24))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
