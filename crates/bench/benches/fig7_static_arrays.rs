//! Bench for the Figure 7 experiment: the array-level optimizer
//! (normalize + ASDG + fuse + contract + scalarize) on each benchmark.

use fusion_core::pipeline::{Level, Pipeline};
use std::hint::black_box;
use testkit::{bench, report};

fn main() {
    for b in benchmarks::all() {
        let program = b.program();
        let t = bench(3, 30, || {
            Pipeline::new(Level::C2).optimize(black_box(&program))
        });
        report(&format!("fig7_optimize/c2/{}", b.name), &t);
    }
    // Baseline (no fusion) as the reference optimizer cost.
    let sp = benchmarks::by_name("sp").unwrap().program();
    let t = bench(3, 30, || {
        Pipeline::new(Level::Baseline).optimize(black_box(&sp))
    });
    report("fig7_optimize/baseline/sp", &t);
}
