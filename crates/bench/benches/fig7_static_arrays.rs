//! Criterion bench for the Figure 7 experiment: the array-level optimizer
//! (normalize + ASDG + fuse + contract + scalarize) on each benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_core::pipeline::{Level, Pipeline};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_optimize");
    for b in benchmarks::all() {
        let program = b.program();
        g.bench_function(format!("c2/{}", b.name), |bench| {
            bench.iter(|| Pipeline::new(Level::C2).optimize(black_box(&program)))
        });
    }
    // Baseline (no fusion) as the reference optimizer cost.
    let sp = benchmarks::by_name("sp").unwrap().program();
    g.bench_function("baseline/sp", |bench| {
        bench.iter(|| Pipeline::new(Level::Baseline).optimize(black_box(&sp)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
