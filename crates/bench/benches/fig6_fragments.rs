//! Criterion bench for the Figure 6 experiment: time to evaluate each
//! Figure 5 fragment under the full (ZPL) model, and the whole matrix.

use compilers::{fragments, matrix, zpl};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    for f in fragments() {
        let model = zpl();
        g.bench_function(format!("evaluate{}", f.id), |b| {
            b.iter(|| matrix::evaluate(black_box(&model), black_box(&f)))
        });
    }
    g.bench_function("behavior_matrix", |b| b.iter(matrix::behavior_matrix));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
