//! Bench for the Figure 6 experiment: time to evaluate each Figure 5
//! fragment under the full (ZPL) model, and the whole matrix.

use compilers::{fragments, matrix, zpl};
use std::hint::black_box;
use testkit::{bench, report};

fn main() {
    for f in fragments() {
        let model = zpl();
        let t = bench(10, 100, || {
            matrix::evaluate(black_box(&model), black_box(&f))
        });
        report(&format!("fig6/evaluate{}", f.id), &t);
    }
    let t = bench(3, 20, matrix::behavior_matrix);
    report("fig6/behavior_matrix", &t);
}
