//! Bench for the Figure 9 experiment: simulated execution on the Cray T3E
//! model, baseline vs. c2, per benchmark.

use bench::perf;
use fusion_core::pipeline::Level;
use loopir::Engine;
use machine::presets::t3e;
use testkit::{bench, report};

fn main() {
    let m = t3e();
    for b in benchmarks::all() {
        let block = match b.rank {
            1 => 2048,
            2 => 24,
            _ => 8,
        };
        for level in [Level::Baseline, Level::C2] {
            let t = bench(1, 10, || {
                perf::run(&b, level, &m, 16, block, Engine::default())
            });
            report(&format!("fig9_t3e/{}/{}/p16", b.name, level.name()), &t);
        }
    }
}
