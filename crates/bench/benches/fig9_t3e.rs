//! Criterion bench for the Figure 9 experiment: simulated execution on the
//! Cray T3E model, baseline vs. c2, per benchmark.

use bench::perf;
use criterion::{criterion_group, criterion_main, Criterion};
use fusion_core::pipeline::Level;
use machine::presets::t3e;

fn bench(c: &mut Criterion) {
    let m = t3e();
    let mut g = c.benchmark_group("fig9_t3e");
    g.sample_size(10);
    for b in benchmarks::all() {
        let block = if b.rank == 1 { 2048 } else if b.rank == 2 { 24 } else { 8 };
        for level in [Level::Baseline, Level::C2] {
            g.bench_function(format!("{}/{}/p16", b.name, level.name()), |bb| {
                bb.iter(|| perf::run(&b, level, &m, 16, block))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
