//! Bench for the Figure 10 experiment: simulated execution on the IBM SP-2
//! model, every level at p = 16, one representative benchmark per rank.

use bench::perf;
use loopir::Engine;
use machine::presets::sp2;
use testkit::{bench, report};

fn main() {
    let m = sp2();
    for name in ["ep", "tomcatv", "sp"] {
        let b = benchmarks::by_name(name).unwrap();
        let block = match b.rank {
            1 => 2048,
            2 => 24,
            _ => 8,
        };
        for level in perf::PLOT_LEVELS {
            let t = bench(1, 10, || {
                perf::run(&b, level, &m, 16, block, Engine::default())
            });
            report(&format!("fig10_sp2/{}/{}/p16", b.name, level.name()), &t);
        }
    }
}
