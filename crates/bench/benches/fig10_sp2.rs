//! Criterion bench for the Figure 10 experiment: simulated execution on
//! the IBM SP-2 model, every level at p = 16, one representative benchmark
//! per rank.

use bench::perf;
use criterion::{criterion_group, criterion_main, Criterion};
use machine::presets::sp2;

fn bench(c: &mut Criterion) {
    let m = sp2();
    let mut g = c.benchmark_group("fig10_sp2");
    g.sample_size(10);
    for name in ["ep", "tomcatv", "sp"] {
        let b = benchmarks::by_name(name).unwrap();
        let block = if b.rank == 1 { 2048 } else if b.rank == 2 { 24 } else { 8 };
        for level in perf::PLOT_LEVELS {
            g.bench_function(format!("{}/{}/p16", b.name, level.name()), |bb| {
                bb.iter(|| perf::run(&b, level, &m, 16, block))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
