//! Bench comparing the execution engines on the same scalarized
//! program: the reference tree-walking interpreter vs the bytecode VM
//! tiers, on SIMPLE at n = 256 optimized at c2+f3 (the configuration the
//! VM is required to run at least 2x, and the superinstruction/lane
//! engine at least 4x, faster than the interpreter).
//!
//! Samples are interleaved (interp, vm, interp, vm, ...) so background
//! load perturbs both engines equally instead of skewing the ratio.
//!
//! With `--check` the bench exits nonzero if the `vm-simd` engine is
//! under the 4x bar (the CI `simd` job runs this in release mode).

use fusion_core::pipeline::{Level, Pipeline};
use loopir::{Engine, NoopObserver};
use testkit::{bench, Timing};
use zlang::ir::ConfigBinding;

const ROUNDS: usize = 8;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let b = benchmarks::by_name("simple").unwrap();
    let opt = Pipeline::new(Level::C2F3).optimize(&b.program());
    let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
    binding.set_by_name(&opt.scalarized.program, b.size_config, 256);

    // Construct (compile + verify) outside the timed region: this bench
    // compares the engines' execution speed, not compilation cost.
    let one = |engine: Engine| -> Timing {
        let mut exec = engine.executor(&opt.scalarized, binding.clone()).unwrap();
        bench(0, 1, || exec.execute(&mut NoopObserver).unwrap().checksum())
    };
    // Warm both paths once, then interleave the timed rounds.
    for engine in Engine::all() {
        one(engine);
    }
    let mut samples: Vec<(Engine, Vec<f64>)> =
        Engine::all().into_iter().map(|e| (e, Vec::new())).collect();
    for _ in 0..ROUNDS {
        for (engine, xs) in &mut samples {
            xs.push(one(*engine).min_ns);
        }
    }
    let mut medians = Vec::new();
    for (engine, xs) in samples {
        let m = median(xs);
        println!(
            "bench engine_speed/simple_n256_c2f3/{engine:<8} median {:.3} ms",
            m / 1e6
        );
        medians.push((engine, m));
    }
    let interp = medians
        .iter()
        .find(|(e, _)| *e == Engine::Interp)
        .unwrap()
        .1;
    let vm = medians.iter().find(|(e, _)| *e == Engine::Vm).unwrap().1;
    let verified = medians
        .iter()
        .find(|(e, _)| *e == Engine::VmVerified)
        .unwrap()
        .1;
    let simd = medians
        .iter()
        .find(|(e, _)| *e == Engine::VmSimd)
        .unwrap()
        .1;
    println!("engine_speed: vm is {:.2}x the interpreter", interp / vm);
    println!(
        "engine_speed: vm-verified (unchecked accesses) is {:.2}x the checked vm",
        vm / verified
    );
    println!(
        "engine_speed: vm-simd (superinstructions + lanes) is {:.2}x the interpreter",
        interp / simd
    );
    if std::env::args().any(|a| a == "--check") {
        let ratio = interp / simd;
        assert!(
            ratio >= 4.0,
            "vm-simd is only {ratio:.2}x the interpreter (the bar is 4x)"
        );
        println!("engine_speed: check ok (vm-simd >= 4x interp)");
    }
}
