//! Bench for the Figure 8 experiment: the fixed-memory maximum-problem-size
//! search over the allocation footprint.

use bench::fig8;
use fusion_core::pipeline::{Level, Pipeline};
use machine::memory::max_problem_size;
use std::hint::black_box;
use testkit::{bench, report};

fn main() {
    for b in benchmarks::all() {
        let opt = Pipeline::new(Level::C2).optimize(&b.program());
        let t = bench(3, 30, || {
            max_problem_size(2, 1 << 20, 256 << 20, |n| {
                fig8::footprint_bytes(black_box(&opt.scalarized), b.size_config, n as i64)
            })
        });
        report(&format!("fig8/max_problem_size/{}", b.name), &t);
    }
    let t = bench(1, 10, || fig8::rows(black_box(32 << 20)));
    report("fig8/rows/32MB", &t);
}
