//! Criterion bench for the Figure 8 experiment: the fixed-memory
//! maximum-problem-size search over the allocation footprint.

use bench::fig8;
use criterion::{criterion_group, criterion_main, Criterion};
use fusion_core::pipeline::{Level, Pipeline};
use machine::memory::max_problem_size;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    for b in benchmarks::all() {
        let opt = Pipeline::new(Level::C2).optimize(&b.program());
        g.bench_function(format!("max_problem_size/{}", b.name), |bb| {
            bb.iter(|| {
                max_problem_size(2, 1 << 20, 256 << 20, |n| {
                    fig8::footprint_bytes(black_box(&opt.scalarized), b.size_config, n as i64)
                })
            })
        });
    }
    g.bench_function("rows/32MB", |bb| bb.iter(|| fig8::rows(black_box(32 << 20))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
