//! Bench measuring the cost of the supervisor's fault boundary.
//!
//! Both arms do the same end-to-end work — optimize SIMPLE at c2+f3,
//! compile it for the verified VM, and execute at n = 256 — but one runs
//! bare and one runs under `fusion_core::Supervisor` (stage tracking,
//! `catch_unwind`, report building; no budgets, no faults). The supervised
//! arm must stay within 5% of the bare arm: a fault boundary that taxes
//! the fault-free path would never be left on by default.
//!
//! Samples are interleaved (bare, supervised, bare, ...) so background
//! load perturbs both arms equally. The verdict is also written to
//! `BENCH_supervisor.json` for CI.

use fusion_core::pipeline::{Level, Pipeline};
use fusion_core::Supervisor;
use loopir::{Engine, NoopObserver};
use testkit::bench;
use zlang::ir::ConfigBinding;

const ROUNDS: usize = 8;
const TARGET_PCT: f64 = 5.0;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let b = benchmarks::by_name("simple").unwrap();
    let program = b.program();

    let bare = || {
        bench(0, 1, || {
            let opt = Pipeline::new(Level::C2F3).optimize(&program);
            let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
            binding.set_by_name(&opt.scalarized.program, b.size_config, 256);
            let mut exec = Engine::VmVerified
                .executor(&opt.scalarized, binding)
                .unwrap();
            exec.execute(&mut NoopObserver).unwrap().checksum()
        })
        .min_ns
    };
    let supervised = || {
        bench(0, 1, || {
            let sup =
                Supervisor::new(Level::C2F3, Engine::VmVerified).with_binding(b.size_config, 256);
            sup.run_program(&program).unwrap().outcome.checksum()
        })
        .min_ns
    };

    // Warm both arms, then interleave the timed rounds.
    bare();
    supervised();
    let (mut bare_ns, mut sup_ns) = (Vec::new(), Vec::new());
    for _ in 0..ROUNDS {
        bare_ns.push(bare());
        sup_ns.push(supervised());
    }
    let (bare_ms, sup_ms) = (median(bare_ns) / 1e6, median(sup_ns) / 1e6);
    let overhead_pct = (sup_ms / bare_ms - 1.0) * 100.0;
    let pass = overhead_pct <= TARGET_PCT;

    println!("bench supervisor_overhead/simple_n256_c2f3/bare       median {bare_ms:.3} ms");
    println!("bench supervisor_overhead/simple_n256_c2f3/supervised median {sup_ms:.3} ms");
    println!(
        "supervisor_overhead: {overhead_pct:+.2}% vs bare vm-verified (target <= {TARGET_PCT}%) — {}",
        if pass { "ok" } else { "OVER BUDGET" }
    );

    let json = format!(
        "{{\n  \"bench\": \"supervisor_overhead\",\n  \"config\": \"simple n=256 c2+f3 vm-verified\",\n  \
         \"bare_ms\": {bare_ms:.6},\n  \"supervised_ms\": {sup_ms:.6},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \"target_pct\": {TARGET_PCT:.1},\n  \"pass\": {pass}\n}}\n"
    );
    if let Err(e) = std::fs::write("BENCH_supervisor.json", &json) {
        eprintln!("supervisor_overhead: cannot write BENCH_supervisor.json: {e}");
    }
    if !pass {
        std::process::exit(1);
    }
}
