//! Criterion bench for the Section 5.5 experiment: the favor-fusion vs
//! favor-communication pipelines (optimize + simulate) on the
//! communication-sensitive benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_core::pipeline::{Level, Pipeline};
use machine::presets::t3e;
use runtime::comm::favor_comm_pairs;
use runtime::{simulate, CommPolicy, ExecConfig};
use zlang::ir::ConfigBinding;

fn run(bench_name: &str, favor_comm: bool) -> f64 {
    let b = benchmarks::by_name(bench_name).unwrap();
    let program = b.program();
    let pipeline = if favor_comm {
        Pipeline::new(Level::C2F3).with_forbidden(favor_comm_pairs)
    } else {
        Pipeline::new(Level::C2F3)
    };
    let opt = pipeline.optimize(&program);
    let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
    binding.set_by_name(&opt.scalarized.program, b.size_config, 24);
    let cfg = ExecConfig { machine: t3e(), procs: 16, policy: CommPolicy::default() };
    simulate(&opt.scalarized, binding, &cfg).unwrap().total_ns
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec55");
    g.sample_size(10);
    for name in ["simple", "tomcatv", "fibro"] {
        g.bench_function(format!("{name}/favor_fusion"), |bb| bb.iter(|| run(name, false)));
        g.bench_function(format!("{name}/favor_comm"), |bb| bb.iter(|| run(name, true)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
