//! Bench for the Section 5.5 experiment: the favor-fusion vs
//! favor-communication pipelines (optimize + simulate) on the
//! communication-sensitive benchmarks.

use fusion_core::pipeline::{Level, Pipeline};
use loopir::Engine;
use machine::presets::t3e;
use runtime::comm::favor_comm_pairs;
use runtime::{simulate, CommPolicy, ExecConfig};
use testkit::{bench, report};
use zlang::ir::ConfigBinding;

fn run(bench_name: &str, favor_comm: bool) -> f64 {
    let b = benchmarks::by_name(bench_name).unwrap();
    let program = b.program();
    let pipeline = if favor_comm {
        Pipeline::new(Level::C2F3).with_forbidden(favor_comm_pairs)
    } else {
        Pipeline::new(Level::C2F3)
    };
    let opt = pipeline.optimize(&program);
    let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
    binding.set_by_name(&opt.scalarized.program, b.size_config, 24);
    let cfg = ExecConfig {
        machine: t3e(),
        procs: 16,
        policy: CommPolicy::default(),
        engine: Engine::default(),
        threads: 0,
        limits: loopir::ExecLimits::none(),
    };
    simulate(&opt.scalarized, binding, &cfg).unwrap().total_ns
}

fn main() {
    for name in ["simple", "tomcatv", "fibro"] {
        let t = bench(1, 10, || run(name, false));
        report(&format!("sec55/{name}/favor_fusion"), &t);
        let t = bench(1, 10, || run(name, true));
        report(&format!("sec55/{name}/favor_comm"), &t);
    }
}
