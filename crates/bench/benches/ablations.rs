//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the cost of `FIND-LOOP-STRUCTURE` as the dependence set grows,
//! * ASDG construction on wide basic blocks,
//! * collective (weighted) vs greedy pairwise fusion,
//! * the contribution of each communication optimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fusion_core::asdg;
use fusion_core::fusion::{FusionCtx, Partition};
use fusion_core::loopstruct::find_loop_structure;
use fusion_core::normal::normalize;
use fusion_core::pipeline::{Level, Pipeline};
use fusion_core::Udv;
use machine::presets::t3e;
use runtime::{simulate, CommPolicy, ExecConfig};
use std::hint::black_box;
use zlang::ir::ConfigBinding;

/// A synthetic wide block: a chain of k statements B_i := B_{i-1} + 1.
fn chain_program(k: usize) -> zlang::ir::Program {
    let mut vars = String::new();
    let mut body = String::new();
    for i in 0..k {
        vars.push_str(&format!("var B{i} : [R] float; "));
    }
    body.push_str("[R] B0 := 1.0; ");
    for i in 1..k {
        body.push_str(&format!("[R] B{i} := B{} + 1.0; ", i - 1));
    }
    body.push_str(&format!("s := +<< [R] B{}; ", k - 1));
    let src = format!(
        "program chain; config n : int = 16; region R = [1..n, 1..n]; {vars} var s : float; \
         begin {body} end"
    );
    zlang::compile(&src).unwrap()
}

fn bench_loopstruct(c: &mut Criterion) {
    let mut g = c.benchmark_group("find_loop_structure");
    for ndeps in [2usize, 8, 32, 128] {
        // Alternating legal dependences of rank 3.
        let deps: Vec<Udv> = (0..ndeps)
            .map(|i| Udv(vec![(i % 3) as i64, -((i % 2) as i64), 1]))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(ndeps), &deps, |b, deps| {
            b.iter(|| find_loop_structure(black_box(deps), 3))
        });
    }
    g.finish();
}

fn bench_fusion_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("fusion_strategy");
    for k in [8usize, 32, 64] {
        let p = chain_program(k);
        g.bench_function(format!("collective_c2/chain{k}"), |b| {
            b.iter(|| Pipeline::new(Level::C2).optimize(black_box(&p)))
        });
        g.bench_function(format!("pairwise_f4/chain{k}"), |b| {
            b.iter(|| Pipeline::new(Level::C2F4).optimize(black_box(&p)))
        });
        let np = normalize(&p);
        g.bench_function(format!("asdg_build/chain{k}"), |b| {
            b.iter(|| asdg::build(black_box(&np.program), black_box(&np.blocks[0])))
        });
        let gph = asdg::build(&np.program, &np.blocks[0]);
        g.bench_function(format!("pairwise_raw/chain{k}"), |b| {
            b.iter(|| {
                let ctx = FusionCtx::new(&np.program, &np.blocks[0], &gph);
                let mut part = Partition::trivial(gph.n);
                ctx.pairwise_fusion(&mut part);
                part.len()
            })
        });
    }
    g.finish();
}

fn bench_comm_opts(c: &mut Criterion) {
    let mut g = c.benchmark_group("comm_optimizations");
    g.sample_size(10);
    let b = benchmarks::by_name("simple").unwrap();
    let opt = Pipeline::new(Level::C2F3).optimize(&b.program());
    let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
    binding.set_by_name(&opt.scalarized.program, "n", 24);
    let policies = [
        ("all", CommPolicy::default()),
        ("none", CommPolicy::none()),
        ("no_pipelining", CommPolicy { pipelining: false, ..CommPolicy::default() }),
        ("no_redundancy", CommPolicy { redundancy_elim: false, ..CommPolicy::default() }),
    ];
    for (name, policy) in policies {
        g.bench_function(format!("simple/{name}"), |bb| {
            bb.iter(|| {
                let cfg = ExecConfig { machine: t3e(), procs: 16, policy };
                simulate(black_box(&opt.scalarized), binding.clone(), &cfg).unwrap().total_ns
            })
        });
    }
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    let sp = benchmarks::by_name("sp").unwrap().program();
    g.bench_function("c2/sp", |b| {
        b.iter(|| Pipeline::new(Level::C2).optimize(black_box(&sp)))
    });
    g.bench_function("c2+dimension_contraction/sp", |b| {
        b.iter(|| {
            Pipeline::new(Level::C2)
                .with_dimension_contraction()
                .optimize(black_box(&sp))
        })
    });
    let fibro = benchmarks::by_name("fibro").unwrap().program();
    g.bench_function("c2f4_capped/fibro", |b| {
        b.iter(|| Pipeline::new(Level::C2F4).with_spatial_cap(4).optimize(black_box(&fibro)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_loopstruct,
    bench_fusion_strategies,
    bench_comm_opts,
    bench_extensions
);
criterion_main!(benches);
