//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the cost of `FIND-LOOP-STRUCTURE` as the dependence set grows,
//! * ASDG construction on wide basic blocks,
//! * collective (weighted) vs greedy pairwise fusion,
//! * the contribution of each communication optimization.

use fusion_core::asdg;
use fusion_core::fusion::{FusionCtx, Partition};
use fusion_core::loopstruct::find_loop_structure;
use fusion_core::normal::normalize;
use fusion_core::pipeline::{Level, Pipeline};
use fusion_core::Udv;
use loopir::Engine;
use machine::presets::t3e;
use runtime::{simulate, CommPolicy, ExecConfig};
use std::hint::black_box;
use testkit::{bench, report};
use zlang::ir::ConfigBinding;

/// A synthetic wide block: a chain of k statements B_i := B_{i-1} + 1.
fn chain_program(k: usize) -> zlang::ir::Program {
    let mut vars = String::new();
    let mut body = String::new();
    for i in 0..k {
        vars.push_str(&format!("var B{i} : [R] float; "));
    }
    body.push_str("[R] B0 := 1.0; ");
    for i in 1..k {
        body.push_str(&format!("[R] B{i} := B{} + 1.0; ", i - 1));
    }
    body.push_str(&format!("s := +<< [R] B{}; ", k - 1));
    let src = format!(
        "program chain; config n : int = 16; region R = [1..n, 1..n]; {vars} var s : float; \
         begin {body} end"
    );
    zlang::compile(&src).unwrap()
}

fn bench_loopstruct() {
    for ndeps in [2usize, 8, 32, 128] {
        // Alternating legal dependences of rank 3.
        let deps: Vec<Udv> = (0..ndeps)
            .map(|i| Udv(vec![(i % 3) as i64, -((i % 2) as i64), 1]))
            .collect();
        let t = bench(10, 100, || find_loop_structure(black_box(&deps), 3));
        report(&format!("find_loop_structure/{ndeps}"), &t);
    }
}

fn bench_fusion_strategies() {
    for k in [8usize, 32, 64] {
        let p = chain_program(k);
        let t = bench(2, 20, || Pipeline::new(Level::C2).optimize(black_box(&p)));
        report(&format!("fusion_strategy/collective_c2/chain{k}"), &t);
        let t = bench(2, 20, || Pipeline::new(Level::C2F4).optimize(black_box(&p)));
        report(&format!("fusion_strategy/pairwise_f4/chain{k}"), &t);
        let np = normalize(&p);
        let t = bench(2, 20, || {
            asdg::build(black_box(&np.program), black_box(&np.blocks[0]))
        });
        report(&format!("fusion_strategy/asdg_build/chain{k}"), &t);
        let gph = asdg::build(&np.program, &np.blocks[0]);
        let t = bench(2, 20, || {
            let ctx = FusionCtx::new(&np.program, &np.blocks[0], &gph);
            let mut part = Partition::trivial(gph.n);
            ctx.pairwise_fusion(&mut part);
            part.len()
        });
        report(&format!("fusion_strategy/pairwise_raw/chain{k}"), &t);
    }
}

fn bench_comm_opts() {
    let b = benchmarks::by_name("simple").unwrap();
    let opt = Pipeline::new(Level::C2F3).optimize(&b.program());
    let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
    binding.set_by_name(&opt.scalarized.program, "n", 24);
    let policies = [
        ("all", CommPolicy::default()),
        ("none", CommPolicy::none()),
        (
            "no_pipelining",
            CommPolicy {
                pipelining: false,
                ..CommPolicy::default()
            },
        ),
        (
            "no_redundancy",
            CommPolicy {
                redundancy_elim: false,
                ..CommPolicy::default()
            },
        ),
    ];
    for (name, policy) in policies {
        let t = bench(1, 10, || {
            let cfg = ExecConfig {
                machine: t3e(),
                procs: 16,
                policy,
                engine: Engine::default(),
                threads: 0,
                limits: loopir::ExecLimits::none(),
            };
            simulate(black_box(&opt.scalarized), binding.clone(), &cfg)
                .unwrap()
                .total_ns
        });
        report(&format!("comm_optimizations/simple/{name}"), &t);
    }
}

fn bench_extensions() {
    let sp = benchmarks::by_name("sp").unwrap().program();
    let t = bench(1, 10, || Pipeline::new(Level::C2).optimize(black_box(&sp)));
    report("extensions/c2/sp", &t);
    let t = bench(1, 10, || {
        Pipeline::new(Level::C2)
            .with_dimension_contraction()
            .optimize(black_box(&sp))
    });
    report("extensions/c2+dimension_contraction/sp", &t);
    let fibro = benchmarks::by_name("fibro").unwrap().program();
    let t = bench(1, 10, || {
        Pipeline::new(Level::C2F4)
            .with_spatial_cap(4)
            .optimize(black_box(&fibro))
    });
    report("extensions/c2f4_capped/fibro", &t);
}

fn main() {
    bench_loopstruct();
    bench_fusion_strategies();
    bench_comm_opts();
    bench_extensions();
}
