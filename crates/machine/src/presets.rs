//! The three machines of the paper's evaluation (Section 5), as cost-model
//! presets.
//!
//! Cache geometries come from the paper's hardware descriptions; timing
//! parameters are plausible-era figures chosen to reproduce the machines'
//! *relative* characteristics (the T3E's fast network and small L1, the
//! SP-2's large cache and slow network, the Paragon's tiny cache and slow
//! everything). Absolute times are not meaningful.

use crate::cache::CacheConfig;
use crate::cost::CostModel;

/// Which machine a preset models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MachineKind {
    /// Cray T3E: 450 MHz Alpha 21164, 8 KB L1 + 96 KB L2, fast network.
    T3e,
    /// IBM SP-2: 120 MHz POWER2 SC, 128 KB data cache, slow network.
    Sp2,
    /// Intel Paragon: 75 MHz i860, 8 KB data cache, slow network.
    Paragon,
}

impl MachineKind {
    /// All three machines.
    pub fn all() -> [MachineKind; 3] {
        [MachineKind::T3e, MachineKind::Sp2, MachineKind::Paragon]
    }

    /// The machine's display name.
    pub fn name(self) -> &'static str {
        match self {
            MachineKind::T3e => "Cray T3E",
            MachineKind::Sp2 => "IBM SP-2",
            MachineKind::Paragon => "Intel Paragon",
        }
    }

    /// The preset for this machine.
    pub fn machine(self) -> Machine {
        match self {
            MachineKind::T3e => t3e(),
            MachineKind::Sp2 => sp2(),
            MachineKind::Paragon => paragon(),
        }
    }
}

impl std::fmt::Display for MachineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Display name.
    pub name: &'static str,
    /// Which machine this is.
    pub kind: MachineKind,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Optional L2 cache.
    pub l2: Option<CacheConfig>,
    /// Timing parameters.
    pub cost: CostModel,
    /// Per-node memory for the Figure 8 problem-size experiments, bytes.
    pub node_memory: u64,
}

/// The Cray T3E preset: 8 KB direct-mapped L1, 96 KB 3-way L2, low-latency
/// interconnect (the paper: 450 MHz Alpha 21164, 256 MB/node).
pub fn t3e() -> Machine {
    Machine {
        name: "Cray T3E",
        kind: MachineKind::T3e,
        l1: CacheConfig {
            bytes: 8 * 1024,
            line: 32,
            assoc: 1,
        },
        l2: Some(CacheConfig {
            bytes: 96 * 1024,
            line: 64,
            assoc: 3,
        }),
        cost: CostModel {
            flop_ns: 2.2,
            l1_hit_ns: 1.1,
            l1_miss_ns: 20.0,
            l2_miss_ns: 80.0,
            msg_latency_ns: 1_500.0,
            byte_ns: 3.0,
            overlap_efficiency: 0.9,
        },
        node_memory: 256 * 1024 * 1024,
    }
}

/// The IBM SP-2 preset: 128 KB 4-way data cache, high-latency switch
/// (the paper: 120 MHz POWER2 SC, 256 MB/node).
pub fn sp2() -> Machine {
    Machine {
        name: "IBM SP-2",
        kind: MachineKind::Sp2,
        l1: CacheConfig {
            bytes: 128 * 1024,
            line: 128,
            assoc: 4,
        },
        l2: None,
        cost: CostModel {
            flop_ns: 4.2,
            l1_hit_ns: 2.0,
            l1_miss_ns: 150.0,
            l2_miss_ns: 0.0,
            msg_latency_ns: 40_000.0,
            byte_ns: 28.0,
            overlap_efficiency: 0.25,
        },
        node_memory: 256 * 1024 * 1024,
    }
}

/// The Intel Paragon preset: 8 KB 2-way data cache, slow processor and
/// network (the paper: 75 MHz i860, 32 MB/node).
pub fn paragon() -> Machine {
    Machine {
        name: "Intel Paragon",
        kind: MachineKind::Paragon,
        l1: CacheConfig {
            bytes: 8 * 1024,
            line: 32,
            assoc: 2,
        },
        l2: None,
        cost: CostModel {
            flop_ns: 13.3,
            l1_hit_ns: 6.6,
            l1_miss_ns: 250.0,
            l2_miss_ns: 0.0,
            msg_latency_ns: 30_000.0,
            byte_ns: 11.0,
            overlap_efficiency: 0.5,
        },
        node_memory: 32 * 1024 * 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_well_formed() {
        for kind in MachineKind::all() {
            let m = kind.machine();
            assert_eq!(m.kind, kind);
            assert!(m.l1.sets() > 0);
            if let Some(l2) = m.l2 {
                assert!(l2.bytes > m.l1.bytes);
            }
            assert!(m.cost.flop_ns > 0.0);
            assert!(m.node_memory > 0);
        }
    }

    #[test]
    fn relative_characteristics_hold() {
        let (t, s, p) = (t3e(), sp2(), paragon());
        assert!(
            t.cost.msg_latency_ns < s.cost.msg_latency_ns,
            "T3E network is fastest"
        );
        assert!(t.cost.msg_latency_ns < p.cost.msg_latency_ns);
        assert!(s.l1.bytes > t.l1.bytes, "SP-2 has the big cache");
        assert!(
            p.cost.flop_ns > t.cost.flop_ns,
            "Paragon is the slowest processor"
        );
        assert!(
            p.node_memory < t.node_memory,
            "Paragon has the least memory"
        );
    }
}
