//! Simulated machine substrate.
//!
//! The paper evaluates on a Cray T3E, an IBM SP-2, and an Intel Paragon.
//! This crate replaces those testbeds with a parameterized machine model:
//!
//! * a set-associative, LRU [`cache::Cache`] simulator (one or two levels)
//!   fed by the `loopir` interpreter's exact address stream,
//! * a [`cost::CostModel`] mapping flop counts, cache misses, and message
//!   traffic to simulated time,
//! * [`presets`] for the three machines with parameters from the paper
//!   (Section 5: T3E = 8 KB L1 + 96 KB L2, SP-2 = 128 KB, Paragon = 8 KB),
//! * [`memory`] helpers for the fixed-memory maximum-problem-size
//!   experiments of Figure 8.
//!
//! The model's purpose is to reproduce *relative* effects — which
//! transformation wins, where fusion helps or hurts — not absolute times.
//!
//! # Example
//!
//! ```
//! use machine::{cache::{Cache, CacheConfig}};
//! let mut c = Cache::new(CacheConfig { bytes: 1024, line: 32, assoc: 1 });
//! assert!(!c.access(0));   // cold miss
//! assert!(c.access(8));    // same line: hit
//! assert!(!c.access(1024)); // conflicting line in a 1 KB direct-mapped cache
//! assert!(!c.access(0));   // evicted
//! assert_eq!(c.misses(), 3);
//! ```

pub mod cache;
pub mod cost;
pub mod memory;
pub mod presets;
pub mod sim;

pub use cache::{Cache, CacheConfig};
pub use cost::CostModel;
pub use presets::{Machine, MachineKind};
pub use sim::{MemSim, MemStats};
