//! Fixed-memory problem-size search (Figure 8 of the paper).
//!
//! The paper determines, per benchmark and machine, the largest problem
//! size that fits in a node's memory with and without contraction, using
//! the operating system's process-size limit. We reproduce that with a
//! monotone search over a `problem size → peak bytes` function measured by
//! the interpreter's allocator.

/// Finds the largest `n` in `[lo, hi]` such that `bytes(n) <= budget`,
/// assuming `bytes` is nondecreasing in `n`. Returns `None` if even `lo`
/// does not fit.
///
/// ```
/// let max = machine::memory::max_problem_size(1, 10_000, 1_000_000, |n| n * n * 8);
/// assert_eq!(max, Some(353)); // 353^2*8 = 996,872 <= 1e6 < 354^2*8
/// ```
pub fn max_problem_size(
    lo: u64,
    hi: u64,
    budget: u64,
    mut bytes: impl FnMut(u64) -> u64,
) -> Option<u64> {
    if bytes(lo) > budget {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    if bytes(hi) <= budget {
        return Some(hi);
    }
    // Invariant: bytes(lo) <= budget < bytes(hi).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if bytes(mid) <= budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// The paper's predicted percent change in maximum problem size from the
/// live-array counts: `C(l_b, l_a) = 100 × (l_b − l_a) / l_a` (Section 5.3;
/// the maximum problem size is inversely proportional to the number of
/// simultaneously live equal-sized arrays).
///
/// Returns `f64::INFINITY` when contraction eliminates every array
/// (`l_a == 0`), as for EP.
pub fn predicted_percent_change(live_before: usize, live_after: usize) -> f64 {
    if live_after == 0 {
        f64::INFINITY
    } else {
        100.0 * (live_before as f64 - live_after as f64) / live_after as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_boundary() {
        assert_eq!(max_problem_size(1, 100, 64, |n| n * 8), Some(8));
        assert_eq!(max_problem_size(1, 100, 63, |n| n * 8), Some(7));
    }

    #[test]
    fn none_when_nothing_fits() {
        assert_eq!(max_problem_size(10, 100, 9, |n| n), None);
    }

    #[test]
    fn hi_returned_when_everything_fits() {
        assert_eq!(max_problem_size(1, 50, 1_000_000, |n| n), Some(50));
    }

    #[test]
    fn paper_c_values() {
        // Figure 8: Tomcatv 19 -> 7 gives C = 171.4; SP 23 -> 17 gives 35.3.
        assert!((predicted_percent_change(19, 7) - 171.4).abs() < 0.1);
        assert!((predicted_percent_change(23, 17) - 35.3).abs() < 0.1);
        assert!((predicted_percent_change(40, 32) - 25.0).abs() < 0.01);
        assert_eq!(predicted_percent_change(22, 0), f64::INFINITY);
    }
}
