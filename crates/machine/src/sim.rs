//! The memory-system simulator: an [`loopir::Observer`] implementation
//! feeding every element access through a one- or two-level cache.

use crate::cache::{Cache, CacheConfig};
use loopir::Observer;

/// Counters accumulated by [`MemSim`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Total element accesses (loads + stores).
    pub accesses: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses (0 when no L2 is configured).
    pub l2_misses: u64,
    /// Floating-point operations.
    pub flops: u64,
}

/// A one- or two-level cache simulator implementing [`loopir::Observer`].
///
/// ```
/// use machine::{MemSim, CacheConfig};
/// use loopir::Observer;
/// let mut m = MemSim::new(CacheConfig { bytes: 512, line: 32, assoc: 1 }, None);
/// m.load(0);
/// m.load(8);
/// m.store(512); // conflicts with line 0 in a direct-mapped 512B cache
/// m.load(0);
/// assert_eq!(m.stats().l1_misses, 3);
/// assert_eq!(m.stats().accesses, 4);
/// ```
#[derive(Debug, Clone)]
pub struct MemSim {
    l1: Cache,
    l2: Option<Cache>,
    stats: MemStats,
}

impl MemSim {
    /// Creates a cold memory system.
    pub fn new(l1: CacheConfig, l2: Option<CacheConfig>) -> Self {
        MemSim {
            l1: Cache::new(l1),
            l2: l2.map(Cache::new),
            stats: MemStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Resets caches and counters.
    pub fn reset(&mut self) {
        self.l1.reset();
        if let Some(l2) = &mut self.l2 {
            l2.reset();
        }
        self.stats = MemStats::default();
    }

    fn touch(&mut self, addr: u64) {
        self.stats.accesses += 1;
        if !self.l1.access(addr) {
            self.stats.l1_misses += 1;
            if let Some(l2) = &mut self.l2 {
                if !l2.access(addr) {
                    self.stats.l2_misses += 1;
                }
            }
        }
    }
}

impl Observer for MemSim {
    fn load(&mut self, addr: u64) {
        self.touch(addr);
    }

    fn store(&mut self, addr: u64) {
        self.touch(addr);
    }

    fn flops(&mut self, n: u64) {
        self.stats.flops += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemSim {
        MemSim::new(
            CacheConfig {
                bytes: 256,
                line: 32,
                assoc: 1,
            },
            Some(CacheConfig {
                bytes: 1024,
                line: 32,
                assoc: 2,
            }),
        )
    }

    #[test]
    fn l2_absorbs_l1_conflicts() {
        let mut m = small();
        // 256 and 0 conflict in L1 (8 sets * 32B) but coexist in L2.
        m.load(0);
        m.load(256);
        m.load(0);
        m.load(256);
        assert_eq!(m.stats().l1_misses, 4);
        assert_eq!(m.stats().l2_misses, 2, "L2 hits on the revisits");
    }

    #[test]
    fn flops_accumulate() {
        let mut m = small();
        m.flops(5);
        m.flops(2);
        assert_eq!(m.stats().flops, 7);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = small();
        m.load(0);
        m.reset();
        assert_eq!(m.stats(), MemStats::default());
        m.load(0);
        assert_eq!(m.stats().l1_misses, 1, "cold after reset");
    }
}
