//! A set-associative, LRU, write-allocate cache simulator.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Line size in bytes.
    pub line: u32,
    /// Associativity (1 = direct mapped).
    pub assoc: u32,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// `line * assoc`, or any parameter is zero).
    pub fn sets(&self) -> u64 {
        assert!(
            self.bytes > 0 && self.line > 0 && self.assoc > 0,
            "cache parameters must be nonzero"
        );
        let per_set = self.line as u64 * self.assoc as u64;
        assert_eq!(
            self.bytes % per_set,
            0,
            "capacity must be a multiple of line*assoc"
        );
        self.bytes / per_set
    }
}

/// One cache level with LRU replacement.
///
/// Both loads and stores allocate (write-allocate, write-back is not
/// modelled separately — a store miss costs like a load miss, which is the
/// behavior the paper's locality arguments rely on).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: resident line tags, most recently used LAST.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty (cold) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets() as usize;
        Cache {
            config,
            sets: vec![Vec::new(); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses a byte address; returns `true` on hit. Misses allocate the
    /// line, evicting the least recently used line of the set if full.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line as u64;
        let set = (line % self.sets.len() as u64) as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            // Move to MRU position.
            let t = ways.remove(pos);
            ways.push(t);
            self.hits += 1;
            true
        } else {
            if ways.len() == self.config.assoc as usize {
                ways.remove(0);
            }
            ways.push(line);
            self.misses += 1;
            false
        }
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets counters and contents.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(bytes: u64, line: u32, assoc: u32) -> Cache {
        Cache::new(CacheConfig { bytes, line, assoc })
    }

    #[test]
    fn spatial_locality_hits_within_line() {
        let mut c = cache(1024, 64, 2);
        assert!(!c.access(128));
        for off in 1..64 {
            assert!(c.access(128 + off), "offset {off} shares the line");
        }
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 63);
    }

    #[test]
    fn direct_mapped_conflict() {
        // 512 B direct mapped, 32 B lines -> 16 sets. Addresses 0 and 512
        // conflict.
        let mut c = cache(512, 32, 1);
        assert!(!c.access(0));
        assert!(!c.access(512));
        assert!(!c.access(0), "0 was evicted by 512");
    }

    #[test]
    fn two_way_avoids_simple_conflict() {
        let mut c = cache(1024, 32, 2);
        assert!(!c.access(0));
        assert!(!c.access(1024)); // different tag, same set — fills way 2
        assert!(c.access(0), "both fit in a 2-way set");
        assert!(c.access(1024));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = cache(64, 32, 2); // one set, two ways
        c.access(0); // A
        c.access(32); // B
        c.access(0); // A again (B is now LRU)
        c.access(64); // C evicts B
        assert!(c.access(0), "A survived");
        assert!(!c.access(32), "B was evicted");
    }

    #[test]
    fn capacity_miss_when_working_set_exceeds_cache() {
        let mut c = cache(1024, 64, 2);
        // Stream 4 KB: every revisit misses.
        for addr in (0..4096u64).step_by(64) {
            c.access(addr);
        }
        let misses_first = c.misses();
        for addr in (0..4096u64).step_by(64) {
            c.access(addr);
        }
        assert_eq!(
            c.misses(),
            misses_first * 2,
            "no reuse survives a 4x working set"
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut c = cache(512, 32, 1);
        c.access(0);
        c.reset();
        assert_eq!(c.misses(), 0);
        assert!(!c.access(0), "cold again after reset");
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_geometry_panics() {
        cache(1000, 64, 3);
    }
}
