//! Cost model: maps operation and miss counts to simulated time.

/// Per-machine cost parameters. All times in nanoseconds unless noted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one floating-point operation.
    pub flop_ns: f64,
    /// Cost of a cache access that hits in L1 (issue cost of a load/store).
    pub l1_hit_ns: f64,
    /// Additional penalty of an L1 miss (service from L2, or from memory on
    /// single-level machines).
    pub l1_miss_ns: f64,
    /// Additional penalty of an L2 miss (service from memory); unused on
    /// single-level machines.
    pub l2_miss_ns: f64,
    /// Per-message communication latency (α), nanoseconds.
    pub msg_latency_ns: f64,
    /// Per-byte communication cost (β), nanoseconds per byte.
    pub byte_ns: f64,
    /// The fraction of communication time that pipelining can hide behind
    /// independent computation. Machines with hardware-offloaded messaging
    /// (T3E) hide most of it; machines whose processor drives the protocol
    /// (SP-2, Paragon) hide much less.
    pub overlap_efficiency: f64,
}

impl CostModel {
    /// Time for a compute phase given counters.
    pub fn compute_ns(&self, flops: u64, accesses: u64, l1_misses: u64, l2_misses: u64) -> f64 {
        flops as f64 * self.flop_ns
            + accesses as f64 * self.l1_hit_ns
            + l1_misses as f64 * self.l1_miss_ns
            + l2_misses as f64 * self.l2_miss_ns
    }

    /// Time for a communication phase: `messages` point-to-point messages
    /// totalling `bytes` payload.
    pub fn comm_ns(&self, messages: u64, bytes: u64) -> f64 {
        messages as f64 * self.msg_latency_ns + bytes as f64 * self.byte_ns
    }

    /// Time for a log-tree global reduction over `p` processors exchanging
    /// `bytes` per hop.
    pub fn reduction_ns(&self, p: u64, bytes: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let hops = (p as f64).log2().ceil();
        hops * self.comm_ns(1, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: CostModel = CostModel {
        flop_ns: 2.0,
        l1_hit_ns: 1.0,
        l1_miss_ns: 20.0,
        l2_miss_ns: 80.0,
        msg_latency_ns: 10_000.0,
        byte_ns: 3.0,
        overlap_efficiency: 0.9,
    };

    #[test]
    fn compute_time_adds_components() {
        assert_eq!(M.compute_ns(10, 4, 2, 1), 20.0 + 4.0 + 40.0 + 80.0);
    }

    #[test]
    fn comm_time_latency_dominated_for_small_messages() {
        assert!(M.comm_ns(10, 100) > M.comm_ns(1, 10_000));
    }

    #[test]
    fn reduction_scales_logarithmically() {
        assert_eq!(M.reduction_ns(1, 8), 0.0);
        let r4 = M.reduction_ns(4, 8);
        let r16 = M.reduction_ns(16, 8);
        assert_eq!(r16, 2.0 * r4);
    }
}
