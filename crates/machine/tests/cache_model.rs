//! Property tests: the cache simulator agrees with a naive reference model
//! (per-set LRU by explicit timestamps) on arbitrary address streams.

use machine::cache::{Cache, CacheConfig};
use std::collections::HashMap;
use testkit::{cases, Rng};

/// Reference model: per set, a map line-tag → last-use time; evict the
/// minimum on overflow.
struct RefCache {
    sets: Vec<HashMap<u64, u64>>,
    line: u64,
    assoc: usize,
    clock: u64,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        RefCache {
            sets: vec![HashMap::new(); cfg.sets() as usize],
            line: cfg.line as u64,
            assoc: cfg.assoc as usize,
            clock: 0,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let tag = addr / self.line;
        let nsets = self.sets.len() as u64;
        let set = &mut self.sets[(tag % nsets) as usize];
        if let Some(t) = set.get_mut(&tag) {
            *t = self.clock;
            true
        } else {
            if set.len() == self.assoc {
                let (&victim, _) = set
                    .iter()
                    .min_by_key(|(_, &t)| t)
                    .expect("nonempty full set");
                set.remove(&victim);
            }
            set.insert(tag, self.clock);
            false
        }
    }
}

fn config(rng: &mut Rng) -> CacheConfig {
    let line = *rng.choose(&[16u32, 32, 64, 128]);
    let assoc = *rng.choose(&[1u32, 2, 4]);
    let sets = rng.range(1, 16) as u64;
    CacheConfig {
        bytes: line as u64 * assoc as u64 * sets,
        line,
        assoc,
    }
}

#[test]
fn simulator_matches_reference() {
    cases(128, 0xcac4e, |rng| {
        let cfg = config(rng);
        // Addresses clustered so that hits actually occur.
        let len = rng.range(1, 399) as usize;
        let stream: Vec<u64> = (0..len).map(|_| rng.range(0, 4095) as u64).collect();
        let mut sim = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for (i, &addr) in stream.iter().enumerate() {
            let a = sim.access(addr);
            let b = reference.access(addr);
            assert_eq!(a, b, "divergence at access {i} (addr {addr}, cfg {cfg:?})");
        }
        assert_eq!(sim.hits() + sim.misses(), stream.len() as u64);
    });
}

#[test]
fn bigger_caches_never_miss_more() {
    cases(128, 0xb16, |rng| {
        let len = rng.range(1, 299) as usize;
        let stream: Vec<u64> = (0..len).map(|_| rng.range(0, 8191) as u64).collect();
        // LRU has the inclusion property: doubling associativity at equal
        // set count cannot increase misses on the same trace.
        let small = CacheConfig {
            bytes: 1024,
            line: 32,
            assoc: 1,
        };
        let large = CacheConfig {
            bytes: 2048,
            line: 32,
            assoc: 2,
        };
        let mut s = Cache::new(small);
        let mut l = Cache::new(large);
        for &a in &stream {
            s.access(a);
            l.access(a);
        }
        assert!(l.misses() <= s.misses());
    });
}

#[test]
fn single_location_hits_after_first() {
    cases(128, 0x0417, |rng| {
        let addr = rng.range(0, 999_999) as u64;
        let cfg = config(rng);
        let mut c = Cache::new(cfg);
        assert!(!c.access(addr));
        for _ in 0..8 {
            assert!(c.access(addr));
        }
    });
}
