//! Property tests: the cache simulator agrees with a naive reference model
//! (per-set LRU by explicit timestamps) on arbitrary address streams.

use machine::cache::{Cache, CacheConfig};
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference model: per set, a map line-tag → last-use time; evict the
/// minimum on overflow.
struct RefCache {
    sets: Vec<HashMap<u64, u64>>,
    line: u64,
    assoc: usize,
    clock: u64,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        RefCache {
            sets: vec![HashMap::new(); cfg.sets() as usize],
            line: cfg.line as u64,
            assoc: cfg.assoc as usize,
            clock: 0,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let tag = addr / self.line;
        let nsets = self.sets.len() as u64;
        let set = &mut self.sets[(tag % nsets) as usize];
        if let Some(t) = set.get_mut(&tag) {
            *t = self.clock;
            true
        } else {
            if set.len() == self.assoc {
                let (&victim, _) =
                    set.iter().min_by_key(|(_, &t)| t).expect("nonempty full set");
                set.remove(&victim);
            }
            set.insert(tag, self.clock);
            false
        }
    }
}

fn configs() -> impl Strategy<Value = CacheConfig> {
    (
        prop::sample::select(vec![16u32, 32, 64, 128]),
        prop::sample::select(vec![1u32, 2, 4]),
        1u64..=16,
    )
        .prop_map(|(line, assoc, sets)| CacheConfig {
            bytes: line as u64 * assoc as u64 * sets,
            line,
            assoc,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn simulator_matches_reference(
        cfg in configs(),
        // Addresses clustered so that hits actually occur.
        stream in prop::collection::vec(0u64..4096, 1..400)
    ) {
        let mut sim = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for (i, &addr) in stream.iter().enumerate() {
            let a = sim.access(addr);
            let b = reference.access(addr);
            prop_assert_eq!(a, b, "divergence at access {} (addr {}, cfg {:?})", i, addr, cfg);
        }
        prop_assert_eq!(sim.hits() + sim.misses(), stream.len() as u64);
    }

    #[test]
    fn bigger_caches_never_miss_more(
        stream in prop::collection::vec(0u64..8192, 1..300)
    ) {
        // LRU has the inclusion property: doubling associativity at equal
        // set count cannot increase misses on the same trace.
        let small = CacheConfig { bytes: 1024, line: 32, assoc: 1 };
        let large = CacheConfig { bytes: 2048, line: 32, assoc: 2 };
        let mut s = Cache::new(small);
        let mut l = Cache::new(large);
        for &a in &stream {
            s.access(a);
            l.access(a);
        }
        prop_assert!(l.misses() <= s.misses());
    }

    #[test]
    fn single_location_hits_after_first(addr in 0u64..1_000_000, cfg in configs()) {
        let mut c = Cache::new(cfg);
        prop_assert!(!c.access(addr));
        for _ in 0..8 {
            prop_assert!(c.access(addr));
        }
    }
}
