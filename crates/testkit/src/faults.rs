//! Deterministic fault injection for chaos testing.
//!
//! Production crates instrument a handful of *fault sites* (the fusion
//! `GROW` step, the bytecode verifier, the VM dispatch loop, the ghost
//! message channel). Each site asks [`fire`] whether the active
//! [`FaultPlan`] wants a fault there; with no plan installed the call is a
//! thread-local read and a `None` check, so the instrumentation costs
//! nothing measurable on the fault-free path.
//!
//! Plans are driven by the crate's seeded [`Rng`], so a fault
//! schedule is a pure function of `(seed, sequence of fire() calls)` and
//! every chaos failure reproduces exactly.
//!
//! ```
//! use testkit::faults::{self, FaultPlan, FaultSite};
//! let plan = FaultPlan::new(42).with(FaultSite::VmTrap, 1.0);
//! let _guard = faults::install(plan);
//! assert!(faults::fire(FaultSite::VmTrap));
//! assert!(!faults::fire(FaultSite::FuseGrow));
//! ```

use crate::Rng;
use std::cell::RefCell;
use std::fmt;
use std::str::FromStr;

/// An instrumented location in the pipeline where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Panic inside the fusion `GROW` step (`fusion_core::fusion`).
    FuseGrow,
    /// The bytecode verifier falsely rejects a correct program
    /// (`loopir::vm::Vm::verify`).
    VerifyReject,
    /// The VM dispatch loop traps at a nest boundary (`loopir::vm`).
    VmTrap,
    /// A vectorized ghost-region message is dropped in transit
    /// (`runtime::comm`); the tracker retries with backoff.
    CommDrop,
    /// A ghost-region message is delivered twice (`runtime::comm`); the
    /// duplicate is discarded but its bandwidth and latency are paid.
    CommDup,
    /// A serving worker wedges before looking at the clock
    /// (`fusion_core::serve`): the stall shows up as queue wait for the
    /// stalled request and every request queued behind it.
    ServeStall,
    /// A serving worker panics mid-request, between dequeue and the
    /// supervisor's fault boundary (`fusion_core::serve`).
    WorkerPanic,
    /// A cached compile artifact comes back bit-flipped: consuming the
    /// hit faults at execution time (`fusion_core::supervisor`), which is
    /// what drives the per-key circuit breaker and cache quarantine.
    CacheCorrupt,
}

impl FaultSite {
    /// Every site, in a stable order.
    pub fn all() -> [FaultSite; 8] {
        [
            FaultSite::FuseGrow,
            FaultSite::VerifyReject,
            FaultSite::VmTrap,
            FaultSite::CommDrop,
            FaultSite::CommDup,
            FaultSite::ServeStall,
            FaultSite::WorkerPanic,
            FaultSite::CacheCorrupt,
        ]
    }

    /// The site's spelling in plan specs and injected-fault messages.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::FuseGrow => "grow-panic",
            FaultSite::VerifyReject => "verify-reject",
            FaultSite::VmTrap => "vm-trap",
            FaultSite::CommDrop => "comm-drop",
            FaultSite::CommDup => "comm-dup",
            FaultSite::ServeStall => "serve-stall",
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::CacheCorrupt => "cache-corrupt",
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FaultSite {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultSite::all()
            .into_iter()
            .find(|site| site.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = FaultSite::all().iter().map(|s| s.name()).collect();
                format!(
                    "unknown fault site `{s}` (expected one of {})",
                    names.join(", ")
                )
            })
    }
}

/// One injection rule: fire at `site` with `probability`, at most
/// `max_fires` times (unlimited when `None`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Where to inject.
    pub site: FaultSite,
    /// Per-visit firing probability in `[0, 1]`.
    pub probability: f64,
    /// Cap on total fires, or `None` for unlimited.
    pub max_fires: Option<u64>,
}

/// A deterministic fault schedule: a seed plus a set of rules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no faults) with a seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds an unlimited rule.
    pub fn with(self, site: FaultSite, probability: f64) -> Self {
        self.with_limited(site, probability, None)
    }

    /// Replaces the seed, keeping the rules. The serve path uses this to
    /// give every worker thread its own deterministic schedule derived
    /// from one batch-level plan.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a rule with a cap on total fires.
    pub fn with_limited(
        mut self,
        site: FaultSite,
        probability: f64,
        max_fires: Option<u64>,
    ) -> Self {
        self.rules.push(FaultRule {
            site,
            probability: probability.clamp(0.0, 1.0),
            max_fires,
        });
        self
    }

    /// True if no rule can ever fire.
    pub fn is_empty(&self) -> bool {
        self.rules.iter().all(|r| r.probability == 0.0)
    }

    /// Parses a plan spec: comma-separated entries, each either
    /// `seed=<n>` or `<site>[:probability[:max-fires]]` (probability
    /// defaults to 1, max-fires to unlimited). Example:
    /// `seed=7,grow-panic,comm-drop:0.5:3`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| format!("bad seed `{seed}` in fault plan"))?;
                continue;
            }
            let mut parts = entry.split(':');
            let site: FaultSite = parts.next().unwrap_or_default().parse()?;
            let probability = match parts.next() {
                None => 1.0,
                Some(p) => p
                    .parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| format!("bad probability `{p}` for `{site}` (want 0..=1)"))?,
            };
            let max_fires = match parts.next() {
                None => None,
                Some(m) => Some(
                    m.parse()
                        .map_err(|_| format!("bad max-fires `{m}` for `{site}`"))?,
                ),
            };
            if let Some(extra) = parts.next() {
                return Err(format!("trailing `{extra}` in fault-plan entry `{entry}`"));
            }
            plan.rules.push(FaultRule {
                site,
                probability,
                max_fires,
            });
        }
        Ok(plan)
    }
}

/// The installed plan plus its mutable firing state.
struct ActivePlan {
    plan: FaultPlan,
    rng: Rng,
    fired: Vec<(FaultSite, u64)>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActivePlan>> = const { RefCell::new(None) };
}

/// Uninstalls the plan it guards when dropped, restoring the previous one.
pub struct FaultGuard {
    previous: Option<ActivePlan>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| *a.borrow_mut() = self.previous.take());
    }
}

/// Installs a fault plan for the current thread until the guard drops.
/// Nested installs stack: dropping the guard restores the previous plan.
#[must_use = "the plan is uninstalled when the guard drops"]
pub fn install(plan: FaultPlan) -> FaultGuard {
    let rng = Rng::new(plan.seed);
    let previous = ACTIVE.with(|a| {
        a.borrow_mut().replace(ActivePlan {
            plan,
            rng,
            fired: Vec::new(),
        })
    });
    FaultGuard { previous }
}

/// Asks the active plan whether to inject a fault at `site`. Always
/// `false` when no plan is installed.
pub fn fire(site: FaultSite) -> bool {
    ACTIVE.with(|a| {
        let mut borrow = a.borrow_mut();
        let Some(active) = borrow.as_mut() else {
            return false;
        };
        let mut decided = false;
        for rule in &active.plan.rules {
            if rule.site != site || decided {
                continue;
            }
            let already = active
                .fired
                .iter()
                .find(|(s, _)| *s == site)
                .map(|&(_, n)| n)
                .unwrap_or(0);
            if rule.max_fires.is_some_and(|m| already >= m) {
                continue;
            }
            // Draw even for probability 1.0 so schedules stay aligned when
            // a probability is tweaked between runs.
            let draw = active.rng.f64(0.0, 1.0);
            if draw < rule.probability {
                match active.fired.iter_mut().find(|(s, _)| *s == site) {
                    Some((_, n)) => *n += 1,
                    None => active.fired.push((site, 1)),
                }
                decided = true;
            }
        }
        decided
    })
}

/// Panics with a recognizable injected-fault message if the plan fires at
/// `site`. The message names the site so supervisors and tests can
/// attribute the fault.
pub fn maybe_panic(site: FaultSite) {
    if fire(site) {
        panic!("injected fault: {}", site.name());
    }
}

/// The standard message for a non-panic injected fault at `site`.
pub fn message(site: FaultSite) -> String {
    format!("injected fault: {}", site.name())
}

/// Fire counts per site under the active plan (for test assertions).
pub fn fired() -> Vec<(FaultSite, u64)> {
    ACTIVE.with(|a| {
        a.borrow()
            .as_ref()
            .map(|p| p.fired.clone())
            .unwrap_or_default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_plan_never_fires() {
        assert!(!fire(FaultSite::FuseGrow));
        assert!(fired().is_empty());
    }

    #[test]
    fn probability_one_always_fires_and_counts() {
        let _g = install(FaultPlan::new(1).with(FaultSite::VmTrap, 1.0));
        for _ in 0..5 {
            assert!(fire(FaultSite::VmTrap));
        }
        assert!(!fire(FaultSite::CommDrop), "other sites stay quiet");
        assert_eq!(fired(), vec![(FaultSite::VmTrap, 5)]);
    }

    #[test]
    fn max_fires_caps_the_schedule() {
        let _g = install(FaultPlan::new(1).with_limited(FaultSite::CommDrop, 1.0, Some(2)));
        assert!(fire(FaultSite::CommDrop));
        assert!(fire(FaultSite::CommDrop));
        assert!(!fire(FaultSite::CommDrop), "cap reached");
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let run = |seed| {
            let _g = install(FaultPlan::new(seed).with(FaultSite::CommDrop, 0.5));
            (0..64)
                .map(|_| fire(FaultSite::CommDrop))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds give different schedules");
    }

    #[test]
    fn guard_restores_previous_plan() {
        let _outer = install(FaultPlan::new(1).with(FaultSite::VmTrap, 1.0));
        {
            let _inner = install(FaultPlan::new(2)); // empty plan
            assert!(!fire(FaultSite::VmTrap));
        }
        assert!(fire(FaultSite::VmTrap), "outer plan restored");
    }

    #[test]
    fn parse_roundtrips_the_spec_grammar() {
        let p = FaultPlan::parse("seed=7,grow-panic,comm-drop:0.5:3").unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].site, FaultSite::FuseGrow);
        assert_eq!(p.rules[0].probability, 1.0);
        assert_eq!(p.rules[1].probability, 0.5);
        assert_eq!(p.rules[1].max_fires, Some(3));
        assert!(FaultPlan::parse("bogus-site").is_err());
        assert!(FaultPlan::parse("vm-trap:2.0").is_err());
        assert!(FaultPlan::parse("vm-trap:0.5:x").is_err());
        assert!(FaultPlan::parse("vm-trap:0.5:1:9").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn panics_carry_the_site_name() {
        let _g = install(FaultPlan::new(3).with(FaultSite::FuseGrow, 1.0));
        let err = std::panic::catch_unwind(|| maybe_panic(FaultSite::FuseGrow)).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("injected fault: grow-panic"), "{msg}");
    }
}
