//! Seeded random `zlang` program generation for differential testing.
//!
//! Emits program *source text* (keeping this crate dependency-free), built
//! so that every generated program is valid by construction:
//!
//! * offset (`@`) reads touch only arrays declared over the haloed region
//!   `RH`, so no access can leave a declared region;
//! * interior arrays are read only after they have been written;
//! * the first declared scalar is a checksum reduction over the final
//!   state, so semantic equivalence across optimization levels and
//!   engines is a single `f64` comparison (compare bits, not values —
//!   generated arithmetic may legitimately produce infinities).
//!
//! The statement mix deliberately exercises the optimizer: self-updates
//! (which force compiler temporaries), chained interior temporaries
//! (contraction candidates), stencil reads (fusion blockers/enablers),
//! `for` loops, and multi-statement dependence chains.

use crate::Rng;
use std::fmt::Write;

/// Tuning knobs for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Problem size bounds (the generated `config n`), inclusive.
    pub n: (i64, i64),
    /// Number of interior arrays (`U0..`), at least 2.
    pub interior_arrays: usize,
    /// Number of haloed arrays (`H0..`), at least 1.
    pub halo_arrays: usize,
    /// Top-level statement count bounds, inclusive.
    pub stmts: (usize, usize),
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            n: (4, 8),
            interior_arrays: 4,
            halo_arrays: 2,
            stmts: (4, 10),
        }
    }
}

/// The nine stencil offsets usable on haloed arrays.
const OFFSETS: [(i64, i64); 9] = [
    (0, 0),
    (-1, 0),
    (1, 0),
    (0, -1),
    (0, 1),
    (-1, -1),
    (-1, 1),
    (1, -1),
    (1, 1),
];

struct Gen<'r> {
    rng: &'r mut Rng,
    opts: GenOptions,
    /// Interior arrays already written (safe to read).
    written: Vec<bool>,
}

impl Gen<'_> {
    fn constant(&mut self) -> String {
        // Small magnitudes and a damping bias keep chained products from
        // exploding too fast; overflow to infinity is still legal.
        let v = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];
        format!("{:?}", v[self.rng.below(v.len())])
    }

    /// A readable operand: an initialized interior array (aligned), a
    /// haloed array (possibly at an offset), an index expression, or a
    /// constant.
    fn operand(&mut self) -> String {
        match self.rng.below(6) {
            0 | 1 => {
                let h = self.rng.below(self.opts.halo_arrays);
                let (di, dj) = OFFSETS[self.rng.below(OFFSETS.len())];
                if (di, dj) == (0, 0) {
                    format!("H{h}")
                } else {
                    format!("H{h}@[{di},{dj}]")
                }
            }
            2 | 3 => {
                let ready: Vec<usize> = (0..self.written.len())
                    .filter(|&u| self.written[u])
                    .collect();
                if ready.is_empty() {
                    self.constant()
                } else {
                    format!("U{}", ready[self.rng.below(ready.len())])
                }
            }
            4 => ["index1", "index2"][self.rng.below(2)].to_string(),
            _ => self.constant(),
        }
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.below(3) == 0 {
            return self.operand();
        }
        let op = ["+", "-", "*"][self.rng.below(3)];
        let l = self.expr(depth - 1);
        let r = self.expr(depth - 1);
        format!("({l} {op} {r})")
    }

    /// One `[R] ...` array assignment, possibly a self-update (which
    /// forces normalization to insert a compiler temporary).
    fn array_stmt(&mut self, out: &mut String, indent: &str) {
        let u = self.rng.below(self.opts.interior_arrays);
        let rhs = self.expr(2);
        let rhs = if self.written[u] && self.rng.below(3) == 0 {
            format!("(U{u} * 0.5 + {rhs})") // self-update: read-and-write
        } else {
            rhs
        };
        self.written[u] = true;
        let _ = writeln!(out, "{indent}[R] U{u} := {rhs};");
    }

    fn stmt(&mut self, out: &mut String, indent: &str, allow_loop: bool) {
        if allow_loop && self.rng.below(5) == 0 {
            let iters = self.rng.range(2, 3);
            let _ = writeln!(out, "{indent}for k := 1 to {iters} do");
            let inner = self.rng.range(1, 3);
            for _ in 0..inner {
                self.array_stmt(out, &format!("{indent}  "));
            }
            let _ = writeln!(out, "{indent}end;");
        } else {
            self.array_stmt(out, indent);
        }
    }
}

/// Generates one random program's source under the default options.
pub fn generate(rng: &mut Rng) -> String {
    generate_with(rng, GenOptions::default())
}

/// Generates one random program's source.
///
/// # Panics
///
/// Panics if `opts` asks for fewer than one halo array, fewer than two
/// interior arrays, or an empty statement range.
pub fn generate_with(rng: &mut Rng, opts: GenOptions) -> String {
    assert!(opts.halo_arrays >= 1 && opts.interior_arrays >= 2);
    assert!(opts.stmts.0 >= 1 && opts.stmts.0 <= opts.stmts.1);
    let n = rng.range(opts.n.0, opts.n.1);
    let mut g = Gen {
        rng,
        opts,
        written: vec![false; opts.interior_arrays],
    };
    let mut src = String::new();
    let _ = writeln!(src, "program chaos;");
    let _ = writeln!(src, "config n : int = {n};");
    let _ = writeln!(src, "region RH = [0..n+1, 0..n+1];");
    let _ = writeln!(src, "region R = [1..n, 1..n];");
    let halos: Vec<String> = (0..opts.halo_arrays).map(|h| format!("H{h}")).collect();
    let _ = writeln!(src, "var {} : [RH] float;", halos.join(", "));
    let interiors: Vec<String> = (0..opts.interior_arrays).map(|u| format!("U{u}")).collect();
    let _ = writeln!(src, "var {} : [R] float;", interiors.join(", "));
    let _ = writeln!(src, "var chk, chk2 : float;");
    let _ = writeln!(src, "var k : int;");
    let _ = writeln!(src, "begin");
    // Initialize every haloed array over its full (haloed) region so that
    // stencil reads never see an unwritten-but-allocated cell pattern that
    // differs between engines (all engines zero-fill, but explicit
    // initialization makes the programs read naturally).
    for h in 0..g.opts.halo_arrays {
        let scale = g.constant();
        let bias = g.constant();
        let _ = writeln!(src, "  [RH] H{h} := (index1 * {scale} + index2 * {bias});");
    }
    let count = g.rng.range(g.opts.stmts.0 as i64, g.opts.stmts.1 as i64);
    for _ in 0..count {
        g.stmt(&mut src, "  ", true);
    }
    // Checksum every interior array that was written, plus one halo array;
    // this keeps them live-out (as in real applications) and gives the
    // differential tests a single scalar to compare.
    let mut terms: Vec<String> = (0..g.opts.interior_arrays)
        .filter(|&u| g.written[u])
        .map(|u| format!("U{u}"))
        .collect();
    terms.push("H0".to_string());
    let sum = terms.join(" + ");
    let _ = writeln!(src, "  chk := +<< [R] ({sum});");
    let _ = writeln!(src, "  chk2 := max<< [R] ({sum});");
    let _ = writeln!(src, "end");
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&mut Rng::new(11));
        let b = generate(&mut Rng::new(11));
        assert_eq!(a, b);
        let c = generate(&mut Rng::new(12));
        assert_ne!(a, c);
    }

    #[test]
    fn programs_have_the_expected_skeleton() {
        for seed in 0..50 {
            let src = generate(&mut Rng::new(seed));
            assert!(src.starts_with("program chaos;"), "{src}");
            assert!(src.contains("chk := +<<"), "{src}");
            assert!(src.contains("[RH] H0 :="), "{src}");
            // Offset reads only ever target haloed arrays.
            for piece in src.split('@').skip(1) {
                let before = &src[..src.find(piece).unwrap() - 1];
                assert!(before.ends_with(|c: char| c.is_ascii_digit()), "{src}");
                let name_start = before.rfind(|c: char| !c.is_ascii_alphanumeric()).unwrap() + 1;
                assert!(
                    before[name_start..].starts_with('H'),
                    "offset read of interior array:\n{src}"
                );
            }
        }
    }
}
