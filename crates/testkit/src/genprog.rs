//! Seeded random `zlang` program generation for differential testing.
//!
//! Emits program *source text* (keeping this crate dependency-free), built
//! so that every generated program is valid by construction:
//!
//! * offset (`@`) reads touch only arrays declared over the haloed region
//!   `RH`, so no access can leave a declared region;
//! * interior arrays are read only after they have been written;
//! * the first declared scalar is a checksum reduction over the final
//!   state, so semantic equivalence across optimization levels and
//!   engines is a single `f64` comparison (compare bits, not values —
//!   generated arithmetic may legitimately produce infinities).
//!
//! The statement mix deliberately exercises the optimizer: self-updates
//! (which force compiler temporaries), chained interior temporaries
//! (contraction candidates), stencil reads (fusion blockers/enablers),
//! `for` loops, and multi-statement dependence chains.

use crate::Rng;
use std::fmt::Write;

/// Tuning knobs for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Problem size bounds (the generated `config n`), inclusive.
    pub n: (i64, i64),
    /// Number of interior arrays (`U0..`), at least 2.
    pub interior_arrays: usize,
    /// Number of haloed arrays (`H0..`), at least 1.
    pub halo_arrays: usize,
    /// Top-level statement count bounds, inclusive.
    pub stmts: (usize, usize),
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            n: (4, 8),
            interior_arrays: 4,
            halo_arrays: 2,
            stmts: (4, 10),
        }
    }
}

/// The nine stencil offsets usable on haloed arrays.
const OFFSETS: [(i64, i64); 9] = [
    (0, 0),
    (-1, 0),
    (1, 0),
    (0, -1),
    (0, 1),
    (-1, -1),
    (-1, 1),
    (1, -1),
    (1, 1),
];

struct Gen<'r> {
    rng: &'r mut Rng,
    opts: GenOptions,
    /// Interior arrays already written (safe to read).
    written: Vec<bool>,
}

impl Gen<'_> {
    fn constant(&mut self) -> String {
        // Small magnitudes and a damping bias keep chained products from
        // exploding too fast; overflow to infinity is still legal.
        let v = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];
        format!("{:?}", v[self.rng.below(v.len())])
    }

    /// A readable operand: an initialized interior array (aligned), a
    /// haloed array (possibly at an offset), an index expression, or a
    /// constant.
    fn operand(&mut self) -> String {
        match self.rng.below(6) {
            0 | 1 => {
                let h = self.rng.below(self.opts.halo_arrays);
                let (di, dj) = OFFSETS[self.rng.below(OFFSETS.len())];
                if (di, dj) == (0, 0) {
                    format!("H{h}")
                } else {
                    format!("H{h}@[{di},{dj}]")
                }
            }
            2 | 3 => {
                let ready: Vec<usize> = (0..self.written.len())
                    .filter(|&u| self.written[u])
                    .collect();
                if ready.is_empty() {
                    self.constant()
                } else {
                    format!("U{}", ready[self.rng.below(ready.len())])
                }
            }
            4 => ["index1", "index2"][self.rng.below(2)].to_string(),
            _ => self.constant(),
        }
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.below(3) == 0 {
            return self.operand();
        }
        let op = ["+", "-", "*"][self.rng.below(3)];
        let l = self.expr(depth - 1);
        let r = self.expr(depth - 1);
        format!("({l} {op} {r})")
    }

    /// One `[R] ...` array assignment, possibly a self-update (which
    /// forces normalization to insert a compiler temporary).
    fn array_stmt(&mut self, out: &mut String, indent: &str) {
        let u = self.rng.below(self.opts.interior_arrays);
        let rhs = self.expr(2);
        let rhs = if self.written[u] && self.rng.below(3) == 0 {
            format!("(U{u} * 0.5 + {rhs})") // self-update: read-and-write
        } else {
            rhs
        };
        self.written[u] = true;
        let _ = writeln!(out, "{indent}[R] U{u} := {rhs};");
    }

    fn stmt(&mut self, out: &mut String, indent: &str, allow_loop: bool) {
        if allow_loop && self.rng.below(5) == 0 {
            let iters = self.rng.range(2, 3);
            let _ = writeln!(out, "{indent}for k := 1 to {iters} do");
            let inner = self.rng.range(1, 3);
            for _ in 0..inner {
                self.array_stmt(out, &format!("{indent}  "));
            }
            let _ = writeln!(out, "{indent}end;");
        } else {
            self.array_stmt(out, indent);
        }
    }
}

/// Generates one random program's source under the default options.
pub fn generate(rng: &mut Rng) -> String {
    generate_with(rng, GenOptions::default())
}

/// Generates one random program's source.
///
/// # Panics
///
/// Panics if `opts` asks for fewer than one halo array, fewer than two
/// interior arrays, or an empty statement range.
pub fn generate_with(rng: &mut Rng, opts: GenOptions) -> String {
    assert!(opts.halo_arrays >= 1 && opts.interior_arrays >= 2);
    assert!(opts.stmts.0 >= 1 && opts.stmts.0 <= opts.stmts.1);
    let n = rng.range(opts.n.0, opts.n.1);
    let mut g = Gen {
        rng,
        opts,
        written: vec![false; opts.interior_arrays],
    };
    let mut src = String::new();
    let _ = writeln!(src, "program chaos;");
    let _ = writeln!(src, "config n : int = {n};");
    let _ = writeln!(src, "region RH = [0..n+1, 0..n+1];");
    let _ = writeln!(src, "region R = [1..n, 1..n];");
    let halos: Vec<String> = (0..opts.halo_arrays).map(|h| format!("H{h}")).collect();
    let _ = writeln!(src, "var {} : [RH] float;", halos.join(", "));
    let interiors: Vec<String> = (0..opts.interior_arrays).map(|u| format!("U{u}")).collect();
    let _ = writeln!(src, "var {} : [R] float;", interiors.join(", "));
    let _ = writeln!(src, "var chk, chk2 : float;");
    let _ = writeln!(src, "var k : int;");
    let _ = writeln!(src, "begin");
    // Initialize every haloed array over its full (haloed) region so that
    // stencil reads never see an unwritten-but-allocated cell pattern that
    // differs between engines (all engines zero-fill, but explicit
    // initialization makes the programs read naturally).
    for h in 0..g.opts.halo_arrays {
        let scale = g.constant();
        let bias = g.constant();
        let _ = writeln!(src, "  [RH] H{h} := (index1 * {scale} + index2 * {bias});");
    }
    let count = g.rng.range(g.opts.stmts.0 as i64, g.opts.stmts.1 as i64);
    for _ in 0..count {
        g.stmt(&mut src, "  ", true);
    }
    // Checksum every interior array that was written, plus one halo array;
    // this keeps them live-out (as in real applications) and gives the
    // differential tests a single scalar to compare.
    let mut terms: Vec<String> = (0..g.opts.interior_arrays)
        .filter(|&u| g.written[u])
        .map(|u| format!("U{u}"))
        .collect();
    terms.push("H0".to_string());
    let sum = terms.join(" + ");
    let _ = writeln!(src, "  chk := +<< [R] ({sum});");
    let _ = writeln!(src, "  chk2 := max<< [R] ({sum});");
    let _ = writeln!(src, "end");
    src
}

/// Generates one stencil-shaped program: flux pairs whose two statements
/// share a compound subexpression at different uniform offsets, repeated
/// neighbor sums, and a const-bound time loop mixing loop-invariant
/// statements (hoistable) with self-updating ones. These are the shapes
/// the `+rce2` offset-lattice pass exists for, so the differential suite
/// sweeps them across levels and engines.
pub fn generate_stencil(rng: &mut Rng) -> String {
    let opts = GenOptions {
        interior_arrays: 6,
        ..GenOptions::default()
    };
    let n = rng.range(opts.n.0, opts.n.1);
    let mut g = Gen {
        rng,
        opts,
        written: vec![false; opts.interior_arrays],
    };
    let mut src = String::new();
    let _ = writeln!(src, "program stencil;");
    let _ = writeln!(src, "config n : int = {n};");
    let _ = writeln!(src, "region RH = [0..n+1, 0..n+1];");
    let _ = writeln!(src, "region R = [1..n, 1..n];");
    let halos: Vec<String> = (0..opts.halo_arrays).map(|h| format!("H{h}")).collect();
    let _ = writeln!(src, "var {} : [RH] float;", halos.join(", "));
    let interiors: Vec<String> = (0..opts.interior_arrays).map(|u| format!("U{u}")).collect();
    let _ = writeln!(src, "var {} : [R] float;", interiors.join(", "));
    let _ = writeln!(src, "var chk, chk2 : float;");
    let _ = writeln!(src, "var k : int;");
    let _ = writeln!(src, "begin");
    for h in 0..g.opts.halo_arrays {
        let scale = g.constant();
        let bias = g.constant();
        let _ = writeln!(src, "  [RH] H{h} := (index1 * {scale} + index2 * {bias});");
    }
    let shapes = g.rng.range(2, 4);
    for _ in 0..shapes {
        g.stencil_shape(&mut src, "  ");
    }
    // A const-bound time loop: one loop-invariant statement (a pure
    // function of the halo arrays, which the loop never writes) followed
    // by self-updates that carry state across iterations.
    let trips = g.rng.range(2, 4);
    let _ = writeln!(src, "  for k := 1 to {trips} do");
    let inv = g.rng.below(g.opts.interior_arrays);
    let h = g.rng.below(g.opts.halo_arrays);
    let c = g.constant();
    let _ = writeln!(src, "    [R] U{inv} := ((H{h}@[-1,0] + H{h}@[1,0]) * {c});");
    g.written[inv] = true;
    for _ in 0..g.rng.range(1, 2) {
        let u = g.rng.below(g.opts.interior_arrays);
        if u == inv {
            continue;
        }
        let rhs = g.expr(1);
        let rhs = if g.written[u] {
            format!("(U{u} * 0.5 + {rhs})")
        } else {
            rhs
        };
        g.written[u] = true;
        let _ = writeln!(src, "    [R] U{u} := {rhs};");
    }
    let _ = writeln!(src, "  end;");
    let mut terms: Vec<String> = (0..g.opts.interior_arrays)
        .filter(|&u| g.written[u])
        .map(|u| format!("U{u}"))
        .collect();
    terms.push("H0".to_string());
    let sum = terms.join(" + ");
    let _ = writeln!(src, "  chk := +<< [R] ({sum});");
    let _ = writeln!(src, "  chk2 := max<< [R] ({sum});");
    let _ = writeln!(src, "end");
    src
}

impl Gen<'_> {
    /// One redundancy-bearing stencil shape: a flux pair (the same
    /// difference expression at offsets `[0,1]`/`[0,0]` and
    /// `[0,0]`/`[0,-1]`, i.e. a uniform shift apart) or a neighbor sum
    /// recomputed verbatim by a second statement.
    fn stencil_shape(&mut self, out: &mut String, indent: &str) {
        let h = self.rng.below(self.opts.halo_arrays);
        let a = self.rng.below(self.opts.interior_arrays);
        let b = self.rng.below(self.opts.interior_arrays);
        let c = self.constant();
        if self.rng.below(2) == 0 {
            // Flux pair along a random axis.
            let (e, w) = if self.rng.below(2) == 0 {
                ("[0,1]", "[0,-1]")
            } else {
                ("[1,0]", "[-1,0]")
            };
            let _ = writeln!(out, "{indent}[R] U{a} := ((H{h}@{e} - H{h}) * {c});");
            if b != a {
                let _ = writeln!(out, "{indent}[R] U{b} := ((H{h} - H{h}@{w}) * {c});");
                self.written[b] = true;
            }
        } else {
            // Neighbor sum, recomputed by a second consumer.
            let sum = format!("((H{h}@[-1,0] + H{h}@[1,0]) + (H{h}@[0,-1] + H{h}@[0,1]))");
            let _ = writeln!(out, "{indent}[R] U{a} := ({sum} * {c});");
            if b != a {
                let _ = writeln!(out, "{indent}[R] U{b} := ({sum} * {c} + H{h});");
                self.written[b] = true;
            }
        }
        self.written[a] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_generation_is_deterministic_and_shaped() {
        let a = generate_stencil(&mut Rng::new(7));
        let b = generate_stencil(&mut Rng::new(7));
        assert_eq!(a, b);
        for seed in 0..30 {
            let src = generate_stencil(&mut Rng::new(seed));
            assert!(src.starts_with("program stencil;"), "{src}");
            assert!(src.contains("for k := 1 to"), "{src}");
            assert!(src.contains("chk := +<<"), "{src}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&mut Rng::new(11));
        let b = generate(&mut Rng::new(11));
        assert_eq!(a, b);
        let c = generate(&mut Rng::new(12));
        assert_ne!(a, c);
    }

    #[test]
    fn programs_have_the_expected_skeleton() {
        for seed in 0..50 {
            let src = generate(&mut Rng::new(seed));
            assert!(src.starts_with("program chaos;"), "{src}");
            assert!(src.contains("chk := +<<"), "{src}");
            assert!(src.contains("[RH] H0 :="), "{src}");
            // Offset reads only ever target haloed arrays.
            for piece in src.split('@').skip(1) {
                let before = &src[..src.find(piece).unwrap() - 1];
                assert!(before.ends_with(|c: char| c.is_ascii_digit()), "{src}");
                let name_start = before.rfind(|c: char| !c.is_ascii_alphanumeric()).unwrap() + 1;
                assert!(
                    before[name_start..].starts_with('H'),
                    "offset read of interior array:\n{src}"
                );
            }
        }
    }
}
