//! Dependency-free helpers for deterministic randomized tests and
//! wall-clock micro-benchmarks.
//!
//! The workspace builds in fully offline environments, so it cannot pull
//! `proptest`, `rand`, or `criterion` from crates.io. This crate provides
//! the small slice of those libraries the tests and benches actually use:
//!
//! * [`Rng`] — a fast, seedable SplitMix64 generator;
//! * [`cases`] — run a closure over `n` deterministic random cases,
//!   reporting the failing seed so a failure reproduces exactly;
//! * [`bench()`] — time a closure over repeated iterations and report the
//!   per-iteration minimum, median, and mean;
//! * [`faults`] — deterministic fault injection ([`faults::FaultPlan`])
//!   driving the chaos suite and the execution supervisor's tests;
//! * [`genprog`] — a seeded random `zlang` program generator for
//!   differential testing.

pub mod faults;
pub mod genprog;

use std::time::Instant;

/// A SplitMix64 pseudo-random generator: tiny, fast, and deterministic
/// across platforms. Good enough statistical quality for test-case
/// generation (it passes BigCrush when used as a 64-bit stream).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.u64() % n as u64) as usize
    }

    /// A uniform `i64` in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "range({lo}, {hi})");
        let span = (hi - lo) as u64 + 1;
        lo + (self.u64() % span) as i64
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// A uniform choice from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

/// Runs `f` over `n` deterministic random cases derived from `seed`.
///
/// Each case gets its own [`Rng`] seeded from `(seed, case index)`, so a
/// failure message's seed reproduces that single case in isolation. The
/// closure panics to signal failure (plain `assert!` works).
pub fn cases(n: u64, seed: u64, mut f: impl FnMut(&mut Rng)) {
    for i in 0..n {
        let case_seed = seed ^ i.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut rng = Rng::new(case_seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            eprintln!("testkit: case {i} of {n} failed (rerun with Rng::new({case_seed:#x}))");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Per-iteration timing summary from [`bench()`], in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Fastest iteration.
    pub min_ns: f64,
    /// Median iteration.
    pub median_ns: f64,
    /// Mean iteration.
    pub mean_ns: f64,
    /// Number of timed iterations.
    pub iters: u64,
}

impl Timing {
    /// Renders as `min/median/mean` in adaptive units.
    pub fn display(&self) -> String {
        fn unit(ns: f64) -> String {
            if ns >= 1e9 {
                format!("{:.3} s", ns / 1e9)
            } else if ns >= 1e6 {
                format!("{:.3} ms", ns / 1e6)
            } else if ns >= 1e3 {
                format!("{:.3} µs", ns / 1e3)
            } else {
                format!("{ns:.0} ns")
            }
        }
        format!(
            "min {} / median {} / mean {}",
            unit(self.min_ns),
            unit(self.median_ns),
            unit(self.mean_ns)
        )
    }
}

/// Times `f` for `iters` iterations after `warmup` untimed ones.
///
/// The closure's return value is passed through `std::hint::black_box` so
/// the computation cannot be optimized away.
pub fn bench<T>(warmup: u64, iters: u64, mut f: impl FnMut() -> T) -> Timing {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min_ns = samples[0];
    let median_ns = samples[samples.len() / 2];
    let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
    Timing {
        min_ns,
        median_ns,
        mean_ns,
        iters: samples.len() as u64,
    }
}

/// Prints one bench line in a stable, greppable format.
pub fn report(name: &str, t: &Timing) {
    println!("bench {name:<40} {}", t.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = Rng::new(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi, "endpoints must be reachable");
    }

    #[test]
    fn f64_stays_in_range() {
        let mut r = Rng::new(2);
        for _ in 0..1000 {
            let v = r.f64(-1.0, 4.0);
            assert!((-1.0..4.0).contains(&v));
        }
    }

    #[test]
    fn cases_reports_distinct_streams() {
        let mut first = Vec::new();
        cases(8, 42, |rng| first.push(rng.u64()));
        let mut second = Vec::new();
        cases(8, 42, |rng| second.push(rng.u64()));
        assert_eq!(first, second, "same seed, same cases");
        assert_eq!(first.len(), 8);
        assert!(first.windows(2).any(|w| w[0] != w[1]), "cases differ");
    }

    #[test]
    fn bench_measures_something() {
        let t = bench(1, 5, || (0..1000u64).sum::<u64>());
        assert!(t.min_ns >= 0.0);
        assert!(t.median_ns >= t.min_ns);
        assert_eq!(t.iters, 5);
    }
}
