//! The array-level intermediate representation.
//!
//! This is the representation on which the paper's transformations operate:
//! programs are scalar control flow (loops, conditionals) around *basic
//! blocks of array statements*. Every array statement is element-wise over a
//! region with constant-offset references — the paper's candidates for
//! normalization, fusion, and contraction.

use crate::ast::{BinOp, ReduceOp, Type, UnOp};
use crate::intern::{Interner, Symbol};
use std::collections::HashMap;
use std::fmt;

/// Index of a config variable in [`Program::configs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConfigId(pub u32);

/// Index of a region in [`Program::regions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// Index of an array variable in [`Program::arrays`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// Index of a scalar variable in [`Program::scalars`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScalarId(pub u32);

macro_rules! impl_display_id {
    ($t:ty, $prefix:literal) => {
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

/// An affine expression `base + Σ coeff·config` over config variables.
///
/// Region bounds are affine so that problem sizes can be swept at run time
/// without recompiling (the paper scales problem size with processor count).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    /// Constant term.
    pub base: i64,
    /// Terms, sorted by config id, with no zero coefficients.
    pub terms: Vec<(ConfigId, i64)>,
}

impl LinExpr {
    /// A constant expression.
    pub fn constant(base: i64) -> Self {
        LinExpr {
            base,
            terms: Vec::new(),
        }
    }

    /// A single config variable.
    pub fn var(id: ConfigId) -> Self {
        LinExpr {
            base: 0,
            terms: vec![(id, 1)],
        }
    }

    /// Normalizes terms: sorts by config id, merges duplicates, drops zeros.
    pub fn normalize(mut self) -> Self {
        self.terms.sort_by_key(|&(id, _)| id);
        let mut merged: Vec<(ConfigId, i64)> = Vec::with_capacity(self.terms.len());
        for (id, c) in self.terms {
            match merged.last_mut() {
                Some((last_id, last_c)) if *last_id == id => *last_c += c,
                _ => merged.push((id, c)),
            }
        }
        merged.retain(|&(_, c)| c != 0);
        self.terms = merged;
        self
    }

    /// Evaluates under a config binding.
    ///
    /// # Panics
    ///
    /// Panics if a referenced config variable is missing from `binding`.
    pub fn eval(&self, binding: &ConfigBinding) -> i64 {
        self.base
            + self
                .terms
                .iter()
                .map(|&(id, c)| c * binding.get(id))
                .sum::<i64>()
    }

    /// Adds a constant.
    pub fn offset(&self, delta: i64) -> Self {
        LinExpr {
            base: self.base + delta,
            terms: self.terms.clone(),
        }
    }

    /// True if the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Concrete values for every config variable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConfigBinding {
    values: Vec<i64>,
}

impl ConfigBinding {
    /// Builds the default binding for a program (each config's declared
    /// default, with float defaults truncated).
    pub fn defaults(program: &Program) -> Self {
        ConfigBinding {
            values: program.configs.iter().map(|c| c.default_int()).collect(),
        }
    }

    /// Returns the value of a config variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: ConfigId) -> i64 {
        self.values[id.0 as usize]
    }

    /// Overrides one config variable's value.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set(&mut self, id: ConfigId, value: i64) {
        self.values[id.0 as usize] = value;
    }

    /// Overrides a config variable by name; returns `false` if no config
    /// with that name exists.
    pub fn set_by_name(&mut self, program: &Program, name: &str, value: i64) -> bool {
        match program.config_by_name(name) {
            Some(id) => {
                self.values[id.0 as usize] = value;
                true
            }
            None => false,
        }
    }
}

/// A declared config variable.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigDecl {
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Default value (float defaults are allowed for scalar math constants).
    pub default: f64,
}

impl ConfigDecl {
    /// The default truncated to an integer (region bounds are integral).
    pub fn default_int(&self) -> i64 {
        self.default as i64
    }
}

/// One dimension of a region.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Extent {
    /// Inclusive lower bound.
    pub lo: LinExpr,
    /// Inclusive upper bound.
    pub hi: LinExpr,
}

/// A declared index set `[lo1..hi1, ..., lor..hir]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionDecl {
    /// Source name.
    pub name: String,
    /// Extents, one per dimension.
    pub extents: Vec<Extent>,
}

impl RegionDecl {
    /// The rank (dimensionality) of the region.
    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// Evaluates the region's concrete bounds under `binding`:
    /// `(lo, hi)` per dimension, inclusive.
    pub fn bounds(&self, binding: &ConfigBinding) -> Vec<(i64, i64)> {
        self.extents
            .iter()
            .map(|e| (e.lo.eval(binding), e.hi.eval(binding)))
            .collect()
    }

    /// The number of index points under `binding` (empty dims count as 0).
    pub fn size(&self, binding: &ConfigBinding) -> u64 {
        self.bounds(binding)
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1).max(0) as u64)
            .product()
    }
}

/// A declared array variable.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Source name (compiler temporaries are named `_tN`).
    pub name: String,
    /// The region the array is allocated over.
    pub region: RegionId,
    /// True if this array was inserted by the compiler (normalization),
    /// false for user-declared arrays. The distinction drives the paper's
    /// C1 (compiler-only) vs C2 (compiler+user) contraction levels.
    pub compiler_temp: bool,
    /// Dimensions (0-based) collapsed by *dimension contraction*: the
    /// array is allocated with extent 1 in these dimensions and every
    /// access ignores the loop index there. Produced by the optional
    /// lower-dimensional contraction extension (the paper's Section 5.2
    /// deficiency); empty for ordinary arrays.
    pub collapsed: Vec<u8>,
}

/// A declared scalar variable.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarDecl {
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
}

/// A constant offset vector applied by `@`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Offset(pub Vec<i64>);

impl Offset {
    /// The all-zero offset of a given rank.
    pub fn zero(rank: usize) -> Self {
        Offset(vec![0; rank])
    }

    /// True if every component is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&d| d == 0)
    }

    /// The rank of the offset.
    pub fn rank(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

/// Intrinsic element-wise functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    Sqrt,
    Exp,
    Ln,
    Sin,
    Cos,
    Abs,
    Floor,
    Min,
    Max,
    Pow,
    /// `select(c, a, b)` = `a` if `c != 0`, else `b`.
    Select,
    /// `rnd(x)`: a deterministic pseudo-random hash of `x` in `[0, 1)`.
    Rnd,
    /// `sign(x)`: -1, 0, or 1.
    Sign,
}

impl Intrinsic {
    /// Resolves an intrinsic from its source name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "sqrt" => Intrinsic::Sqrt,
            "exp" => Intrinsic::Exp,
            "ln" => Intrinsic::Ln,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "abs" => Intrinsic::Abs,
            "floor" => Intrinsic::Floor,
            "min" => Intrinsic::Min,
            "max" => Intrinsic::Max,
            "pow" => Intrinsic::Pow,
            "select" => Intrinsic::Select,
            "rnd" => Intrinsic::Rnd,
            "sign" => Intrinsic::Sign,
            _ => return None,
        })
    }

    /// The required argument count.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Min | Intrinsic::Max | Intrinsic::Pow => 2,
            Intrinsic::Select => 3,
            _ => 1,
        }
    }

    /// The source-level name.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Exp => "exp",
            Intrinsic::Ln => "ln",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Abs => "abs",
            Intrinsic::Floor => "floor",
            Intrinsic::Min => "min",
            Intrinsic::Max => "max",
            Intrinsic::Pow => "pow",
            Intrinsic::Select => "select",
            Intrinsic::Rnd => "rnd",
            Intrinsic::Sign => "sign",
        }
    }

    /// Evaluates the intrinsic on concrete arguments.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.arity()`.
    pub fn eval(self, args: &[f64]) -> f64 {
        assert_eq!(args.len(), self.arity(), "intrinsic {} arity", self.name());
        match self {
            Intrinsic::Sqrt => args[0].sqrt(),
            Intrinsic::Exp => args[0].exp(),
            Intrinsic::Ln => args[0].ln(),
            Intrinsic::Sin => args[0].sin(),
            Intrinsic::Cos => args[0].cos(),
            Intrinsic::Abs => args[0].abs(),
            Intrinsic::Floor => args[0].floor(),
            Intrinsic::Min => args[0].min(args[1]),
            Intrinsic::Max => args[0].max(args[1]),
            Intrinsic::Pow => args[0].powf(args[1]),
            Intrinsic::Select => {
                if args[0] != 0.0 {
                    args[1]
                } else {
                    args[2]
                }
            }
            Intrinsic::Rnd => {
                // SplitMix64-style hash of the bit pattern, mapped to [0,1).
                let mut z = args[0].to_bits().wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64
            }
            Intrinsic::Sign => {
                if args[0] > 0.0 {
                    1.0
                } else if args[0] < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// An element-wise array expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayExpr {
    /// `A@d` — reads array `A` at constant offset `d` from the region index.
    Read(ArrayId, Offset),
    /// A scalar variable broadcast over the region.
    ScalarRef(ScalarId),
    /// A config variable broadcast over the region.
    ConfigRef(ConfigId),
    /// A literal constant broadcast over the region.
    Const(f64),
    /// The region index along dimension `d` (0-based), as a float —
    /// the analogue of ZPL's `Index1`/`Index2` arrays.
    Index(u8),
    /// Unary operation.
    Unary(UnOp, Box<ArrayExpr>),
    /// Binary operation.
    Binary(BinOp, Box<ArrayExpr>, Box<ArrayExpr>),
    /// Intrinsic call.
    Call(Intrinsic, Vec<ArrayExpr>),
}

impl ArrayExpr {
    /// Visits every array read in the expression.
    pub fn for_each_read(&self, f: &mut impl FnMut(ArrayId, &Offset)) {
        match self {
            ArrayExpr::Read(a, off) => f(*a, off),
            ArrayExpr::Unary(_, e) => e.for_each_read(f),
            ArrayExpr::Binary(_, l, r) => {
                l.for_each_read(f);
                r.for_each_read(f);
            }
            ArrayExpr::Call(_, args) => {
                for a in args {
                    a.for_each_read(f);
                }
            }
            ArrayExpr::ScalarRef(_)
            | ArrayExpr::ConfigRef(_)
            | ArrayExpr::Const(_)
            | ArrayExpr::Index(_) => {}
        }
    }

    /// All `(array, offset)` reads, in evaluation order.
    pub fn reads(&self) -> Vec<(ArrayId, Offset)> {
        let mut out = Vec::new();
        self.for_each_read(&mut |a, off| out.push((a, off.clone())));
        out
    }

    /// Rewrites every read via `f` (e.g. to substitute contracted arrays).
    pub fn map_reads(&self, f: &mut impl FnMut(ArrayId, &Offset) -> ArrayExpr) -> ArrayExpr {
        match self {
            ArrayExpr::Read(a, off) => f(*a, off),
            ArrayExpr::Unary(op, e) => ArrayExpr::Unary(*op, Box::new(e.map_reads(f))),
            ArrayExpr::Binary(op, l, r) => {
                ArrayExpr::Binary(*op, Box::new(l.map_reads(f)), Box::new(r.map_reads(f)))
            }
            ArrayExpr::Call(i, args) => {
                ArrayExpr::Call(*i, args.iter().map(|a| a.map_reads(f)).collect())
            }
            other => other.clone(),
        }
    }

    /// Counts array-element references (reads) in the expression.
    pub fn read_count(&self) -> usize {
        let mut n = 0;
        self.for_each_read(&mut |_, _| n += 1);
        n
    }

    /// Counts floating-point operations per element evaluation.
    pub fn flops(&self) -> u64 {
        match self {
            ArrayExpr::Unary(_, e) => 1 + e.flops(),
            ArrayExpr::Binary(_, l, r) => 1 + l.flops() + r.flops(),
            // Transcendentals are costed by the machine model; count 1 here.
            ArrayExpr::Call(_, args) => 1 + args.iter().map(|a| a.flops()).sum::<u64>(),
            _ => 0,
        }
    }
}

/// An element-wise array assignment `[R] A := rhs;`.
///
/// The LHS is always written at offset zero from the region index (as in
/// ZPL); offsets appear only on reads.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayStmt {
    /// The region the statement iterates over.
    pub region: RegionId,
    /// The array written.
    pub lhs: ArrayId,
    /// The element-wise right-hand side.
    pub rhs: ArrayExpr,
}

/// A scalar expression (control flow, reduction targets, loop bounds).
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    Const(f64),
    ScalarRef(ScalarId),
    ConfigRef(ConfigId),
    Unary(UnOp, Box<ScalarExpr>),
    Binary(BinOp, Box<ScalarExpr>, Box<ScalarExpr>),
    Call(Intrinsic, Vec<ScalarExpr>),
}

/// A statement in the array-level IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// An element-wise array assignment.
    Array(ArrayStmt),
    /// A scalar assignment.
    Scalar { lhs: ScalarId, rhs: ScalarExpr },
    /// A full reduction `s := op<< [R] expr;`.
    ///
    /// Reductions are *unnormalizable* array statements: they participate in
    /// dependence analysis (they read arrays) but never fuse or contract.
    Reduce {
        lhs: ScalarId,
        op: ReduceOp,
        region: RegionId,
        arg: ArrayExpr,
    },
    /// A counted loop. The body is re-entered each iteration, so arrays
    /// written in the body may be live across iterations.
    For {
        var: ScalarId,
        lo: ScalarExpr,
        hi: ScalarExpr,
        down: bool,
        body: Vec<Stmt>,
    },
    /// A conditional.
    If {
        cond: ScalarExpr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
}

/// The program's interned name table: one [`Symbol`] per declared name,
/// plus symbol-keyed maps to the declaration ids.
///
/// Built by semantic analysis and maintained by
/// [`Program::add_compiler_temp`], it replaces `String`-keyed `HashMap`
/// lookups on the sema and tooling hot paths: names are hashed once at
/// interning time; every later lookup compares a `u32`.
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    interner: Interner,
    arrays: HashMap<Symbol, ArrayId>,
    scalars: HashMap<Symbol, ScalarId>,
    regions: HashMap<Symbol, RegionId>,
    configs: HashMap<Symbol, ConfigId>,
}

/// Two tables are equal when they bind the same *names* to the same
/// declaration ids. Raw [`Symbol`] values are an artifact of interning
/// order (e.g. direction names interned during analysis but absent from
/// pretty-printed output), so they are deliberately not compared —
/// otherwise a print/re-parse round trip would spuriously differ.
impl PartialEq for NameTable {
    fn eq(&self, other: &Self) -> bool {
        fn by_name<'t, T: Copy>(
            t: &'t NameTable,
            m: &'t HashMap<Symbol, T>,
        ) -> HashMap<&'t str, T> {
            m.iter().map(|(&s, &id)| (t.resolve(s), id)).collect()
        }
        by_name(self, &self.arrays) == by_name(other, &other.arrays)
            && by_name(self, &self.scalars) == by_name(other, &other.scalars)
            && by_name(self, &self.regions) == by_name(other, &other.regions)
            && by_name(self, &self.configs) == by_name(other, &other.configs)
    }
}

impl NameTable {
    /// Interns a name (registering nothing), returning its symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// Looks a name up without interning it.
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.interner.get(name)
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different program's table.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Registers an array declaration under its interned name.
    pub fn register_array(&mut self, name: &str, id: ArrayId) -> Symbol {
        let sym = self.interner.intern(name);
        self.arrays.insert(sym, id);
        sym
    }

    /// Registers a scalar declaration under its interned name.
    pub fn register_scalar(&mut self, name: &str, id: ScalarId) -> Symbol {
        let sym = self.interner.intern(name);
        self.scalars.insert(sym, id);
        sym
    }

    /// Registers a region declaration under its interned name.
    pub fn register_region(&mut self, name: &str, id: RegionId) -> Symbol {
        let sym = self.interner.intern(name);
        self.regions.insert(sym, id);
        sym
    }

    /// Registers a config declaration under its interned name.
    pub fn register_config(&mut self, name: &str, id: ConfigId) -> Symbol {
        let sym = self.interner.intern(name);
        self.configs.insert(sym, id);
        sym
    }

    /// The array bound to a symbol, if any.
    pub fn array(&self, sym: Symbol) -> Option<ArrayId> {
        self.arrays.get(&sym).copied()
    }

    /// The scalar bound to a symbol, if any.
    pub fn scalar(&self, sym: Symbol) -> Option<ScalarId> {
        self.scalars.get(&sym).copied()
    }

    /// The region bound to a symbol, if any.
    pub fn region(&self, sym: Symbol) -> Option<RegionId> {
        self.regions.get(&sym).copied()
    }

    /// The config bound to a symbol, if any.
    pub fn config(&self, sym: Symbol) -> Option<ConfigId> {
        self.configs.get(&sym).copied()
    }
}

/// A complete program in the array-level IR.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Config (problem-size) variables.
    pub configs: Vec<ConfigDecl>,
    /// Regions.
    pub regions: Vec<RegionDecl>,
    /// Arrays (user + compiler temporaries appended by normalization).
    pub arrays: Vec<ArrayDecl>,
    /// Scalars (loop variables, reduction targets, user scalars).
    pub scalars: Vec<ScalarDecl>,
    /// Top-level statement list.
    pub body: Vec<Stmt>,
    /// Interned name table over every declaration.
    pub names: NameTable,
}

impl Program {
    /// Looks up an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.names
            .symbol(name)
            .and_then(|s| self.names.array(s))
            .or_else(|| {
                // Fallback for hand-built programs that never populated
                // the table.
                self.arrays
                    .iter()
                    .position(|a| a.name == name)
                    .map(|i| ArrayId(i as u32))
            })
    }

    /// Looks up a scalar by name.
    pub fn scalar_by_name(&self, name: &str) -> Option<ScalarId> {
        self.names
            .symbol(name)
            .and_then(|s| self.names.scalar(s))
            .or_else(|| {
                self.scalars
                    .iter()
                    .position(|s| s.name == name)
                    .map(|i| ScalarId(i as u32))
            })
    }

    /// Looks up a region by name.
    pub fn region_by_name(&self, name: &str) -> Option<RegionId> {
        self.names
            .symbol(name)
            .and_then(|s| self.names.region(s))
            .or_else(|| {
                self.regions
                    .iter()
                    .position(|r| r.name == name)
                    .map(|i| RegionId(i as u32))
            })
    }

    /// Looks up a config by name.
    pub fn config_by_name(&self, name: &str) -> Option<ConfigId> {
        self.names
            .symbol(name)
            .and_then(|s| self.names.config(s))
            .or_else(|| {
                self.configs
                    .iter()
                    .position(|c| c.name == name)
                    .map(|i| ConfigId(i as u32))
            })
    }

    /// The declaration of an array.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0 as usize]
    }

    /// The declaration of a region.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn region(&self, id: RegionId) -> &RegionDecl {
        &self.regions[id.0 as usize]
    }

    /// The declaration of a scalar.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn scalar(&self, id: ScalarId) -> &ScalarDecl {
        &self.scalars[id.0 as usize]
    }

    /// The rank of an array (the rank of its declared region).
    pub fn array_rank(&self, id: ArrayId) -> usize {
        self.region(self.array(id).region).rank()
    }

    /// Adds a compiler temporary array over `region`, returning its id.
    pub fn add_compiler_temp(&mut self, region: RegionId) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        let name = format!(
            "_t{}",
            self.arrays.iter().filter(|a| a.compiler_temp).count()
        );
        self.names.register_array(&name, id);
        self.arrays.push(ArrayDecl {
            name,
            region,
            compiler_temp: true,
            collapsed: Vec::new(),
        });
        id
    }

    /// The number of elements an array's allocation holds under a binding,
    /// honoring collapsed dimensions (extent 1).
    pub fn array_alloc_elems(&self, id: ArrayId, binding: &ConfigBinding) -> u64 {
        let decl = self.array(id);
        let region = self.region(decl.region);
        region
            .bounds(binding)
            .iter()
            .enumerate()
            .map(|(d, &(lo, hi))| {
                if decl.collapsed.contains(&(d as u8)) {
                    1
                } else {
                    (hi - lo + 1).max(0) as u64
                }
            })
            .product()
    }

    /// Counts statements of each kind, recursively (diagnostics/reporting).
    pub fn stmt_counts(&self) -> StmtCounts {
        fn walk(stmts: &[Stmt], c: &mut StmtCounts) {
            for s in stmts {
                match s {
                    Stmt::Array(_) => c.array += 1,
                    Stmt::Scalar { .. } => c.scalar += 1,
                    Stmt::Reduce { .. } => c.reduce += 1,
                    Stmt::For { body, .. } => {
                        c.for_loops += 1;
                        walk(body, c);
                    }
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        c.ifs += 1;
                        walk(then_body, c);
                        walk(else_body, c);
                    }
                }
            }
        }
        let mut c = StmtCounts::default();
        walk(&self.body, &mut c);
        c
    }

    /// Builds a name → id map for arrays (tests and tooling).
    pub fn array_names(&self) -> HashMap<String, ArrayId> {
        self.arrays
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), ArrayId(i as u32)))
            .collect()
    }
}

/// Statement counts by kind (see [`Program::stmt_counts`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StmtCounts {
    pub array: usize,
    pub scalar: usize,
    pub reduce: usize,
    pub for_loops: usize,
    pub ifs: usize,
}

impl_display_id!(ConfigId, "cfg");
impl_display_id!(RegionId, "R");
impl_display_id!(ScalarId, "s");
impl_display_id!(ArrayId, "A");

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(i: u32) -> ConfigId {
        ConfigId(i)
    }

    #[test]
    fn linexpr_eval_and_normalize() {
        let e = LinExpr {
            base: 3,
            terms: vec![(cfg(1), 2), (cfg(0), 1), (cfg(1), -2)],
        }
        .normalize();
        assert_eq!(e.terms, vec![(cfg(0), 1)]);
        let mut b = ConfigBinding {
            values: vec![10, 99],
        };
        assert_eq!(e.eval(&b), 13);
        b.set(cfg(0), 4);
        assert_eq!(e.eval(&b), 7);
    }

    #[test]
    fn region_size_and_bounds() {
        let r = RegionDecl {
            name: "R".into(),
            extents: vec![
                Extent {
                    lo: LinExpr::constant(1),
                    hi: LinExpr::var(cfg(0)),
                },
                Extent {
                    lo: LinExpr::constant(0),
                    hi: LinExpr::var(cfg(0)).offset(1),
                },
            ],
        };
        let b = ConfigBinding { values: vec![8] };
        assert_eq!(r.bounds(&b), vec![(1, 8), (0, 9)]);
        assert_eq!(r.size(&b), 8 * 10);
    }

    #[test]
    fn empty_region_has_zero_size() {
        let r = RegionDecl {
            name: "E".into(),
            extents: vec![Extent {
                lo: LinExpr::constant(5),
                hi: LinExpr::constant(2),
            }],
        };
        assert_eq!(r.size(&ConfigBinding::default()), 0);
    }

    #[test]
    fn offset_zero_and_display() {
        assert!(Offset::zero(3).is_zero());
        assert!(!Offset(vec![0, -1]).is_zero());
        assert_eq!(Offset(vec![1, -2]).to_string(), "(1,-2)");
    }

    #[test]
    fn intrinsic_eval() {
        assert_eq!(Intrinsic::Select.eval(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(Intrinsic::Select.eval(&[0.0, 2.0, 3.0]), 3.0);
        assert_eq!(Intrinsic::Sign.eval(&[-3.5]), -1.0);
        assert_eq!(Intrinsic::Max.eval(&[1.0, 2.0]), 2.0);
        let r = Intrinsic::Rnd.eval(&[42.0]);
        assert!((0.0..1.0).contains(&r));
        // Deterministic.
        assert_eq!(r, Intrinsic::Rnd.eval(&[42.0]));
        assert_ne!(r, Intrinsic::Rnd.eval(&[43.0]));
    }

    #[test]
    fn intrinsic_roundtrip_names() {
        for i in [
            Intrinsic::Sqrt,
            Intrinsic::Exp,
            Intrinsic::Ln,
            Intrinsic::Sin,
            Intrinsic::Cos,
            Intrinsic::Abs,
            Intrinsic::Floor,
            Intrinsic::Min,
            Intrinsic::Max,
            Intrinsic::Pow,
            Intrinsic::Select,
            Intrinsic::Rnd,
            Intrinsic::Sign,
        ] {
            assert_eq!(Intrinsic::from_name(i.name()), Some(i));
        }
        assert_eq!(Intrinsic::from_name("bogus"), None);
    }

    #[test]
    fn expr_reads_and_map() {
        let a = ArrayId(0);
        let b = ArrayId(1);
        let e = ArrayExpr::Binary(
            BinOp::Add,
            Box::new(ArrayExpr::Read(a, Offset(vec![0, 1]))),
            Box::new(ArrayExpr::Call(
                Intrinsic::Sqrt,
                vec![ArrayExpr::Read(b, Offset::zero(2))],
            )),
        );
        assert_eq!(e.reads().len(), 2);
        assert_eq!(e.read_count(), 2);
        assert_eq!(e.flops(), 2);
        let swapped =
            e.map_reads(&mut |id, off| ArrayExpr::Read(if id == a { b } else { a }, off.clone()));
        assert_eq!(swapped.reads()[0].0, b);
    }
}
