//! Recursive-descent parser for `zlang`.
//!
//! # Grammar (EBNF-ish)
//!
//! ```text
//! program   = "program" IDENT ";" decl* "begin" stmt* "end" [";"]
//! decl      = config | region | direction | var
//! config    = "config" IDENT ":" type "=" ["-"] literal ";"
//! region    = "region" IDENT "=" "[" range {"," range} "]" ";"
//! range     = affine ".." affine
//! direction = "direction" IDENT "=" "[" sint {"," sint} "]" ";"
//! var       = "var" IDENT {"," IDENT} ":" ["[" IDENT "]"] type ";"
//! stmt      = "[" IDENT "]" IDENT ":=" expr ";"
//!           | IDENT ":=" expr ";"
//!           | "for" IDENT ":=" expr ("to"|"downto") expr "do" stmt* "end" ";"
//!           | "if" expr "then" stmt* ["else" stmt*] "end" ";"
//! expr      = addsub [relop addsub]
//! addsub    = muldiv {("+"|"-") muldiv}
//! muldiv    = unary {("*"|"/") unary}
//! unary     = "-" unary | primary
//! primary   = literal | "(" expr ")" | reduceop "[" IDENT "]" addsub
//!           | IDENT ["@" (IDENT | "[" sint {"," sint} "]") | "(" expr {"," expr} ")"]
//! ```
//!
//! A reduction's argument extends to the end of the additive expression, so
//! `+<< [R] A + B` reduces `A + B`; parenthesize to reduce less.

use crate::ast::*;
use crate::error::{Error, Pos};
use crate::token::{Token, TokenKind};

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.i].kind
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> &Token {
        let t = &self.toks[self.i];
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Pos, Error> {
        let pos = self.pos();
        if self.peek() == kind {
            self.bump();
            Ok(pos)
        } else {
            Err(Error::parse(
                pos,
                format!("expected {kind}, found {}", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Pos), Error> {
        let pos = self.pos();
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok((s, pos))
            }
            other => Err(Error::parse(
                pos,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn expect_int(&mut self) -> Result<i64, Error> {
        let pos = self.pos();
        let neg = self.eat(&TokenKind::Minus);
        match *self.peek() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            ref other => Err(Error::parse(
                pos,
                format!("expected integer, found {other}"),
            )),
        }
    }

    fn program(&mut self) -> Result<Program, Error> {
        self.expect(&TokenKind::Program)?;
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::Semi)?;
        let mut decls = Vec::new();
        while !matches!(self.peek(), TokenKind::Begin) {
            decls.push(self.decl()?);
        }
        self.expect(&TokenKind::Begin)?;
        let body = self.stmts_until_end()?;
        self.eat(&TokenKind::Semi);
        if self.peek() != &TokenKind::Eof {
            return Err(Error::parse(
                self.pos(),
                format!("unexpected {} after `end`", self.peek()),
            ));
        }
        Ok(Program { name, decls, body })
    }

    fn ty(&mut self) -> Result<Type, Error> {
        let pos = self.pos();
        if self.eat(&TokenKind::FloatTy) {
            Ok(Type::Float)
        } else if self.eat(&TokenKind::IntTy) {
            Ok(Type::Int)
        } else {
            Err(Error::parse(
                pos,
                format!("expected type, found {}", self.peek()),
            ))
        }
    }

    fn decl(&mut self) -> Result<Decl, Error> {
        let pos = self.pos();
        match self.peek() {
            TokenKind::Config => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.ty()?;
                self.expect(&TokenKind::Eq)?;
                let neg = self.eat(&TokenKind::Minus);
                let default = match *self.peek() {
                    TokenKind::Int(v) => {
                        self.bump();
                        Literal::Int(if neg { -v } else { v })
                    }
                    TokenKind::Float(v) => {
                        self.bump();
                        Literal::Float(if neg { -v } else { v })
                    }
                    ref other => {
                        return Err(Error::parse(
                            self.pos(),
                            format!("expected literal default, found {other}"),
                        ))
                    }
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Decl::Config {
                    name,
                    ty,
                    default,
                    pos,
                })
            }
            TokenKind::Region => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::Eq)?;
                self.expect(&TokenKind::LBracket)?;
                let mut extents = vec![self.range()?];
                while self.eat(&TokenKind::Comma) {
                    extents.push(self.range()?);
                }
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Decl::Region { name, extents, pos })
            }
            TokenKind::Direction => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::Eq)?;
                self.expect(&TokenKind::LBracket)?;
                let mut offsets = vec![self.expect_int()?];
                while self.eat(&TokenKind::Comma) {
                    offsets.push(self.expect_int()?);
                }
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Decl::Direction { name, offsets, pos })
            }
            TokenKind::Var => {
                self.bump();
                let (first, _) = self.expect_ident()?;
                let mut names = vec![first];
                while self.eat(&TokenKind::Comma) {
                    names.push(self.expect_ident()?.0);
                }
                self.expect(&TokenKind::Colon)?;
                let region = if self.eat(&TokenKind::LBracket) {
                    let (r, _) = self.expect_ident()?;
                    self.expect(&TokenKind::RBracket)?;
                    Some(r)
                } else {
                    None
                };
                let ty = self.ty()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Decl::Var {
                    names,
                    region,
                    ty,
                    pos,
                })
            }
            other => Err(Error::parse(
                pos,
                format!("expected declaration, found {other}"),
            )),
        }
    }

    fn range(&mut self) -> Result<RangeExpr, Error> {
        let lo = self.affine()?;
        self.expect(&TokenKind::DotDot)?;
        let hi = self.affine()?;
        Ok(RangeExpr { lo, hi })
    }

    /// Parses `c0 + c1*v + ...`, where each term is an integer, a config
    /// name, or `int * name` / `name * int`.
    fn affine(&mut self) -> Result<AffineExpr, Error> {
        let pos = self.pos();
        let mut out = AffineExpr {
            base: 0,
            terms: Vec::new(),
            pos,
        };
        let mut sign = 1i64;
        if self.eat(&TokenKind::Minus) {
            sign = -1;
        }
        loop {
            match self.peek().clone() {
                TokenKind::Int(v) => {
                    self.bump();
                    if self.eat(&TokenKind::Star) {
                        let (name, _) = self.expect_ident()?;
                        out.terms.push((name, sign * v));
                    } else {
                        out.base += sign * v;
                    }
                }
                TokenKind::Ident(name) => {
                    self.bump();
                    if self.eat(&TokenKind::Star) {
                        let v = self.expect_int()?;
                        out.terms.push((name, sign * v));
                    } else {
                        out.terms.push((name, sign));
                    }
                }
                other => {
                    return Err(Error::parse(
                        self.pos(),
                        format!("expected affine term, found {other}"),
                    ))
                }
            }
            if self.eat(&TokenKind::Plus) {
                sign = 1;
            } else if self.eat(&TokenKind::Minus) {
                sign = -1;
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn stmts_until_end(&mut self) -> Result<Vec<Stmt>, Error> {
        let mut out = Vec::new();
        while !matches!(self.peek(), TokenKind::End | TokenKind::Else) {
            out.push(self.stmt()?);
        }
        self.expect(&TokenKind::End)?;
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, Error> {
        let pos = self.pos();
        match self.peek().clone() {
            TokenKind::LBracket => {
                self.bump();
                let (region, _) = self.expect_ident()?;
                self.expect(&TokenKind::RBracket)?;
                let (lhs, _) = self.expect_ident()?;
                self.expect(&TokenKind::Assign)?;
                let rhs = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::ArrayAssign {
                    region,
                    lhs,
                    rhs,
                    pos,
                })
            }
            TokenKind::Ident(lhs) => {
                self.bump();
                self.expect(&TokenKind::Assign)?;
                let rhs = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::ScalarAssign { lhs, rhs, pos })
            }
            TokenKind::For => {
                self.bump();
                let (var, _) = self.expect_ident()?;
                self.expect(&TokenKind::Assign)?;
                let lo = self.expr()?;
                let down = if self.eat(&TokenKind::To) {
                    false
                } else if self.eat(&TokenKind::Downto) {
                    true
                } else {
                    return Err(Error::parse(
                        self.pos(),
                        format!("expected `to` or `downto`, found {}", self.peek()),
                    ));
                };
                let hi = self.expr()?;
                self.expect(&TokenKind::Do)?;
                let body = self.stmts_until_end()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::For {
                    var,
                    lo,
                    hi,
                    down,
                    body,
                    pos,
                })
            }
            TokenKind::If => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&TokenKind::Then)?;
                let mut then_body = Vec::new();
                while !matches!(self.peek(), TokenKind::End | TokenKind::Else) {
                    then_body.push(self.stmt()?);
                }
                let else_body = if self.eat(&TokenKind::Else) {
                    let mut e = Vec::new();
                    while !matches!(self.peek(), TokenKind::End) {
                        e.push(self.stmt()?);
                    }
                    e
                } else {
                    Vec::new()
                };
                self.expect(&TokenKind::End)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    pos,
                })
            }
            other => Err(Error::parse(
                pos,
                format!("expected statement, found {other}"),
            )),
        }
    }

    fn expr(&mut self) -> Result<Expr, Error> {
        let pos = self.pos();
        let lhs = self.addsub()?;
        let op = match self.peek() {
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.addsub()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs), pos))
    }

    fn addsub(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.muldiv()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.muldiv()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), pos);
        }
    }

    fn muldiv(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), pos);
        }
    }

    fn unary(&mut self) -> Result<Expr, Error> {
        let pos = self.pos();
        if self.eat(&TokenKind::Minus) {
            let e = self.unary()?;
            Ok(Expr::Unary(UnOp::Neg, Box::new(e), pos))
        } else {
            self.primary()
        }
    }

    fn reduce_op(&mut self) -> Option<ReduceOp> {
        let op = match self.peek() {
            TokenKind::SumReduce => ReduceOp::Sum,
            TokenKind::ProdReduce => ReduceOp::Prod,
            TokenKind::MaxReduce => ReduceOp::Max,
            TokenKind::MinReduce => ReduceOp::Min,
            _ => return None,
        };
        self.bump();
        Some(op)
    }

    fn primary(&mut self) -> Result<Expr, Error> {
        let pos = self.pos();
        if let Some(op) = self.reduce_op() {
            self.expect(&TokenKind::LBracket)?;
            let (region, _) = self.expect_ident()?;
            self.expect(&TokenKind::RBracket)?;
            let arg = self.addsub()?;
            return Ok(Expr::Reduce(op, region, Box::new(arg), pos));
        }
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Lit(Literal::Int(v), pos))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Lit(Literal::Float(v), pos))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::At) {
                    let off = if self.eat(&TokenKind::LBracket) {
                        let mut v = vec![self.expect_int()?];
                        while self.eat(&TokenKind::Comma) {
                            v.push(self.expect_int()?);
                        }
                        self.expect(&TokenKind::RBracket)?;
                        AtOffset::Inline(v)
                    } else {
                        AtOffset::Named(self.expect_ident()?.0)
                    };
                    Ok(Expr::At(name, off, pos))
                } else if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        args.push(self.expr()?);
                        while self.eat(&TokenKind::Comma) {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call(name, args, pos))
                } else {
                    Ok(Expr::Name(name, pos))
                }
            }
            other => Err(Error::parse(
                pos,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

/// Parses a token stream into a surface [`Program`].
///
/// # Errors
///
/// Returns the first syntax error with its source position.
///
/// ```
/// # fn main() -> Result<(), zlang::Error> {
/// let toks = zlang::lexer::lex("program p; region R = [1..8]; var A : [R] float; begin [R] A := 1.0; end")?;
/// let ast = zlang::parser::parse(&toks)?;
/// assert_eq!(ast.name, "p");
/// # Ok(())
/// # }
/// ```
pub fn parse(tokens: &[Token]) -> Result<Program, Error> {
    assert!(
        matches!(tokens.last(), Some(t) if t.kind == TokenKind::Eof),
        "token stream must end with Eof"
    );
    Parser { toks: tokens, i: 0 }.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    fn parse_err(src: &str) -> Error {
        parse(&lex(src).unwrap()).unwrap_err()
    }

    const HEADER: &str = "program p; region R = [1..8]; var A, B : [R] float; var s : float; ";

    fn with_body(body: &str) -> Program {
        parse_src(&format!("{HEADER} begin {body} end"))
    }

    #[test]
    fn parses_minimal_program() {
        let p = with_body("[R] A := 1.0;");
        assert_eq!(p.decls.len(), 3);
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn parses_region_with_affine_bounds() {
        let p =
            parse_src("program p; config n : int = 4; region R = [0..n+1, 2*n-1..3*n]; begin end");
        let Decl::Region { extents, .. } = &p.decls[1] else {
            panic!("expected region")
        };
        assert_eq!(extents.len(), 2);
        assert_eq!(extents[0].hi.base, 1);
        assert_eq!(extents[0].hi.terms, vec![("n".to_string(), 1)]);
        assert_eq!(extents[1].lo.terms, vec![("n".to_string(), 2)]);
        assert_eq!(extents[1].lo.base, -1);
    }

    #[test]
    fn parses_direction_and_at() {
        let p = parse_src(
            "program p; region R = [1..4]; direction w = [-1]; var A, B : [R] float; \
             begin [R] A := B@w + B@[1]; end",
        );
        let Stmt::ArrayAssign { rhs, .. } = &p.body[0] else {
            panic!()
        };
        let Expr::Binary(BinOp::Add, l, r, _) = rhs else {
            panic!()
        };
        assert!(matches!(**l, Expr::At(ref n, AtOffset::Named(ref d), _) if n == "B" && d == "w"));
        assert!(
            matches!(**r, Expr::At(ref n, AtOffset::Inline(ref v), _) if n == "B" && v == &[1])
        );
    }

    #[test]
    fn parses_precedence() {
        let p = with_body("[R] A := B + B * 2.0;");
        let Stmt::ArrayAssign {
            rhs: Expr::Binary(BinOp::Add, _, r, _),
            ..
        } = &p.body[0]
        else {
            panic!()
        };
        assert!(matches!(**r, Expr::Binary(BinOp::Mul, _, _, _)));
    }

    #[test]
    fn parses_comparison_as_top_level() {
        let p = with_body("[R] A := B + 1.0 < B * 2.0;");
        let Stmt::ArrayAssign { rhs, .. } = &p.body[0] else {
            panic!()
        };
        assert!(matches!(rhs, Expr::Binary(BinOp::Lt, _, _, _)));
    }

    #[test]
    fn parses_for_loop_and_downto() {
        let p = with_body("for s := 1 to 3 do [R] A := B; end; for s := 3 downto 1 do end;");
        assert!(matches!(&p.body[0], Stmt::For { down: false, body, .. } if body.len() == 1));
        assert!(matches!(&p.body[1], Stmt::For { down: true, body, .. } if body.is_empty()));
    }

    #[test]
    fn parses_if_else() {
        let p = with_body("if s > 1.0 then [R] A := B; else [R] B := A; s := 2.0; end;");
        let Stmt::If {
            then_body,
            else_body,
            ..
        } = &p.body[0]
        else {
            panic!()
        };
        assert_eq!(then_body.len(), 1);
        assert_eq!(else_body.len(), 2);
    }

    #[test]
    fn parses_reduction_spanning_addsub() {
        let p = with_body("s := +<< [R] A + B;");
        let Stmt::ScalarAssign { rhs, .. } = &p.body[0] else {
            panic!()
        };
        let Expr::Reduce(ReduceOp::Sum, region, arg, _) = rhs else {
            panic!()
        };
        assert_eq!(region, "R");
        assert!(matches!(**arg, Expr::Binary(BinOp::Add, _, _, _)));
    }

    #[test]
    fn parses_intrinsic_calls() {
        let p = with_body("[R] A := max(B, sqrt(A));");
        let Stmt::ArrayAssign {
            rhs: Expr::Call(f, args, _),
            ..
        } = &p.body[0]
        else {
            panic!()
        };
        assert_eq!(f, "max");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn rejects_missing_semicolon() {
        let e =
            parse_err("program p; region R = [1..4]; var A : [R] float; begin [R] A := 1.0 end");
        assert!(e.message.contains("expected"), "{e}");
    }

    #[test]
    fn rejects_trailing_tokens() {
        let e = parse_err("program p; begin end garbage");
        assert!(e.message.contains("after `end`"), "{e}");
    }

    #[test]
    fn rejects_unclosed_if() {
        assert!(parse(&lex(&format!("{HEADER} begin if s > 1.0 then end")).unwrap()).is_err());
    }
}
