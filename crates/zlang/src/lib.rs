//! A small ZPL-like array language frontend.
//!
//! `zlang` models the source level of the array languages studied in
//! *"The Implementation and Evaluation of Fusion and Contraction in Array
//! Languages"* (Lewis, Lin & Snyder, PLDI 1998): regions, directions,
//! element-wise array statements with constant-offset (`@`) references,
//! reductions, and scalar control flow.
//!
//! The crate provides a lexer, a recursive-descent parser, semantic
//! analysis, and an array-level IR ([`ir::Program`]) that downstream crates
//! (notably `fusion-core`) normalize and optimize.
//!
//! # Language overview
//!
//! ```text
//! program heat;
//!
//! config n : int = 64;
//!
//! region RH = [0..n+1, 0..n+1];   -- declared with halo
//! region R  = [1..n, 1..n];
//!
//! direction north = [-1, 0];
//! direction south = [ 1, 0];
//! direction east  = [ 0, 1];
//! direction west  = [ 0,-1];
//!
//! var A, B : [RH] float;
//! var err  : float;
//! var k    : int;
//!
//! begin
//!   [RH] A := 0.0;
//!   for k := 1 to 10 do
//!     [R] B := (A@north + A@south + A@east + A@west) / 4.0;
//!     [R] A := B;
//!   end;
//!   err := +<< [R] abs(A);
//! end
//! ```
//!
//! # Quick start
//!
//! ```
//! # fn main() -> Result<(), zlang::Error> {
//! let src = r#"
//!     program tiny;
//!     config n : int = 8;
//!     region R = [1..n];
//!     var A, B : [R] float;
//!     begin
//!       [R] A := 1.5;
//!       [R] B := A * 2.0;
//!     end
//! "#;
//! let program = zlang::compile(src)?;
//! assert_eq!(program.name, "tiny");
//! assert_eq!(program.arrays.len(), 2);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod error;
pub mod intern;
pub mod ir;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod token;

pub use error::Error;
pub use ir::Program;

/// Compiles `zlang` source text into the array-level IR.
///
/// This runs the full frontend: lexing, parsing, and semantic analysis.
///
/// # Errors
///
/// Returns an [`Error`] describing the first lexical, syntactic, or semantic
/// problem found, with a line/column position.
///
/// ```
/// # fn main() -> Result<(), zlang::Error> {
/// let p = zlang::compile("program p; region R = [1..4]; var A : [R] float; begin [R] A := 0.0; end")?;
/// assert_eq!(p.body.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn compile(source: &str) -> Result<ir::Program, Error> {
    let tokens = lexer::lex(source)?;
    let ast = parser::parse(&tokens)?;
    sema::analyze(&ast)
}
