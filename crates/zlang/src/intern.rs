//! String interning for source-level names.
//!
//! Every declared name (configs, regions, arrays, scalars) is interned
//! once during semantic analysis; downstream phases compare and look up
//! [`Symbol`]s — a `u32` — instead of hashing `String`s. The interner
//! lives on [`crate::ir::Program`] (via [`crate::ir::NameTable`]) so the
//! symbol space travels with the program it describes.

use std::collections::HashMap;
use std::fmt;

/// An interned name: a cheap, `Copy` handle into an [`Interner`].
///
/// Symbols are only meaningful relative to the interner that produced
/// them; two programs' symbol spaces are unrelated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// A bidirectional string ↔ [`Symbol`] table.
///
/// Interning the same string twice returns the same symbol; resolution is
/// an indexed `Vec` access.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

impl PartialEq for Interner {
    fn eq(&self, other: &Self) -> bool {
        // The map is derived from `names`; comparing the vector suffices.
        self.names == other.names
    }
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns a name, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&i) = self.map.get(name) {
            return Symbol(i);
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), i);
        Symbol(i)
    }

    /// Looks a name up without interning it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).map(|&i| Symbol(i))
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner (index out of range).
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.0 as usize]
    }

    /// The number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
        assert_eq!(i.get("beta"), Some(b));
        assert_eq!(i.get("gamma"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn equality_ignores_map_internals() {
        let mut a = Interner::new();
        let mut b = Interner::new();
        a.intern("x");
        a.intern("y");
        b.intern("x");
        b.intern("y");
        assert_eq!(a, b);
        b.intern("z");
        assert_ne!(a, b);
    }
}
