//! Pretty-printing of the array-level IR back to `zlang`-like surface
//! syntax (for debugging, examples, and the compiler-explorer tooling).

use crate::ast::{BinOp, ReduceOp, UnOp};
use crate::ir::Offset;
use crate::ir::{ArrayExpr, Program, ScalarExpr, Stmt};
use std::fmt::Write;

/// Renders an offset in the parseable inline syntax `[d1,d2,...]`.
fn offset_brackets(off: &Offset) -> String {
    let parts: Vec<String> = off.0.iter().map(|d| d.to_string()).collect();
    format!("[{}]", parts.join(","))
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
    }
}

fn reduce_str(op: ReduceOp) -> &'static str {
    match op {
        ReduceOp::Sum => "+<<",
        ReduceOp::Prod => "*<<",
        ReduceOp::Max => "max<<",
        ReduceOp::Min => "min<<",
    }
}

/// Renders an array expression.
pub fn array_expr(p: &Program, e: &ArrayExpr) -> String {
    match e {
        ArrayExpr::Read(a, off) => {
            let name = &p.array(*a).name;
            if off.is_zero() {
                name.clone()
            } else {
                format!("{name}@{}", offset_brackets(off))
            }
        }
        ArrayExpr::ScalarRef(s) => p.scalar(*s).name.clone(),
        ArrayExpr::ConfigRef(c) => p.configs[c.0 as usize].name.clone(),
        ArrayExpr::Const(v) => format!("{v}"),
        ArrayExpr::Index(d) => format!("index{}", d + 1),
        ArrayExpr::Unary(UnOp::Neg, inner) => format!("(-{})", array_expr(p, inner)),
        ArrayExpr::Binary(op, l, r) => {
            format!(
                "({} {} {})",
                array_expr(p, l),
                binop_str(*op),
                array_expr(p, r)
            )
        }
        ArrayExpr::Call(i, args) => {
            let args: Vec<_> = args.iter().map(|a| array_expr(p, a)).collect();
            format!("{}({})", i.name(), args.join(", "))
        }
    }
}

/// Renders a scalar expression.
pub fn scalar_expr(p: &Program, e: &ScalarExpr) -> String {
    match e {
        ScalarExpr::Const(v) => format!("{v}"),
        ScalarExpr::ScalarRef(s) => p.scalar(*s).name.clone(),
        ScalarExpr::ConfigRef(c) => p.configs[c.0 as usize].name.clone(),
        ScalarExpr::Unary(UnOp::Neg, inner) => format!("(-{})", scalar_expr(p, inner)),
        ScalarExpr::Binary(op, l, r) => {
            format!(
                "({} {} {})",
                scalar_expr(p, l),
                binop_str(*op),
                scalar_expr(p, r)
            )
        }
        ScalarExpr::Call(i, args) => {
            let args: Vec<_> = args.iter().map(|a| scalar_expr(p, a)).collect();
            format!("{}({})", i.name(), args.join(", "))
        }
    }
}

fn stmt(p: &Program, s: &Stmt, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Array(st) => {
            let _ = writeln!(
                out,
                "{pad}[{}] {} := {};",
                p.region(st.region).name,
                p.array(st.lhs).name,
                array_expr(p, &st.rhs)
            );
        }
        Stmt::Scalar { lhs, rhs } => {
            let _ = writeln!(
                out,
                "{pad}{} := {};",
                p.scalar(*lhs).name,
                scalar_expr(p, rhs)
            );
        }
        Stmt::Reduce {
            lhs,
            op,
            region,
            arg,
        } => {
            let _ = writeln!(
                out,
                "{pad}{} := {} [{}] {};",
                p.scalar(*lhs).name,
                reduce_str(*op),
                p.region(*region).name,
                array_expr(p, arg)
            );
        }
        Stmt::For {
            var,
            lo,
            hi,
            down,
            body,
        } => {
            let _ = writeln!(
                out,
                "{pad}for {} := {} {} {} do",
                p.scalar(*var).name,
                scalar_expr(p, lo),
                if *down { "downto" } else { "to" },
                scalar_expr(p, hi)
            );
            for s in body {
                stmt(p, s, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}end;");
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "{pad}if {} then", scalar_expr(p, cond));
            for s in then_body {
                stmt(p, s, indent + 1, out);
            }
            if !else_body.is_empty() {
                let _ = writeln!(out, "{pad}else");
                for s in else_body {
                    stmt(p, s, indent + 1, out);
                }
            }
            let _ = writeln!(out, "{pad}end;");
        }
    }
}

/// Renders a whole program body (statements only, not declarations).
///
/// ```
/// # fn main() -> Result<(), zlang::Error> {
/// let p = zlang::compile("program p; region R = [1..4]; var A : [R] float; begin [R] A := A + 1.0; end")?;
/// let text = zlang::pretty::program(&p);
/// assert!(text.contains("[R] A := (A + 1);"));
/// # Ok(())
/// # }
/// ```
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for s in &p.body {
        stmt(p, s, 0, &mut out);
    }
    out
}

fn linexpr(p: &Program, e: &crate::ir::LinExpr) -> String {
    let mut out = String::new();
    if e.base != 0 || e.terms.is_empty() {
        out.push_str(&e.base.to_string());
    }
    for &(c, coeff) in &e.terms {
        let name = &p.configs[c.0 as usize].name;
        let term = match coeff {
            1 => name.clone(),
            -1 => format!("-{name}"),
            k => format!("{k}*{name}"),
        };
        if out.is_empty() {
            out = term;
        } else if term.starts_with('-') {
            out.push_str(&term);
        } else {
            out.push('+');
            out.push_str(&term);
        }
    }
    out
}

/// Renders a complete, recompilable program: declarations plus body.
///
/// `compile(source(p))` yields a structurally identical program (the
/// round-trip property tested in `tests/`). Only programs that have not
/// been normalized round-trip exactly — compiler temporaries have no
/// surface syntax.
///
/// ```
/// # fn main() -> Result<(), zlang::Error> {
/// let src = "program p; config n : int = 4; region R = [1..n]; \
///            var A : [R] float; begin [R] A := 1.0; end";
/// let p1 = zlang::compile(src)?;
/// let p2 = zlang::compile(&zlang::pretty::source(&p1))?;
/// assert_eq!(p1, p2);
/// # Ok(())
/// # }
/// ```
pub fn source(p: &Program) -> String {
    let mut out = format!("program {};\n", p.name);
    for c in &p.configs {
        let (ty, default) = match c.ty {
            crate::ast::Type::Int => ("int", format!("{}", c.default as i64)),
            crate::ast::Type::Float => ("float", format!("{:?}", c.default)),
        };
        let _ = writeln!(out, "config {} : {} = {};", c.name, ty, default);
    }
    for r in &p.regions {
        let dims: Vec<String> = r
            .extents
            .iter()
            .map(|e| format!("{}..{}", linexpr(p, &e.lo), linexpr(p, &e.hi)))
            .collect();
        let _ = writeln!(out, "region {} = [{}];", r.name, dims.join(", "));
    }
    // Offsets print in the inline `@[..]` syntax, so no direction
    // declarations are needed.
    for a in &p.arrays {
        if a.compiler_temp {
            continue; // no surface syntax; see doc comment
        }
        let _ = writeln!(out, "var {} : [{}] float;", a.name, p.region(a.region).name);
    }
    for s in &p.scalars {
        let ty = match s.ty {
            crate::ast::Type::Int => "int",
            crate::ast::Type::Float => "float",
        };
        let _ = writeln!(out, "var {} : {};", s.name, ty);
    }
    out.push_str("begin\n");
    for s in &p.body {
        stmt(p, s, 1, &mut out);
    }
    out.push_str("end\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::compile;

    #[test]
    fn prints_offsets_and_reductions() {
        let p = compile(
            "program p; region R = [1..4, 1..4]; direction n = [-1, 0]; \
             var A, B : [R] float; var s : float; \
             begin [R] A := B@n; s := +<< [R] A; end",
        )
        .unwrap();
        let text = super::program(&p);
        assert!(text.contains("B@[-1,0]"), "{text}");
        assert!(text.contains("+<< [R] A"), "{text}");
    }

    #[test]
    fn prints_control_flow() {
        let p = compile(
            "program p; region R = [1..4]; var A : [R] float; var k : int; \
             begin for k := 1 to 3 do if k > 1 then [R] A := 1.0; else [R] A := 2.0; end; end; end",
        )
        .unwrap();
        let text = super::program(&p);
        assert!(text.contains("for k := 1 to 3 do"), "{text}");
        assert!(text.contains("else"), "{text}");
    }
}
