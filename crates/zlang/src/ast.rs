//! Surface abstract syntax tree produced by the [`parser`](crate::parser).
//!
//! Names are unresolved strings at this level; [`sema`](crate::sema) resolves
//! them into the array-level [`ir`](crate::ir).

use crate::error::Pos;

/// A parsed program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name from the `program` header.
    pub name: String,
    /// Declarations, in source order.
    pub decls: Vec<Decl>,
    /// Statements between `begin` and `end`.
    pub body: Vec<Stmt>,
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `config n : int = 64;` — a compile-time-defaulted, run-time
    /// overridable problem parameter.
    Config {
        name: String,
        ty: Type,
        default: Literal,
        pos: Pos,
    },
    /// `region R = [1..n, 0..m+1];`
    Region {
        name: String,
        extents: Vec<RangeExpr>,
        pos: Pos,
    },
    /// `direction north = [-1, 0];`
    Direction {
        name: String,
        offsets: Vec<i64>,
        pos: Pos,
    },
    /// `var A, B : [R] float;` (array) or `var s : float;` (scalar).
    Var {
        names: Vec<String>,
        region: Option<String>,
        ty: Type,
        pos: Pos,
    },
}

/// A scalar type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit float.
    Float,
    /// 64-bit signed integer.
    Int,
}

/// A literal constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
}

/// One dimension of a region: `lo..hi` where the bounds are affine
/// expressions over integer literals and config variables.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeExpr {
    /// Lower bound.
    pub lo: AffineExpr,
    /// Upper bound (inclusive).
    pub hi: AffineExpr,
}

/// An affine expression `c0 + c1*v1 + c2*v2 + ...` over config variables.
#[derive(Debug, Clone, PartialEq)]
pub struct AffineExpr {
    /// Constant term.
    pub base: i64,
    /// `(config name, coefficient)` terms.
    pub terms: Vec<(String, i64)>,
    /// Source position (for diagnostics).
    pub pos: Pos,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `[R] A := expr;` — an element-wise array assignment over region `R`.
    ArrayAssign {
        region: String,
        lhs: String,
        rhs: Expr,
        pos: Pos,
    },
    /// `s := expr;` — a scalar assignment; `expr` may contain reductions.
    ScalarAssign { lhs: String, rhs: Expr, pos: Pos },
    /// `for k := lo to|downto hi do ... end;`
    For {
        var: String,
        lo: Expr,
        hi: Expr,
        down: bool,
        body: Vec<Stmt>,
        pos: Pos,
    },
    /// `if cond then ... [else ...] end;`
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        pos: Pos,
    },
}

/// An expression (array-valued or scalar-valued; sema decides).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer or float literal.
    Lit(Literal, Pos),
    /// A bare name: array, scalar, or config variable.
    Name(String, Pos),
    /// `A@north` or `A@[dx, dy]` — an offset array reference.
    At(String, AtOffset, Pos),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, Pos),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, Pos),
    /// Intrinsic call `f(a, b, ...)`.
    Call(String, Vec<Expr>, Pos),
    /// `op<< [R] expr` — a full reduction of an array expression to a scalar.
    Reduce(ReduceOp, String, Box<Expr>, Pos),
}

impl Expr {
    /// The source position of an expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Lit(_, p)
            | Expr::Name(_, p)
            | Expr::At(_, _, p)
            | Expr::Unary(_, _, p)
            | Expr::Binary(_, _, _, p)
            | Expr::Call(_, _, p)
            | Expr::Reduce(_, _, _, p) => *p,
        }
    }
}

/// The target of an `@`: a named direction or an inline literal vector.
#[derive(Debug, Clone, PartialEq)]
pub enum AtOffset {
    /// `A@north`
    Named(String),
    /// `A@[dx, dy]`
    Inline(Vec<i64>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
}

/// Binary operators. Comparisons evaluate to `1.0` / `0.0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Reduction operators for `op<< [R] expr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    Sum,
    Prod,
    Max,
    Min,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_pos_is_stable() {
        let p = Pos::new(4, 2);
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Lit(Literal::Int(1), Pos::new(4, 1))),
            Box::new(Expr::Lit(Literal::Int(2), Pos::new(4, 3))),
            p,
        );
        assert_eq!(e.pos(), p);
    }
}
