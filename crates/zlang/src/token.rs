//! Tokens produced by the [`lexer`](crate::lexer).

use crate::error::Pos;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword candidate (`foo`, `program`, ...).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),

    // Keywords.
    Program,
    Config,
    Region,
    Direction,
    Var,
    Begin,
    End,
    For,
    To,
    Downto,
    Do,
    If,
    Then,
    Else,
    FloatTy,
    IntTy,

    // Punctuation and operators.
    Semi,
    Colon,
    Comma,
    Assign,   // :=
    LBracket, // [
    RBracket, // ]
    LParen,
    RParen,
    DotDot, // ..
    At,     // @
    Plus,
    Minus,
    Star,
    Slash,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,         // =  (declarations only)
    EqEq,       // ==
    Ne,         // !=
    SumReduce,  // +<<
    ProdReduce, // *<<
    MaxReduce,  // max<<
    MinReduce,  // min<<

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Ident(s) => write!(f, "identifier `{s}`"),
            Int(v) => write!(f, "integer `{v}`"),
            Float(v) => write!(f, "float `{v}`"),
            Program => write!(f, "`program`"),
            Config => write!(f, "`config`"),
            Region => write!(f, "`region`"),
            Direction => write!(f, "`direction`"),
            Var => write!(f, "`var`"),
            Begin => write!(f, "`begin`"),
            End => write!(f, "`end`"),
            For => write!(f, "`for`"),
            To => write!(f, "`to`"),
            Downto => write!(f, "`downto`"),
            Do => write!(f, "`do`"),
            If => write!(f, "`if`"),
            Then => write!(f, "`then`"),
            Else => write!(f, "`else`"),
            FloatTy => write!(f, "`float`"),
            IntTy => write!(f, "`int`"),
            Semi => write!(f, "`;`"),
            Colon => write!(f, "`:`"),
            Comma => write!(f, "`,`"),
            Assign => write!(f, "`:=`"),
            LBracket => write!(f, "`[`"),
            RBracket => write!(f, "`]`"),
            LParen => write!(f, "`(`"),
            RParen => write!(f, "`)`"),
            DotDot => write!(f, "`..`"),
            At => write!(f, "`@`"),
            Plus => write!(f, "`+`"),
            Minus => write!(f, "`-`"),
            Star => write!(f, "`*`"),
            Slash => write!(f, "`/`"),
            Lt => write!(f, "`<`"),
            Le => write!(f, "`<=`"),
            Gt => write!(f, "`>`"),
            Ge => write!(f, "`>=`"),
            Eq => write!(f, "`=`"),
            EqEq => write!(f, "`==`"),
            Ne => write!(f, "`!=`"),
            SumReduce => write!(f, "`+<<`"),
            ProdReduce => write!(f, "`*<<`"),
            MaxReduce => write!(f, "`max<<`"),
            MinReduce => write!(f, "`min<<`"),
            Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind (and payload for literals/identifiers).
    pub kind: TokenKind,
    /// Position of the token's first character.
    pub pos: Pos,
}

impl Token {
    /// Creates a token at a position.
    pub fn new(kind: TokenKind, pos: Pos) -> Self {
        Token { kind, pos }
    }
}

/// Maps an identifier to a keyword kind, if it is one.
pub fn keyword(ident: &str) -> Option<TokenKind> {
    Some(match ident {
        "program" => TokenKind::Program,
        "config" => TokenKind::Config,
        "region" => TokenKind::Region,
        "direction" => TokenKind::Direction,
        "var" => TokenKind::Var,
        "begin" => TokenKind::Begin,
        "end" => TokenKind::End,
        "for" => TokenKind::For,
        "to" => TokenKind::To,
        "downto" => TokenKind::Downto,
        "do" => TokenKind::Do,
        "if" => TokenKind::If,
        "then" => TokenKind::Then,
        "else" => TokenKind::Else,
        "float" => TokenKind::FloatTy,
        "int" => TokenKind::IntTy,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(keyword("program"), Some(TokenKind::Program));
        assert_eq!(keyword("downto"), Some(TokenKind::Downto));
        assert_eq!(keyword("frobnicate"), None);
    }

    #[test]
    fn display_is_nonempty() {
        for k in [TokenKind::Semi, TokenKind::SumReduce, TokenKind::Eof] {
            assert!(!k.to_string().is_empty());
        }
    }
}
