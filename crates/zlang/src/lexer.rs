//! Hand-written lexer for `zlang`.
//!
//! Comments run from `--` to end of line. Whitespace is insignificant.

use crate::error::{Error, Pos};
use crate::token::{keyword, Token, TokenKind};

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn lex_number(&mut self) -> Result<Token, Error> {
        let pos = self.pos();
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        // A `..` after digits is a range, not a float.
        let mut is_float = false;
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if self.peek() == Some(b'e') || self.peek() == Some(b'E') {
            let save = (self.i, self.line, self.col);
            self.bump();
            if self.peek() == Some(b'+') || self.peek() == Some(b'-') {
                self.bump();
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                (self.i, self.line, self.col) = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.i]).expect("ascii digits");
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| Error::lex(pos, format!("invalid float literal `{text}`")))?;
            Ok(Token::new(TokenKind::Float(v), pos))
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| Error::lex(pos, format!("integer literal `{text}` out of range")))?;
            Ok(Token::new(TokenKind::Int(v), pos))
        }
    }

    fn lex_ident(&mut self) -> Token {
        let pos = self.pos();
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.i]).expect("ascii ident");
        // `max<<` and `min<<` are reduction operators.
        if (text == "max" || text == "min")
            && self.peek() == Some(b'<')
            && self.peek2() == Some(b'<')
        {
            self.bump();
            self.bump();
            let kind = if text == "max" {
                TokenKind::MaxReduce
            } else {
                TokenKind::MinReduce
            };
            return Token::new(kind, pos);
        }
        match keyword(text) {
            Some(kind) => Token::new(kind, pos),
            None => Token::new(TokenKind::Ident(text.to_string()), pos),
        }
    }

    fn next_token(&mut self) -> Result<Token, Error> {
        self.skip_trivia();
        let pos = self.pos();
        let Some(c) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, pos));
        };
        if c.is_ascii_digit() {
            return self.lex_number();
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            return Ok(self.lex_ident());
        }
        self.bump();
        let two = |l: &mut Self, kind| {
            l.bump();
            Ok(Token::new(kind, pos))
        };
        match c {
            b';' => Ok(Token::new(TokenKind::Semi, pos)),
            b',' => Ok(Token::new(TokenKind::Comma, pos)),
            b'[' => Ok(Token::new(TokenKind::LBracket, pos)),
            b']' => Ok(Token::new(TokenKind::RBracket, pos)),
            b'(' => Ok(Token::new(TokenKind::LParen, pos)),
            b')' => Ok(Token::new(TokenKind::RParen, pos)),
            b'@' => Ok(Token::new(TokenKind::At, pos)),
            b'-' => Ok(Token::new(TokenKind::Minus, pos)),
            b'/' => Ok(Token::new(TokenKind::Slash, pos)),
            b':' => {
                if self.peek() == Some(b'=') {
                    two(self, TokenKind::Assign)
                } else {
                    Ok(Token::new(TokenKind::Colon, pos))
                }
            }
            b'.' => {
                if self.peek() == Some(b'.') {
                    two(self, TokenKind::DotDot)
                } else {
                    Err(Error::lex(pos, "unexpected `.`"))
                }
            }
            b'+' => {
                if self.peek() == Some(b'<') && self.peek2() == Some(b'<') {
                    self.bump();
                    two(self, TokenKind::SumReduce)
                } else {
                    Ok(Token::new(TokenKind::Plus, pos))
                }
            }
            b'*' => {
                if self.peek() == Some(b'<') && self.peek2() == Some(b'<') {
                    self.bump();
                    two(self, TokenKind::ProdReduce)
                } else {
                    Ok(Token::new(TokenKind::Star, pos))
                }
            }
            b'<' => {
                if self.peek() == Some(b'=') {
                    two(self, TokenKind::Le)
                } else {
                    Ok(Token::new(TokenKind::Lt, pos))
                }
            }
            b'>' => {
                if self.peek() == Some(b'=') {
                    two(self, TokenKind::Ge)
                } else {
                    Ok(Token::new(TokenKind::Gt, pos))
                }
            }
            b'=' => {
                if self.peek() == Some(b'=') {
                    two(self, TokenKind::EqEq)
                } else {
                    Ok(Token::new(TokenKind::Eq, pos))
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    two(self, TokenKind::Ne)
                } else {
                    Err(Error::lex(pos, "unexpected `!`"))
                }
            }
            other => Err(Error::lex(
                pos,
                format!("unexpected character `{}`", other as char),
            )),
        }
    }
}

/// Tokenizes `zlang` source text.
///
/// The returned vector always ends with a single [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns an error on malformed literals or unknown characters.
///
/// ```
/// # fn main() -> Result<(), zlang::Error> {
/// let toks = zlang::lexer::lex("[R] A := B@north;")?;
/// assert_eq!(toks.len(), 10); // incl. Eof
/// # Ok(())
/// # }
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, Error> {
    let mut lexer = Lexer::new(source);
    let mut out = Vec::new();
    loop {
        let tok = lexer.next_token()?;
        let done = tok.kind == TokenKind::Eof;
        out.push(tok);
        if done {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declarations() {
        assert_eq!(
            kinds("config n : int = 64;"),
            vec![
                Config,
                Ident("n".into()),
                Colon,
                IntTy,
                Eq,
                Int(64),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_range_not_float() {
        assert_eq!(kinds("1..n"), vec![Int(1), DotDot, Ident("n".into()), Eof]);
    }

    #[test]
    fn lexes_floats() {
        assert_eq!(
            kinds("2.5 1e3 7"),
            vec![Float(2.5), Float(1000.0), Int(7), Eof]
        );
    }

    #[test]
    fn lexes_reductions() {
        assert_eq!(
            kinds("+<< *<< max<< min<<"),
            vec![SumReduce, ProdReduce, MaxReduce, MinReduce, Eof]
        );
    }

    #[test]
    fn max_without_shift_is_ident() {
        assert_eq!(kinds("max(a, b)")[0], Ident("max".into()));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a -- comment\n b"),
            vec![Ident("a".into()), Ident("b".into()), Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos.line, 1);
        assert_eq!(toks[1].pos.line, 2);
        assert_eq!(toks[1].pos.col, 3);
    }

    #[test]
    fn rejects_unknown_char() {
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn bare_equals_is_its_own_token() {
        assert_eq!(
            kinds("a = b"),
            vec![Ident("a".into()), Eq, Ident("b".into()), Eof]
        );
    }

    #[test]
    fn lexes_comparisons() {
        assert_eq!(
            kinds("< <= > >= == !="),
            vec![Lt, Le, Gt, Ge, EqEq, Ne, Eof]
        );
    }
}
