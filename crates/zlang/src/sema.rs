//! Semantic analysis: resolves names, checks ranks and types, hoists
//! reductions, and lowers the surface AST to the array-level IR.

use crate::ast::{self, AtOffset, Decl, Literal, Type};
use crate::error::{Error, Pos};
use crate::intern::Symbol;
use crate::ir::{
    ArrayDecl, ArrayExpr, ArrayId, ArrayStmt, ConfigDecl, ConfigId, Extent, Intrinsic, LinExpr,
    Offset, Program, RegionDecl, RegionId, ScalarDecl, ScalarExpr, ScalarId, Stmt,
};
use std::collections::HashMap;

/// What a name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    Config(ConfigId),
    Region(RegionId),
    Direction(u32),
    Array(ArrayId),
    Scalar(ScalarId),
}

struct Analyzer {
    program: Program,
    // Keyed by interned symbol: every source name hashes once, in `bind`
    // or on its first lookup; repeated references compare a u32.
    names: HashMap<Symbol, Binding>,
    directions: Vec<Vec<i64>>,
    hidden_scalars: u32,
}

impl Analyzer {
    fn bind(&mut self, name: &str, b: Binding, pos: Pos) -> Result<(), Error> {
        let sym = match b {
            Binding::Array(id) => self.program.names.register_array(name, id),
            Binding::Scalar(id) => self.program.names.register_scalar(name, id),
            Binding::Region(id) => self.program.names.register_region(name, id),
            Binding::Config(id) => self.program.names.register_config(name, id),
            Binding::Direction(_) => self.program.names.intern(name),
        };
        if self.names.insert(sym, b).is_some() {
            return Err(Error::sema(
                pos,
                format!("duplicate declaration of `{name}`"),
            ));
        }
        Ok(())
    }

    fn lookup(&self, name: &str, pos: Pos) -> Result<Binding, Error> {
        self.program
            .names
            .symbol(name)
            .and_then(|sym| self.names.get(&sym).copied())
            .ok_or_else(|| Error::sema(pos, format!("undeclared name `{name}`")))
    }

    fn fresh_scalar(&mut self, ty: Type) -> ScalarId {
        let id = ScalarId(self.program.scalars.len() as u32);
        let name = format!("_r{}", self.hidden_scalars);
        self.hidden_scalars += 1;
        self.program.scalars.push(ScalarDecl { name, ty });
        id
    }

    fn affine(&self, e: &ast::AffineExpr) -> Result<LinExpr, Error> {
        let mut out = LinExpr {
            base: e.base,
            terms: Vec::new(),
        };
        for (name, coeff) in &e.terms {
            match self.lookup(name, e.pos)? {
                Binding::Config(id) => out.terms.push((id, *coeff)),
                _ => {
                    return Err(Error::sema(
                        e.pos,
                        format!("region bounds may only reference config variables, not `{name}`"),
                    ))
                }
            }
        }
        Ok(out.normalize())
    }

    fn decls(&mut self, decls: &[Decl]) -> Result<(), Error> {
        for d in decls {
            match d {
                Decl::Config {
                    name,
                    ty,
                    default,
                    pos,
                } => {
                    let default = match (*ty, *default) {
                        (Type::Int, Literal::Int(v)) => v as f64,
                        (Type::Float, Literal::Float(v)) => v,
                        (Type::Float, Literal::Int(v)) => v as f64,
                        (Type::Int, Literal::Float(_)) => {
                            return Err(Error::sema(
                                *pos,
                                format!("config `{name}` is int but has a float default"),
                            ))
                        }
                    };
                    let id = ConfigId(self.program.configs.len() as u32);
                    self.program.configs.push(ConfigDecl {
                        name: name.clone(),
                        ty: *ty,
                        default,
                    });
                    self.bind(name, Binding::Config(id), *pos)?;
                }
                Decl::Region { name, extents, pos } => {
                    if extents.is_empty() {
                        return Err(Error::sema(*pos, format!("region `{name}` has no extents")));
                    }
                    let extents = extents
                        .iter()
                        .map(|r| {
                            Ok(Extent {
                                lo: self.affine(&r.lo)?,
                                hi: self.affine(&r.hi)?,
                            })
                        })
                        .collect::<Result<Vec<_>, Error>>()?;
                    let id = RegionId(self.program.regions.len() as u32);
                    self.program.regions.push(RegionDecl {
                        name: name.clone(),
                        extents,
                    });
                    self.bind(name, Binding::Region(id), *pos)?;
                }
                Decl::Direction { name, offsets, pos } => {
                    let idx = self.directions.len() as u32;
                    self.directions.push(offsets.clone());
                    self.bind(name, Binding::Direction(idx), *pos)?;
                }
                Decl::Var {
                    names,
                    region,
                    ty,
                    pos,
                } => {
                    for n in names {
                        match region {
                            Some(rname) => {
                                if *ty != Type::Float {
                                    return Err(Error::sema(
                                        *pos,
                                        format!("array `{n}` must be float (int arrays are not supported)"),
                                    ));
                                }
                                let Binding::Region(rid) = self.lookup(rname, *pos)? else {
                                    return Err(Error::sema(
                                        *pos,
                                        format!("`{rname}` is not a region"),
                                    ));
                                };
                                let id = ArrayId(self.program.arrays.len() as u32);
                                self.program.arrays.push(ArrayDecl {
                                    name: n.clone(),
                                    region: rid,
                                    compiler_temp: false,
                                    collapsed: Vec::new(),
                                });
                                self.bind(n, Binding::Array(id), *pos)?;
                            }
                            None => {
                                let id = ScalarId(self.program.scalars.len() as u32);
                                self.program.scalars.push(ScalarDecl {
                                    name: n.clone(),
                                    ty: *ty,
                                });
                                self.bind(n, Binding::Scalar(id), *pos)?;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Lowers an expression in *array context* over a statement region of
    /// rank `rank`.
    fn array_expr(&mut self, e: &ast::Expr, rank: usize) -> Result<ArrayExpr, Error> {
        match e {
            ast::Expr::Lit(Literal::Int(v), _) => Ok(ArrayExpr::Const(*v as f64)),
            ast::Expr::Lit(Literal::Float(v), _) => Ok(ArrayExpr::Const(*v)),
            ast::Expr::Name(name, pos) => {
                if let Some(d) = index_name(name) {
                    if d as usize >= rank {
                        return Err(Error::sema(
                            *pos,
                            format!("`{name}` exceeds the statement's rank {rank}"),
                        ));
                    }
                    return Ok(ArrayExpr::Index(d));
                }
                match self.lookup(name, *pos)? {
                    Binding::Array(a) => {
                        self.check_array_rank(a, rank, *pos)?;
                        Ok(ArrayExpr::Read(a, Offset::zero(rank)))
                    }
                    Binding::Scalar(s) => Ok(ArrayExpr::ScalarRef(s)),
                    Binding::Config(c) => Ok(ArrayExpr::ConfigRef(c)),
                    Binding::Region(_) | Binding::Direction(_) => Err(Error::sema(
                        *pos,
                        format!("`{name}` cannot be used as a value"),
                    )),
                }
            }
            ast::Expr::At(name, off, pos) => {
                let Binding::Array(a) = self.lookup(name, *pos)? else {
                    return Err(Error::sema(
                        *pos,
                        format!("`@` applies to arrays, `{name}` is not one"),
                    ));
                };
                self.check_array_rank(a, rank, *pos)?;
                let vec = match off {
                    AtOffset::Named(dname) => {
                        let Binding::Direction(di) = self.lookup(dname, *pos)? else {
                            return Err(Error::sema(*pos, format!("`{dname}` is not a direction")));
                        };
                        self.directions[di as usize].clone()
                    }
                    AtOffset::Inline(v) => v.clone(),
                };
                if vec.len() != rank {
                    return Err(Error::sema(
                        *pos,
                        format!(
                            "direction rank {} does not match statement rank {rank}",
                            vec.len()
                        ),
                    ));
                }
                Ok(ArrayExpr::Read(a, Offset(vec)))
            }
            ast::Expr::Unary(op, inner, _) => Ok(ArrayExpr::Unary(
                *op,
                Box::new(self.array_expr(inner, rank)?),
            )),
            ast::Expr::Binary(op, l, r, _) => Ok(ArrayExpr::Binary(
                *op,
                Box::new(self.array_expr(l, rank)?),
                Box::new(self.array_expr(r, rank)?),
            )),
            ast::Expr::Call(fname, args, pos) => {
                let Some(intr) = Intrinsic::from_name(fname) else {
                    return Err(Error::sema(*pos, format!("unknown intrinsic `{fname}`")));
                };
                if args.len() != intr.arity() {
                    return Err(Error::sema(
                        *pos,
                        format!(
                            "intrinsic `{fname}` expects {} argument(s), got {}",
                            intr.arity(),
                            args.len()
                        ),
                    ));
                }
                let args = args
                    .iter()
                    .map(|a| self.array_expr(a, rank))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ArrayExpr::Call(intr, args))
            }
            ast::Expr::Reduce(_, _, _, pos) => Err(Error::sema(
                *pos,
                "reductions are scalar-valued and cannot appear inside an array statement",
            )),
        }
    }

    fn check_array_rank(&self, a: ArrayId, rank: usize, pos: Pos) -> Result<(), Error> {
        let have = self.program.array_rank(a);
        if have != rank {
            return Err(Error::sema(
                pos,
                format!(
                    "array `{}` has rank {have} but the statement region has rank {rank}",
                    self.program.array(a).name
                ),
            ));
        }
        Ok(())
    }

    /// Lowers an expression in *scalar context*. Reductions are hoisted into
    /// `out` as separate statements, replaced by hidden scalars.
    fn scalar_expr(&mut self, e: &ast::Expr, out: &mut Vec<Stmt>) -> Result<ScalarExpr, Error> {
        match e {
            ast::Expr::Lit(Literal::Int(v), _) => Ok(ScalarExpr::Const(*v as f64)),
            ast::Expr::Lit(Literal::Float(v), _) => Ok(ScalarExpr::Const(*v)),
            ast::Expr::Name(name, pos) => match self.lookup(name, *pos)? {
                Binding::Scalar(s) => Ok(ScalarExpr::ScalarRef(s)),
                Binding::Config(c) => Ok(ScalarExpr::ConfigRef(c)),
                Binding::Array(_) => Err(Error::sema(
                    *pos,
                    format!("array `{name}` used in scalar context (did you mean a reduction?)"),
                )),
                _ => Err(Error::sema(
                    *pos,
                    format!("`{name}` cannot be used as a value"),
                )),
            },
            ast::Expr::At(_, _, pos) => Err(Error::sema(
                *pos,
                "`@` references cannot appear in scalar context",
            )),
            ast::Expr::Unary(op, inner, _) => Ok(ScalarExpr::Unary(
                *op,
                Box::new(self.scalar_expr(inner, out)?),
            )),
            ast::Expr::Binary(op, l, r, _) => Ok(ScalarExpr::Binary(
                *op,
                Box::new(self.scalar_expr(l, out)?),
                Box::new(self.scalar_expr(r, out)?),
            )),
            ast::Expr::Call(fname, args, pos) => {
                let Some(intr) = Intrinsic::from_name(fname) else {
                    return Err(Error::sema(*pos, format!("unknown intrinsic `{fname}`")));
                };
                if args.len() != intr.arity() {
                    return Err(Error::sema(
                        *pos,
                        format!(
                            "intrinsic `{fname}` expects {} argument(s), got {}",
                            intr.arity(),
                            args.len()
                        ),
                    ));
                }
                let args = args
                    .iter()
                    .map(|a| self.scalar_expr(a, out))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ScalarExpr::Call(intr, args))
            }
            ast::Expr::Reduce(op, rname, arg, pos) => {
                let Binding::Region(rid) = self.lookup(rname, *pos)? else {
                    return Err(Error::sema(*pos, format!("`{rname}` is not a region")));
                };
                let rank = self.program.region(rid).rank();
                let arg = self.array_expr(arg, rank)?;
                let tmp = self.fresh_scalar(Type::Float);
                out.push(Stmt::Reduce {
                    lhs: tmp,
                    op: *op,
                    region: rid,
                    arg,
                });
                Ok(ScalarExpr::ScalarRef(tmp))
            }
        }
    }

    fn stmts(&mut self, stmts: &[ast::Stmt]) -> Result<Vec<Stmt>, Error> {
        let mut out = Vec::new();
        for s in stmts {
            match s {
                ast::Stmt::ArrayAssign {
                    region,
                    lhs,
                    rhs,
                    pos,
                } => {
                    let Binding::Region(rid) = self.lookup(region, *pos)? else {
                        return Err(Error::sema(*pos, format!("`{region}` is not a region")));
                    };
                    let Binding::Array(aid) = self.lookup(lhs, *pos)? else {
                        return Err(Error::sema(
                            *pos,
                            format!("assignment target `{lhs}` is not an array"),
                        ));
                    };
                    let rank = self.program.region(rid).rank();
                    self.check_array_rank(aid, rank, *pos)?;
                    let rhs = self.array_expr(rhs, rank)?;
                    out.push(Stmt::Array(ArrayStmt {
                        region: rid,
                        lhs: aid,
                        rhs,
                    }));
                }
                ast::Stmt::ScalarAssign { lhs, rhs, pos } => {
                    let Binding::Scalar(sid) = self.lookup(lhs, *pos)? else {
                        return Err(Error::sema(
                            *pos,
                            format!("assignment target `{lhs}` is not a scalar (array assignments need a region: `[R] {lhs} := ...`)"),
                        ));
                    };
                    // `s := op<< [R] expr;` reduces directly into `s`
                    // without a hidden temporary.
                    if let ast::Expr::Reduce(op, rname, arg, rpos) = rhs {
                        let Binding::Region(rid) = self.lookup(rname, *rpos)? else {
                            return Err(Error::sema(*rpos, format!("`{rname}` is not a region")));
                        };
                        let rank = self.program.region(rid).rank();
                        let arg = self.array_expr(arg, rank)?;
                        out.push(Stmt::Reduce {
                            lhs: sid,
                            op: *op,
                            region: rid,
                            arg,
                        });
                    } else {
                        let rhs = self.scalar_expr(rhs, &mut out)?;
                        out.push(Stmt::Scalar { lhs: sid, rhs });
                    }
                }
                ast::Stmt::For {
                    var,
                    lo,
                    hi,
                    down,
                    body,
                    pos,
                } => {
                    let Binding::Scalar(vid) = self.lookup(var, *pos)? else {
                        return Err(Error::sema(
                            *pos,
                            format!("loop variable `{var}` is not a scalar"),
                        ));
                    };
                    if self.program.scalar(vid).ty != Type::Int {
                        return Err(Error::sema(
                            *pos,
                            format!("loop variable `{var}` must be int"),
                        ));
                    }
                    let mut pre = Vec::new();
                    let lo = self.scalar_expr(lo, &mut pre)?;
                    let hi = self.scalar_expr(hi, &mut pre)?;
                    if !pre.is_empty() {
                        return Err(Error::sema(
                            *pos,
                            "reductions are not allowed in loop bounds",
                        ));
                    }
                    let body = self.stmts(body)?;
                    out.push(Stmt::For {
                        var: vid,
                        lo,
                        hi,
                        down: *down,
                        body,
                    });
                }
                ast::Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    pos,
                } => {
                    let mut pre = Vec::new();
                    let cond = self.scalar_expr(cond, &mut pre)?;
                    if !pre.is_empty() {
                        return Err(Error::sema(
                            *pos,
                            "reductions are not allowed in conditions; assign to a scalar first",
                        ));
                    }
                    let then_body = self.stmts(then_body)?;
                    let else_body = self.stmts(else_body)?;
                    out.push(Stmt::If {
                        cond,
                        then_body,
                        else_body,
                    });
                }
            }
        }
        Ok(out)
    }
}

/// Maps `index1`/`index2`/`index3` to a 0-based dimension.
fn index_name(name: &str) -> Option<u8> {
    match name {
        "index1" => Some(0),
        "index2" => Some(1),
        "index3" => Some(2),
        _ => None,
    }
}

/// Analyzes a surface AST, producing the array-level IR.
///
/// # Errors
///
/// Returns the first semantic error: duplicate or undeclared names, rank
/// mismatches, misuse of arrays in scalar context (or vice versa), bad
/// intrinsic arities, or reductions in illegal positions.
pub fn analyze(ast: &ast::Program) -> Result<Program, Error> {
    let mut a = Analyzer {
        program: Program {
            name: ast.name.clone(),
            configs: Vec::new(),
            regions: Vec::new(),
            arrays: Vec::new(),
            scalars: Vec::new(),
            body: Vec::new(),
            names: crate::ir::NameTable::default(),
        },
        names: HashMap::new(),
        directions: Vec::new(),
        hidden_scalars: 0,
    };
    a.decls(&ast.decls)?;
    a.program.body = a.stmts(&ast.body)?;
    Ok(a.program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn err(src: &str) -> Error {
        compile(src).unwrap_err()
    }

    const P: &str = "program p; config n : int = 8; region R = [1..n, 1..n]; \
                     direction e = [0, 1]; var A, B : [R] float; var s : float; var k : int; ";

    #[test]
    fn lowers_array_statement() {
        let p = compile(&format!("{P} begin [R] A := B@e * 2.0 + s; end")).unwrap();
        let Stmt::Array(st) = &p.body[0] else {
            panic!()
        };
        assert_eq!(p.array(st.lhs).name, "A");
        let reads = st.rhs.reads();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].1, Offset(vec![0, 1]));
    }

    #[test]
    fn hoists_reductions() {
        let p = compile(&format!("{P} begin s := 1.0 + +<< [R] A * B; end")).unwrap();
        assert!(matches!(&p.body[0], Stmt::Reduce { .. }));
        assert!(matches!(&p.body[1], Stmt::Scalar { .. }));
    }

    #[test]
    fn index_names_lower_to_index() {
        let p = compile(&format!("{P} begin [R] A := index1 + index2; end")).unwrap();
        let Stmt::Array(st) = &p.body[0] else {
            panic!()
        };
        assert_eq!(st.rhs.read_count(), 0);
        assert!(matches!(
            st.rhs,
            ArrayExpr::Binary(_, ref l, ref r)
                if matches!(**l, ArrayExpr::Index(0)) && matches!(**r, ArrayExpr::Index(1))
        ));
    }

    #[test]
    fn rejects_rank_mismatch() {
        let e = err("program p; region R1 = [1..4]; region R2 = [1..4, 1..4]; \
                     var A : [R1] float; var B : [R2] float; begin [R2] B := A; end");
        assert!(e.message.contains("rank"), "{e}");
    }

    #[test]
    fn rejects_direction_rank_mismatch() {
        let e = err(&format!("{P} begin [R] A := B@[1]; end"));
        assert!(e.message.contains("rank"), "{e}");
    }

    #[test]
    fn rejects_duplicate_names() {
        let e = err("program p; config n : int = 1; config n : int = 2; begin end");
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn rejects_undeclared() {
        let e = err("program p; region R = [1..4]; var A : [R] float; begin [R] A := Bogus; end");
        assert!(e.message.contains("undeclared"), "{e}");
    }

    #[test]
    fn rejects_array_in_scalar_context() {
        let e = err(&format!("{P} begin s := A; end"));
        assert!(e.message.contains("scalar context"), "{e}");
    }

    #[test]
    fn rejects_scalar_assign_to_array() {
        let e = err(&format!("{P} begin A := 1.0; end"));
        assert!(e.message.contains("not a scalar"), "{e}");
    }

    #[test]
    fn rejects_float_loop_var() {
        let e = err(&format!("{P} begin for s := 1 to 3 do end; end"));
        assert!(e.message.contains("must be int"), "{e}");
    }

    #[test]
    fn rejects_reduce_inside_array_stmt() {
        let e = err(&format!("{P} begin [R] A := +<< [R] B; end"));
        assert!(e.message.contains("scalar-valued"), "{e}");
    }

    #[test]
    fn rejects_int_array() {
        let e = err("program p; region R = [1..4]; var A : [R] int; begin end");
        assert!(e.message.contains("float"), "{e}");
    }

    #[test]
    fn rejects_bad_arity() {
        let e = err(&format!("{P} begin [R] A := sqrt(A, B); end"));
        assert!(e.message.contains("argument"), "{e}");
    }

    #[test]
    fn for_loop_and_if_lower() {
        let p = compile(&format!(
            "{P} begin for k := 1 to 2 do [R] A := B; end; if s > 0.0 then [R] B := A; end; end"
        ))
        .unwrap();
        assert!(matches!(&p.body[0], Stmt::For { body, .. } if body.len() == 1));
        assert!(matches!(&p.body[1], Stmt::If { .. }));
    }

    #[test]
    fn region_bounds_resolve_configs() {
        let p = compile("program p; config n : int = 5; region R = [1..2*n+1]; begin end").unwrap();
        let b = crate::ir::ConfigBinding::defaults(&p);
        assert_eq!(p.regions[0].bounds(&b), vec![(1, 11)]);
    }
}
