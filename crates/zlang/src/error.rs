//! Diagnostics for the `zlang` frontend.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Creates a position.
    ///
    /// ```
    /// let p = zlang::error::Pos::new(3, 7);
    /// assert_eq!(p.line, 3);
    /// ```
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The phase of the frontend that produced an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic analysis.
    Sema,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex"),
            Phase::Parse => write!(f, "parse"),
            Phase::Sema => write!(f, "sema"),
        }
    }
}

/// A frontend error with a position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Which phase rejected the input.
    pub phase: Phase,
    /// Where the problem was found.
    pub pos: Pos,
    /// Human-readable description (lowercase, no trailing punctuation).
    pub message: String,
}

impl Error {
    /// Creates a lexer error.
    pub fn lex(pos: Pos, message: impl Into<String>) -> Self {
        Error {
            phase: Phase::Lex,
            pos,
            message: message.into(),
        }
    }

    /// Creates a parser error.
    pub fn parse(pos: Pos, message: impl Into<String>) -> Self {
        Error {
            phase: Phase::Parse,
            pos,
            message: message.into(),
        }
    }

    /// Creates a semantic-analysis error.
    pub fn sema(pos: Pos, message: impl Into<String>) -> Self {
        Error {
            phase: Phase::Sema,
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.pos, self.message)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Renders the error rustc-style, with the source file prepended to the
    /// span so terminals make it clickable:
    ///
    /// ```text
    /// error[parse]: expected `;`
    ///   --> prog.zl:2:5
    /// ```
    pub fn render(&self, file: &str) -> String {
        render_diagnostic(
            "error",
            &self.phase.to_string(),
            &self.message,
            Some(&format!("{file}:{}", self.pos)),
            &[],
        )
    }
}

/// Renders a rustc-style diagnostic block. Shared by the frontend and the
/// static verifiers (`fusion-core`'s translation validator and `loopir`'s
/// bytecode verifier), so every tool in the workspace reports problems in
/// one format:
///
/// ```text
/// error[verify::partition]: cluster 0 spans two regions
///   --> block 0, statements 0-1
///   = note: Definition 5 (fusible partitions)
/// ```
pub fn render_diagnostic(
    severity: &str,
    code: &str,
    message: &str,
    location: Option<&str>,
    notes: &[String],
) -> String {
    let mut out = format!("{severity}[{code}]: {message}\n");
    if let Some(loc) = location {
        out.push_str(&format!("  --> {loc}\n"));
    }
    for n in notes {
        out.push_str(&format!("  = note: {n}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_position() {
        let e = Error::parse(Pos::new(2, 5), "expected `;`");
        assert_eq!(e.to_string(), "parse error at 2:5: expected `;`");
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn pos_orders_by_line_then_col() {
        assert!(Pos::new(1, 9) < Pos::new(2, 1));
        assert!(Pos::new(2, 1) < Pos::new(2, 2));
    }
}
