//! Fuzz-style property tests: the frontend must never panic, on any input.

use testkit::cases;

/// The lexer returns Ok or Err on arbitrary text — it never panics.
#[test]
fn lexer_total_on_arbitrary_text() {
    cases(512, 0x1e8e5, |rng| {
        let len = rng.below(201);
        let src: String = (0..len)
            .map(|_| rng.range(0, 0x10FF) as u32)
            .filter_map(char::from_u32)
            .collect();
        let _ = zlang::lexer::lex(&src);
    });
}

/// The full frontend is total on arbitrary ASCII-ish soup.
#[test]
fn compiler_total_on_arbitrary_text() {
    cases(512, 0xc0de, |rng| {
        let len = rng.below(301);
        let src: String = (0..len)
            .map(|_| {
                if rng.below(20) == 0 {
                    '\n'
                } else {
                    rng.range(0x20, 0x7e) as u8 as char
                }
            })
            .collect();
        let _ = zlang::compile(&src);
    });
}

/// The frontend is total on token-shaped soup (words from the
/// language's vocabulary glued randomly) — this reaches much deeper
/// into the parser than raw bytes do.
#[test]
fn compiler_total_on_token_soup() {
    const VOCAB: &[&str] = &[
        "program",
        "config",
        "region",
        "direction",
        "var",
        "begin",
        "end",
        "for",
        "to",
        "downto",
        "do",
        "if",
        "then",
        "else",
        "float",
        "int",
        "p",
        "n",
        "R",
        "A",
        "B",
        "s",
        "k",
        "index1",
        "sqrt",
        "max",
        ";",
        ":",
        ",",
        ":=",
        "=",
        "[",
        "]",
        "(",
        ")",
        "..",
        "@",
        "+",
        "-",
        "*",
        "/",
        "<",
        "<=",
        ">",
        ">=",
        "==",
        "!=",
        "+<<",
        "max<<",
        "1",
        "2.5",
        "0",
        "-3",
    ];
    cases(512, 0x50a9, |rng| {
        let n = rng.below(60);
        let words: Vec<&str> = (0..n).map(|_| *rng.choose(VOCAB)).collect();
        let src = words.join(" ");
        let _ = zlang::compile(&src);
    });
}

/// Deterministic regression cases that once looked risky.
#[test]
fn tricky_inputs_do_not_panic() {
    for src in [
        "",
        ";",
        "program",
        "program ;",
        "program p; begin end extra",
        "program p; region R = [1..]; begin end",
        "program p; region R = [..1]; begin end",
        "program p; config n : int = 99999999999999999999; begin end",
        "program p; begin [R] A := B@; end",
        "program p; begin [ ] A := 1; end",
        "program p; region R = [1..4]; var A : [R] float; begin [R] A := A@[1,2,3]; end",
        "program p; begin if then end; end",
        "program p; begin for := 1 to 2 do end; end",
        "1e999",
        "....",
        "@@@@",
        "program p; region R = [1..4, 1..4, 1..4, 1..4, 1..4]; begin end",
    ] {
        let _ = zlang::compile(src);
    }
}

/// The six benchmarks and all fragments survive a print → re-compile
/// round trip with identical structure.
#[test]
fn pretty_source_roundtrips_real_programs() {
    let sources: Vec<String> = [
        "program p; config n : int = 4; region R = [1..n]; var A, B : [R] float; \
         var s : float; var k : int; begin \
         [R] A := 1.0; for k := 1 to 3 do [R] B := A * 2.0; [R] A := B; end; \
         s := +<< [R] A; end",
        "program q; config n : int = 4; config c : float = 0.5; \
         region RH = [0..n+1, 0..n+1]; region R = [1..n, 1..n]; \
         var X : [RH] float; var Y : [R] float; var t : float; begin \
         [RH] X := index1 + index2; [R] Y := X@[-1,0] * c + X@[1,0]; \
         if t > 0.0 then [R] Y := 0.0; else [R] Y := 1.0; end; \
         t := max<< [R] abs(Y); end",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for src in sources {
        let p1 = zlang::compile(&src).unwrap();
        let printed = zlang::pretty::source(&p1);
        let p2 = zlang::compile(&printed)
            .unwrap_or_else(|e| panic!("round trip failed: {e}\n{printed}"));
        assert_eq!(p1, p2, "{printed}");
    }
}
