//! Dimension contraction (extension).
//!
//! Section 5.2 of the paper identifies a deficiency: "SP contains a great
//! many opportunities to contract arrays to *lower dimensional* arrays.
//! Though the resulting arrays cannot be manipulated in registers, they
//! conserve memory and make better use of the cache." The paper's
//! algorithm only contracts to scalars; this module implements the missing
//! transformation.
//!
//! Mechanism: **depth-1 partial fusion**. When the producer and consumer
//! of an array cannot share a single loop nest (their other dependences
//! make full fusion illegal), they can often still share one *outer* loop
//! over a dimension `d` in which the array's flow dependences have zero
//! distance. Inside each outer iteration the member nests run to
//! completion in order, so any dependence with zero distance in `d` is
//! automatically preserved; the array then only ever holds one
//! `d`-slice at a time and its `d` dimension collapses to extent 1 — an
//! `n`-fold memory reduction.
//!
//! Legality for a group `S` of clusters sharing an outer loop over `d`
//! with direction `dir`:
//!
//! 1. all statements in `S` are fusable and share one region;
//! 2. every dependence between members has a known UDV; **flow**
//!    dependences must have `u[d] = 0` (the outer loop stays parallel,
//!    matching Definition 5's condition (ii) one level up); anti/output
//!    dependences need `dir · u[d] ≥ 0`;
//! 3. each member cluster's internal dependences are legalized by `d`
//!    outermost (carried or zero) plus a legal inner structure over the
//!    remaining dimensions;
//! 4. `GROW`-closure: no dependence path leaves and re-enters the group.
//!
//! An array collapses in `d` when it is a contraction candidate, every
//! flow dependence of each of its definitions has `u[d] = 0`, and all its
//! references lie inside the group.

use crate::asdg::{DefId, VarLabel};
use crate::depvec::DepKind;
use crate::depvec::Udv;
use crate::fusion::{FusionCtx, Partition};
use crate::loopstruct::find_loop_structure;
use std::collections::{BTreeSet, HashMap, HashSet};
use zlang::ir::ArrayId;

/// A partial-fusion group: clusters sharing one outer loop.
#[derive(Debug, Clone)]
pub struct PartialGroup {
    /// Member cluster ids.
    pub clusters: BTreeSet<usize>,
    /// The shared outer dimension (0-based).
    pub dim: u8,
    /// Outer loop direction.
    pub reverse: bool,
    /// Per-member inner loop structure (over the remaining dimensions).
    pub inner: HashMap<usize, Vec<i8>>,
    /// Arrays collapsed to extent 1 in `dim`.
    pub collapsed: Vec<ArrayId>,
}

/// Projects a UDV by removing dimension `d` (for inner-structure search).
fn project(u: &Udv, d: usize) -> Udv {
    Udv(u
        .0
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != d)
        .map(|(_, &v)| v)
        .collect())
}

/// Maps an inner structure over `rank-1` projected dimensions back to
/// original dimension numbers (skipping `d`).
fn unproject_structure(p: &[i8], d: usize) -> Vec<i8> {
    p.iter()
        .map(|&e| {
            let dim0 = (e.unsigned_abs() as usize) - 1; // projected, 0-based
            let orig = if dim0 >= d { dim0 + 1 } else { dim0 };
            ((orig + 1) as i8) * e.signum()
        })
        .collect()
}

/// Tries to form a legal group from the clusters in `s` over dimension
/// `d`. Returns per-member inner structures on success.
fn group_ok(
    ctx: &FusionCtx<'_>,
    part: &Partition,
    s: &BTreeSet<usize>,
    d: usize,
    dir: i64,
) -> Option<HashMap<usize, Vec<i8>>> {
    // Collect all member statements; check fusability and a common region.
    let mut region = None;
    let mut rank = 0;
    for &c in s {
        for &st in part.cluster(c) {
            let stmt = &ctx.block.stmts[st];
            if !stmt.is_fusable() {
                return None;
            }
            let r = stmt.region().expect("fusable statements have regions");
            match region {
                None => {
                    region = Some(r);
                    rank = ctx.program.region(r).rank();
                }
                Some(r0) if r0 != r => return None,
                _ => {}
            }
        }
    }
    if d >= rank {
        return None;
    }
    let in_group = |st: usize| s.contains(&part.cluster_of(st));

    // Check every edge among group statements.
    let mut intra: HashMap<usize, Vec<Udv>> = HashMap::new();
    for e in &ctx.asdg.edges {
        if !(in_group(e.src) && in_group(e.dst)) {
            continue;
        }
        let same_cluster = part.cluster_of(e.src) == part.cluster_of(e.dst);
        for l in &e.labels {
            let u = match (&l.var, &l.udv) {
                (VarLabel::Scalar(_), _) => return None,
                (_, None) => return None,
                (_, Some(u)) => u,
            };
            let ud = dir * u.0[d];
            if same_cluster {
                // Outer-carried deps stop constraining the inner nest.
                match ud.cmp(&0) {
                    std::cmp::Ordering::Less => return None,
                    std::cmp::Ordering::Greater => {}
                    std::cmp::Ordering::Equal => {
                        if l.kind == DepKind::Flow && !u.is_null() {
                            return None; // would re-break condition (ii)
                        }
                        intra
                            .entry(part.cluster_of(e.src))
                            .or_default()
                            .push(project(u, d));
                    }
                }
            } else {
                match l.kind {
                    DepKind::Flow => {
                        if u.0[d] != 0 {
                            return None; // keep the outer loop parallel
                        }
                    }
                    DepKind::Anti | DepKind::Output => {
                        if ud < 0 {
                            return None;
                        }
                    }
                }
            }
        }
    }

    // Per-member inner structures over the remaining dimensions.
    let mut inner = HashMap::new();
    for &c in s {
        let deps = intra.remove(&c).unwrap_or_default();
        let p = find_loop_structure(&deps, rank - 1)?;
        inner.insert(c, unproject_structure(&p, d));
    }
    Some(inner)
}

/// Finds partial-fusion groups enabling dimension contraction, given the
/// final partition and the set of already-contracted definitions.
/// `candidates` are the block's contraction-candidate definitions.
pub fn find_groups(
    ctx: &FusionCtx<'_>,
    part: &Partition,
    candidates: &[DefId],
    already_contracted: &HashSet<DefId>,
) -> Vec<PartialGroup> {
    let mut groups: Vec<PartialGroup> = Vec::new();
    let mut used_clusters: BTreeSet<usize> = BTreeSet::new();

    for &x in candidates {
        if already_contracted.contains(&x) {
            continue;
        }
        // Flow labels of x must all be known; find dimensions where every
        // flow distance is zero.
        let flows: Vec<&Udv> = ctx
            .asdg
            .labels_of_def(x)
            .into_iter()
            .filter(|(_, _, l)| l.kind == DepKind::Flow)
            .map(|(_, _, l)| l.udv.as_ref())
            .collect::<Option<Vec<_>>>()
            .unwrap_or_default();
        if flows.is_empty() {
            continue; // cross-region or unread definition
        }
        let rank = flows[0].rank();
        let zero_dims: Vec<usize> = (0..rank)
            .filter(|&d| flows.iter().all(|u| u.0[d] == 0))
            .collect();
        if zero_dims.is_empty() {
            continue;
        }

        // Form the group around x's references.
        let mut s: BTreeSet<usize> = ctx
            .asdg
            .stmts_of_def(x)
            .iter()
            .map(|&st| part.cluster_of(st))
            .collect();
        if s.len() < 2 {
            continue; // full contraction already had its chance
        }
        s.extend(ctx.grow(part, &s));
        if s.iter().any(|c| used_clusters.contains(c)) {
            // Try to extend an existing group instead of overlapping it:
            // the union must itself be a legal group over the same
            // dimension and direction.
            if let Some(gi) = groups
                .iter()
                .position(|g| s.iter().any(|c| g.clusters.contains(c)))
            {
                let (dim, dir) = (
                    groups[gi].dim as usize,
                    if groups[gi].reverse { -1 } else { 1 },
                );
                if zero_dims.contains(&dim)
                    && !s
                        .iter()
                        .any(|c| used_clusters.contains(c) && !groups[gi].clusters.contains(c))
                {
                    let mut union: BTreeSet<usize> = groups[gi].clusters.clone();
                    union.extend(s.iter().copied());
                    union.extend(ctx.grow(part, &union));
                    let union_free = union
                        .iter()
                        .all(|c| groups[gi].clusters.contains(c) || !used_clusters.contains(c));
                    if union_free {
                        if let Some(inner) = group_ok(ctx, part, &union, dim, dir) {
                            used_clusters.extend(union.iter().copied());
                            let array = ctx.asdg.def(x).array;
                            let g = &mut groups[gi];
                            g.clusters = union;
                            g.inner = inner;
                            if !g.collapsed.contains(&array) {
                                g.collapsed.push(array);
                            }
                        }
                    }
                }
            }
            continue;
        }

        // Try each zero dimension, each direction.
        let mut formed = false;
        'dims: for &d in &zero_dims {
            for dir in [1i64, -1] {
                if let Some(inner) = group_ok(ctx, part, &s, d, dir) {
                    let array = ctx.asdg.def(x).array;
                    used_clusters.extend(s.iter().copied());
                    groups.push(PartialGroup {
                        clusters: s.clone(),
                        dim: d as u8,
                        reverse: dir < 0,
                        inner,
                        collapsed: vec![array],
                    });
                    formed = true;
                    break 'dims;
                }
            }
        }
        let _ = formed;
    }

    // Validate collapses: an array may collapse only if EVERY definition
    // of it in the block has zero flow distance in the group dimension and
    // all its references are inside the group.
    for g in &mut groups {
        let dim = g.dim as usize;
        g.collapsed.retain(|&a| {
            ctx.asdg.defs_of(a).iter().all(|&def| {
                let refs_in = ctx
                    .asdg
                    .stmts_of_def(def)
                    .iter()
                    .all(|&st| g.clusters.contains(&part.cluster_of(st)));
                let flows_zero = ctx.asdg.labels_of_def(def).iter().all(|(_, _, l)| {
                    l.kind != DepKind::Flow || l.udv.as_ref().is_some_and(|u| u.0[dim] == 0)
                });
                refs_in && flows_zero
            })
        });
    }
    groups.retain(|g| !g.collapsed.is_empty());
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asdg::build;
    use crate::normal::{contraction_candidates, normalize};
    use crate::weights::sort_by_weight;

    struct Setup {
        np: crate::normal::NormProgram,
        asdg: crate::asdg::Asdg,
    }

    fn setup(src: &str) -> Setup {
        let np = normalize(&zlang::compile(src).unwrap());
        assert_eq!(np.blocks.len(), 1);
        let asdg = build(&np.program, &np.blocks[0]);
        Setup { np, asdg }
    }

    fn run(s: &Setup) -> (Partition, HashSet<DefId>, Vec<PartialGroup>) {
        let ctx = FusionCtx::new(&s.np.program, &s.np.blocks[0], &s.asdg);
        let mut part = Partition::trivial(s.asdg.n);
        let cand_arrays = contraction_candidates(&s.np);
        let mut defs = Vec::new();
        for (i, c) in cand_arrays.iter().enumerate() {
            if c.is_some() {
                defs.extend(s.asdg.defs_of(ArrayId(i as u32)));
            }
        }
        let defs = sort_by_weight(
            &s.np.program,
            &s.np.blocks[0],
            &s.asdg,
            defs,
            &s.np.default_binding(),
        );
        ctx.fusion_for_contraction(&mut part, &defs);
        let contracted: HashSet<DefId> = ctx.contracted_defs(&part, &defs).into_iter().collect();
        let groups = find_groups(&ctx, &part, &defs, &contracted);
        (part, contracted, groups)
    }

    /// The SP shape: T produced with an x-offset stencil, consumed with a
    /// y-offset stencil. Full fusion is illegal (T's flow is carried in
    /// dim 2), but both nests can share the dim-1 outer loop and T drops
    /// to a single row.
    const SWEEP: &str = "program p; config n : int = 8; \
        region GH = [0..n+1, 0..n+1]; region R = [1..n, 1..n]; \
        var A : [GH] float; var T : [GH] float; var OUT : [R] float; var s : float; \
        begin \
          [R] T := A@[0,-1] + A@[0,1]; \
          [R] OUT := T@[0,-1] + T@[0,1]; \
          s := +<< [R] OUT; end";

    #[test]
    fn no_group_when_flow_is_carried_in_every_dim() {
        // T read at diagonal offsets: no zero dimension.
        let s = setup(
            "program p; config n : int = 8; \
             region GH = [0..n+1, 0..n+1]; region R = [1..n, 1..n]; \
             var A, T : [GH] float; var OUT : [R] float; var s : float; \
             begin [R] T := A; [R] OUT := T@[-1,-1]; s := +<< [R] OUT; end",
        );
        let (_, _, groups) = run(&s);
        assert!(groups.is_empty());
    }

    #[test]
    fn sweep_chain_forms_group_and_collapses_dim1() {
        let s = setup(SWEEP);
        let (part, contracted, groups) = run(&s);
        // T's flow (u = (0,±1)) blocks full contraction...
        let t = s.np.program.array_by_name("T").unwrap();
        for def in s.asdg.defs_of(t) {
            assert!(!contracted.contains(&def));
        }
        // ...but dimension 1 (index 0) is flow-free, so a group forms.
        assert_eq!(groups.len(), 1, "{groups:?}");
        let g = &groups[0];
        assert_eq!(g.dim, 0);
        assert!(!g.reverse);
        assert_eq!(g.collapsed, vec![t]);
        assert_eq!(g.clusters.len(), part.live_clusters().len().min(3));
        // Inner structures cover only dimension 2.
        for inner in g.inner.values() {
            assert_eq!(inner, &vec![2]);
        }
    }

    #[test]
    fn carried_anti_in_outer_dim_respects_direction() {
        // The consumer also reads A@[1,0] while a later statement writes A:
        // an anti dependence carried in dim 1. Grouping must still work
        // with dir = +1 (anti distance ≥ 0 towards the write).
        let s = setup(
            "program p; config n : int = 8; \
             region GH = [0..n+1, 0..n+1]; region R = [1..n, 1..n]; \
             var A, T : [GH] float; var OUT : [R] float; var s : float; \
             begin \
               [R] T := A@[0,-1] + A@[0,1]; \
               [R] OUT := T@[0,-1] + T@[0,1]; \
               s := +<< [R] OUT; end",
        );
        let (_, _, groups) = run(&s);
        assert_eq!(groups.len(), 1);
    }
}
