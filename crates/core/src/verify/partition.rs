//! Fusion-partition legality (Definition 5), checked from first principles.
//!
//! Unlike [`crate::fusion::FusionCtx::merged_ok`] — which the fusion passes
//! themselves call — this checker shares no code with the pipeline: cluster
//! coverage is re-derived from the public accessors, the fusion-preventing
//! label rules are re-applied directly to the (already independently
//! verified) ASDG, the existence of a legal loop structure is decided by
//! exhaustive search over all signed permutations (rank ≤ 4 means at most
//! 384 candidates) instead of the greedy `FIND-LOOP-STRUCTURE`, and
//! acyclicity of the cluster graph uses Kahn's algorithm.

use super::{Diagnostic, Stage};
use crate::asdg::{Asdg, VarLabel};
use crate::depvec::{DepKind, Udv};
use crate::fusion::Partition;
use crate::normal::Block;
use zlang::ir::Program;

/// All signed permutations of `1..=rank` — every candidate loop structure
/// vector of Definition 4. Empty rank yields the single empty structure.
pub(crate) fn signed_structures(rank: usize) -> Vec<Vec<i8>> {
    fn rec(rank: usize, used: &mut [bool], cur: &mut Vec<i8>, out: &mut Vec<Vec<i8>>) {
        if cur.len() == rank {
            out.push(cur.clone());
            return;
        }
        for d in 0..rank {
            if used[d] {
                continue;
            }
            used[d] = true;
            for sign in [1i8, -1] {
                cur.push(sign * (d as i8 + 1));
                rec(rank, used, cur, out);
                cur.pop();
            }
            used[d] = false;
        }
    }
    let mut out = Vec::new();
    rec(rank, &mut vec![false; rank], &mut Vec::new(), &mut out);
    out
}

pub(crate) fn check(
    program: &Program,
    block: &Block,
    bi: usize,
    g: &Asdg,
    part: &Partition,
) -> Vec<Diagnostic> {
    let n = block.stmts.len();
    let mut diags = Vec::new();

    // Coverage: the clusters must partition exactly the block's statements.
    let live = part.live_clusters();
    let mut covered: Vec<(usize, usize)> = Vec::new();
    for &c in &live {
        for &s in part.cluster(c) {
            covered.push((s, c));
        }
    }
    covered.sort_unstable();
    let stmts_ok = covered.len() == n
        && covered.iter().enumerate().all(|(i, &(s, _))| s == i)
        && covered.iter().all(|&(s, c)| part.cluster_of(s) == c);
    if !stmts_ok {
        return vec![Diagnostic::error(
            Stage::VerifyPartition,
            format!(
                "clusters do not partition the block's {n} statements \
                 (covered: {:?})",
                covered.iter().map(|&(s, _)| s).collect::<Vec<_>>()
            ),
        )
        .in_block(bi)];
    }

    for &c in &live {
        let stmts = part.cluster(c);
        let loc = format!("cluster {c} (statements {stmts:?})");
        // Fusability: multi-statement clusters hold only loop-shaped
        // statements (array assignments and reductions).
        if stmts.len() > 1 {
            if let Some(&s) = stmts.iter().find(|&&s| !block.stmts[s].is_fusable()) {
                diags.push(
                    Diagnostic::error(
                        Stage::VerifyPartition,
                        format!(
                            "statement {s} is a scalar assignment and cannot join a \
                                 multi-statement cluster"
                        ),
                    )
                    .in_block(bi)
                    .at(loc.clone()),
                );
            }
        }
        // Condition (i): one common region.
        let mut regions: Vec<_> = stmts
            .iter()
            .filter_map(|&s| block.stmts[s].region())
            .collect();
        regions.sort_unstable();
        regions.dedup();
        if regions.len() > 1 {
            let names: Vec<&str> = regions
                .iter()
                .map(|&r| program.region(r).name.as_str())
                .collect();
            diags.push(
                Diagnostic::error(
                    Stage::VerifyPartition,
                    format!(
                        "cluster spans regions {} — Definition 5 requires all statements of \
                         a cluster to iterate one region",
                        names.join(", ")
                    ),
                )
                .in_block(bi)
                .at(loc.clone()),
            );
            continue; // no meaningful rank to search structures over
        }
        // Intra-cluster labels: collect UDVs; reject fusion-preventing ones.
        let in_cluster = |s: usize| part.cluster_of(s) == c;
        let mut deps: Vec<Udv> = Vec::new();
        let mut label_bad = false;
        for e in &g.edges {
            if !(in_cluster(e.src) && in_cluster(e.dst)) {
                continue;
            }
            for l in &e.labels {
                match (&l.var, &l.udv) {
                    (VarLabel::Scalar(s), _) => {
                        label_bad = true;
                        diags.push(
                            Diagnostic::error(
                                Stage::VerifyPartition,
                                format!(
                                    "scalar dependence on `{}` between statements {} and {} \
                                     is intra-cluster — a scalar's value is only complete \
                                     after its whole statement",
                                    program.scalar(*s).name,
                                    e.src,
                                    e.dst
                                ),
                            )
                            .in_block(bi)
                            .at(loc.clone()),
                        );
                    }
                    (VarLabel::Array(_), None) => {
                        label_bad = true;
                        diags.push(
                            Diagnostic::error(
                                Stage::VerifyPartition,
                                format!(
                                    "cross-region dependence between statements {} and {} has \
                                     no UDV and cannot be legalized inside a cluster",
                                    e.src, e.dst
                                ),
                            )
                            .in_block(bi)
                            .at(loc.clone()),
                        );
                    }
                    (VarLabel::Array(d), Some(u)) => {
                        if l.kind == DepKind::Flow && !u.is_null() {
                            label_bad = true;
                            diags.push(
                                Diagnostic::error(
                                    Stage::VerifyPartition,
                                    format!(
                                        "intra-cluster flow dependence on `{}` from statement \
                                         {} to {} has non-null UDV {u} — Definition 5 \
                                         condition (ii) requires null flow UDVs inside a \
                                         cluster",
                                        program.array(g.def(*d).array).name,
                                        e.src,
                                        e.dst
                                    ),
                                )
                                .in_block(bi)
                                .at(loc.clone()),
                            );
                        }
                        deps.push(u.clone());
                    }
                }
            }
        }
        // Existence of a legal loop structure (condition on Definition 4),
        // by exhaustive search — independent of the greedy finder.
        if !label_bad {
            if let Some(&r) = regions.first() {
                let rank = program.region(r).rank();
                let found = signed_structures(rank)
                    .into_iter()
                    .any(|p| deps.iter().all(|u| u.preserved_by(&p)));
                if !found {
                    diags.push(
                        Diagnostic::error(
                            Stage::VerifyPartition,
                            format!(
                                "no loop structure over rank-{rank} region `{}` preserves all \
                                 {} intra-cluster dependences (exhaustive search)",
                                program.region(r).name,
                                deps.len()
                            ),
                        )
                        .in_block(bi)
                        .at(loc.clone()),
                    );
                }
            }
        }
    }

    // Condition (iii): the inter-cluster dependence graph must be acyclic.
    let idx: std::collections::HashMap<usize, usize> =
        live.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let mut indeg = vec![0usize; live.len()];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); live.len()];
    let mut seen = std::collections::BTreeSet::new();
    for e in &g.edges {
        let (a, b) = (part.cluster_of(e.src), part.cluster_of(e.dst));
        if a != b && seen.insert((a, b)) {
            succ[idx[&a]].push(idx[&b]);
            indeg[idx[&b]] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..live.len()).filter(|&i| indeg[i] == 0).collect();
    let mut done = 0;
    while let Some(i) = ready.pop() {
        done += 1;
        for &j in &succ[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.push(j);
            }
        }
    }
    if done != live.len() {
        let stuck: Vec<usize> = live
            .iter()
            .enumerate()
            .filter(|&(i, _)| indeg[i] > 0)
            .map(|(_, &c)| c)
            .collect();
        diags.push(
            Diagnostic::error(
                Stage::VerifyPartition,
                format!(
                    "the inter-cluster dependence graph has a cycle through clusters \
                     {stuck:?} — no statement order realizes this partition"
                ),
            )
            .in_block(bi),
        );
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asdg::build;
    use crate::normal::normalize;
    use std::collections::BTreeSet;

    fn setup(src: &str) -> (crate::normal::NormProgram, Asdg) {
        let np = normalize(&zlang::compile(src).unwrap());
        assert_eq!(np.blocks.len(), 1);
        let g = build(&np.program, &np.blocks[0]);
        (np, g)
    }

    const P: &str = "program p; config n : int = 8; region R = [1..n, 1..n]; \
                     direction w = [0, -1]; var A, B, C : [R] float; var s : float; ";

    #[test]
    fn signed_structures_counts() {
        assert_eq!(signed_structures(0).len(), 1);
        assert_eq!(signed_structures(1).len(), 2);
        assert_eq!(signed_structures(2).len(), 8);
        assert_eq!(signed_structures(3).len(), 48);
        assert_eq!(signed_structures(4).len(), 384);
    }

    #[test]
    fn trivial_partition_is_always_legal() {
        let (np, g) = setup(&format!(
            "{P} begin [R] B := A; s := 2.0; [R] C := B@w * s; end"
        ));
        let part = Partition::trivial(g.n);
        let diags = check(&np.program, &np.blocks[0], 0, &g, &part);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn nonnull_flow_inside_cluster_is_reported() {
        let (np, g) = setup(&format!("{P} begin [R] C := A; [R] B := C@w; end"));
        let mut part = Partition::trivial(g.n);
        part.merge(&BTreeSet::from([0, 1]));
        let diags = check(&np.program, &np.blocks[0], 0, &g, &part);
        assert!(
            diags.iter().any(|d| d.message.contains("non-null UDV")),
            "{diags:?}"
        );
    }

    #[test]
    fn scalar_statement_in_cluster_is_reported() {
        let (np, g) = setup(&format!("{P} begin [R] B := A; s := 2.0; end"));
        let mut part = Partition::trivial(g.n);
        part.merge(&BTreeSet::from([0, 1]));
        let diags = check(&np.program, &np.blocks[0], 0, &g, &part);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("scalar assignment")),
            "{diags:?}"
        );
    }

    #[test]
    fn region_spanning_cluster_is_reported() {
        let (np, g) = setup(
            "program p; config n : int = 8; region R1 = [1..n]; region R2 = [2..n]; \
             var A, B, C : [R1] float; begin [R1] B := A; [R2] C := A@[-1]; end",
        );
        let mut part = Partition::trivial(g.n);
        part.merge(&BTreeSet::from([0, 1]));
        let diags = check(&np.program, &np.blocks[0], 0, &g, &part);
        assert!(
            diags.iter().any(|d| d.message.contains("spans regions")),
            "{diags:?}"
        );
    }

    #[test]
    fn unsatisfiable_dependence_pair_is_reported() {
        // Anti u = (0,-1) together with anti u = (0,1) on the same dimension
        // cannot both be preserved: +2 fails the first, -2 fails the second,
        // and dimension 1 is zero in both so interchange does not help.
        let (np, g) = setup(&format!(
            "{P} begin [R] B := C@w + C@[0,1]; [R] C := A; end"
        ));
        let mut part = Partition::trivial(g.n);
        part.merge(&BTreeSet::from([0, 1]));
        let diags = check(&np.program, &np.blocks[0], 0, &g, &part);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("no loop structure")),
            "{diags:?}"
        );
    }
}
