//! Independent recomputation of the ASDG (Definitions 2–3).
//!
//! [`crate::asdg::build`] walks the block once, tracking live ranges
//! incrementally. This checker recomputes the same dependences with a
//! deliberately different, naive algorithm — a quadratic pair scan that
//! re-derives "which write does this reference see" from scratch for every
//! reference — and diffs the two label multisets. A dependence the builder
//! missed is an error (fusion may have reordered something it should not
//! have); an extra label is a warning (conservative, but worth flagging).

use super::{Diagnostic, Stage};
use crate::asdg::{Asdg, VarLabel};
use crate::depvec::{DepKind, Udv};
use crate::normal::{BStmt, Block};
use zlang::ir::{ArrayId, Offset, Program, ScalarId};

/// One dependence label, canonicalized so facts from the builder and the
/// recomputation compare equal: array live ranges are identified by
/// `(array, defining statement)` instead of builder-assigned [`crate::asdg::DefId`]s.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Fact {
    src: usize,
    dst: usize,
    var: VarKey,
    kind: u8,
    udv: Option<Vec<i64>>,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum VarKey {
    /// `(array id, defining statement of the live range)` — `None` is the
    /// live-in range.
    Array(u32, Option<usize>),
    Scalar(u32),
}

fn kind_ord(kind: DepKind) -> u8 {
    match kind {
        DepKind::Flow => 0,
        DepKind::Anti => 1,
        DepKind::Output => 2,
    }
}

fn kind_name(kind: u8) -> &'static str {
    ["flow", "anti", "output"][kind as usize]
}

/// The labels the builder actually recorded, canonicalized.
fn recorded(g: &Asdg) -> Vec<Fact> {
    let mut facts = Vec::new();
    for e in &g.edges {
        for l in &e.labels {
            let var = match l.var {
                VarLabel::Array(d) => {
                    let info = g.def(d);
                    VarKey::Array(info.array.0, info.def_stmt)
                }
                VarLabel::Scalar(s) => VarKey::Scalar(s.0),
            };
            facts.push(Fact {
                src: e.src,
                dst: e.dst,
                var,
                kind: kind_ord(l.kind),
                udv: l.udv.clone().map(|u| u.0),
            });
        }
    }
    facts
}

/// Recomputes every dependence of the block from first principles.
fn recompute(program: &Program, block: &Block) -> Vec<Fact> {
    let stmts = &block.stmts;
    let n = stmts.len();
    let last_write_before = |a: ArrayId, j: usize| -> Option<usize> {
        (0..j).rev().find(|&w| stmts[w].lhs_array() == Some(a))
    };
    let last_scalar_write_before = |s: ScalarId, j: usize| -> Option<usize> {
        (0..j).rev().find(|&w| stmts[w].lhs_scalar() == Some(s))
    };
    let same_region = |x: usize, y: usize| -> bool {
        matches!((stmts[x].region(), stmts[y].region()), (Some(a), Some(b)) if a == b)
    };
    let mut facts = Vec::new();
    for j in 0..n {
        // Flow: each array read sees the last write before it (Def. 2:
        // u = source offset − target offset; the write offset is zero).
        for (a, off) in stmts[j].reads() {
            if let Some(w) = last_write_before(a, j) {
                let u = Udv::between(&Offset::zero(off.rank()), &off);
                facts.push(Fact {
                    src: w,
                    dst: j,
                    var: VarKey::Array(a.0, Some(w)),
                    kind: kind_ord(DepKind::Flow),
                    udv: same_region(w, j).then_some(u.0),
                });
            }
        }
        // Scalar flow: each scalar read sees the last scalar write.
        for s in stmts[j].scalar_reads() {
            if let Some(w) = last_scalar_write_before(s, j) {
                facts.push(Fact {
                    src: w,
                    dst: j,
                    var: VarKey::Scalar(s.0),
                    kind: kind_ord(DepKind::Flow),
                    udv: None,
                });
            }
        }
        // Array write: anti dependences from every read of the live range
        // being killed (a read at r belongs to that range iff it sees the
        // same previous write), plus an output dependence from that write.
        if let BStmt::Array(ast) = &stmts[j] {
            let a = ast.lhs;
            let prev = last_write_before(a, j);
            for (r, rs) in stmts.iter().enumerate().take(j) {
                for (ra, roff) in rs.reads() {
                    if ra != a || last_write_before(a, r) != prev {
                        continue;
                    }
                    let u = Udv::between(&roff, &Offset::zero(roff.rank()));
                    facts.push(Fact {
                        src: r,
                        dst: j,
                        var: VarKey::Array(a.0, prev),
                        kind: kind_ord(DepKind::Anti),
                        udv: same_region(r, j).then_some(u.0),
                    });
                }
            }
            if let Some(w) = prev {
                let u = Udv::null(program.region(ast.region).rank());
                facts.push(Fact {
                    src: w,
                    dst: j,
                    var: VarKey::Array(a.0, Some(w)),
                    kind: kind_ord(DepKind::Output),
                    udv: same_region(w, j).then_some(u.0),
                });
            }
        }
        // Scalar write: anti dependences from readers since the previous
        // write, plus an output dependence from that write.
        if let Some(s) = stmts[j].lhs_scalar() {
            let prev_w = last_scalar_write_before(s, j);
            for (r, rs) in stmts.iter().enumerate().take(j) {
                if prev_w.is_some_and(|w| r <= w) {
                    continue;
                }
                for sr in rs.scalar_reads() {
                    if sr != s {
                        continue;
                    }
                    facts.push(Fact {
                        src: r,
                        dst: j,
                        var: VarKey::Scalar(s.0),
                        kind: kind_ord(DepKind::Anti),
                        udv: None,
                    });
                }
            }
            if let Some(w) = prev_w {
                facts.push(Fact {
                    src: w,
                    dst: j,
                    var: VarKey::Scalar(s.0),
                    kind: kind_ord(DepKind::Output),
                    udv: None,
                });
            }
        }
    }
    facts
}

fn describe(program: &Program, f: &Fact) -> String {
    let var = match &f.var {
        VarKey::Array(a, def) => {
            let name = &program.array(ArrayId(*a)).name;
            match def {
                Some(d) => format!("`{name}` (defined by statement {d})"),
                None => format!("`{name}` (live-in)"),
            }
        }
        VarKey::Scalar(s) => format!("scalar `{}`", program.scalar(ScalarId(*s)).name),
    };
    let udv = match &f.udv {
        Some(u) => Udv(u.clone()).to_string(),
        None => "-".to_string(),
    };
    format!(
        "{} dependence {} -> {} on {var} with UDV {udv}",
        kind_name(f.kind),
        f.src,
        f.dst
    )
}

pub(crate) fn check(program: &Program, block: &Block, bi: usize, g: &Asdg) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Structural sanity first: diffing makes no sense on a malformed graph.
    if g.n != block.stmts.len() {
        return vec![Diagnostic::error(
            Stage::VerifyAsdg,
            format!(
                "graph has {} vertices but the block has {} statements",
                g.n,
                block.stmts.len()
            ),
        )
        .in_block(bi)];
    }
    for e in &g.edges {
        if e.src >= e.dst || e.dst >= g.n {
            diags.push(
                Diagnostic::error(
                    Stage::VerifyAsdg,
                    format!(
                        "edge {} -> {} does not point forward within the block",
                        e.src, e.dst
                    ),
                )
                .in_block(bi),
            );
        }
    }
    for (si, stmt) in block.stmts.iter().enumerate() {
        let is_array = matches!(stmt, BStmt::Array(_));
        if g.write_def[si].is_some() != is_array {
            diags.push(
                Diagnostic::error(
                    Stage::VerifyAsdg,
                    "write-definition table disagrees with the statement kinds".to_string(),
                )
                .in_block(bi)
                .at(format!("statement {si}")),
            );
        }
    }
    if !diags.is_empty() {
        return diags;
    }

    let mut want = recompute(program, block);
    let mut have = recorded(g);
    want.sort();
    have.sort();
    // Multiset diff by merge.
    let (mut i, mut j) = (0, 0);
    while i < want.len() || j < have.len() {
        let take_missing = match (want.get(i), have.get(j)) {
            (Some(w), Some(h)) => {
                if w == h {
                    i += 1;
                    j += 1;
                    continue;
                }
                w < h
            }
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_missing {
            let w = &want[i];
            diags.push(
                Diagnostic::error(
                    Stage::VerifyAsdg,
                    format!("missing dependence: {}", describe(program, w)),
                )
                .in_block(bi)
                .at(format!("edge {} -> {}", w.src, w.dst))
                .note(
                    "an independent recomputation derives this dependence, but the \
                     pipeline's graph omits it — transformations may have reordered \
                     conflicting references",
                ),
            );
            i += 1;
        } else {
            let h = &have[j];
            diags.push(
                Diagnostic::warning(
                    Stage::VerifyAsdg,
                    format!("spurious dependence: {}", describe(program, h)),
                )
                .in_block(bi)
                .at(format!("edge {} -> {}", h.src, h.dst))
                .note(
                    "the pipeline's graph records a dependence the independent \
                     recomputation cannot derive; it is conservative but may inhibit \
                     fusion",
                ),
            );
            j += 1;
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asdg::build;
    use crate::depvec::DepKind;
    use crate::normal::normalize;

    fn setup(src: &str) -> (crate::normal::NormProgram, Asdg) {
        let np = normalize(&zlang::compile(src).unwrap());
        assert_eq!(np.blocks.len(), 1);
        let g = build(&np.program, &np.blocks[0]);
        (np, g)
    }

    const P: &str = "program p; config n : int = 8; region R = [1..n, 1..n]; \
                     direction w = [0, -1]; var A, B, C : [R] float; var s : float; ";

    #[test]
    fn recomputation_matches_builder_on_rich_block() {
        let (np, g) = setup(&format!(
            "{P} begin s := 2.0; [R] A := B@w * s; [R] C := A; [R] A := C + B; \
             s := +<< [R] A; [R] B := A; end"
        ));
        let diags = check(&np.program, &np.blocks[0], 0, &g);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dropped_edge_is_reported_as_missing() {
        let (np, mut g) = setup(&format!("{P} begin [R] B := A; [R] C := B@w; end"));
        assert!(!g.edges.is_empty());
        let e = g.edges.remove(0);
        for v in g.out_edges.iter_mut().chain(g.in_edges.iter_mut()) {
            v.clear();
        }
        let diags = check(&np.program, &np.blocks[0], 0, &g);
        assert!(
            diags
                .iter()
                .any(|d| d.severity == super::super::Severity::Error
                    && d.message.contains("missing dependence")),
            "dropping edge {} -> {} must be caught: {diags:?}",
            e.src,
            e.dst
        );
    }

    #[test]
    fn extra_label_is_reported_as_spurious() {
        let (np, mut g) = setup(&format!("{P} begin [R] B := A; [R] C := B; end"));
        let d = g.write_def[0].unwrap();
        g.edges[0].labels.push(crate::asdg::Label {
            var: VarLabel::Array(d),
            udv: Some(Udv(vec![1, 0])),
            kind: DepKind::Anti,
        });
        let diags = check(&np.program, &np.blocks[0], 0, &g);
        assert!(
            diags
                .iter()
                .any(|d| d.severity == super::super::Severity::Warning
                    && d.message.contains("spurious dependence")),
            "{diags:?}"
        );
    }
}
