//! Loop-structure legality of the emitted nests (Definition 4).
//!
//! The scalarizer stamps every [`LoopNest`] with the cluster it implements;
//! this checker re-associates each nest with its source block by walking
//! the control-flow skeleton the same way [`crate::pipeline`]'s splice
//! does, then re-checks, per nest, that
//!
//! * the referenced cluster is live in the block's final partition and the
//!   cluster's statements iterate the nest's region;
//! * the structure vector is a signed permutation of `1..=rank`
//!   (Definition 4's well-formedness); and
//! * every intra-cluster dependence UDV is preserved — constraining it by
//!   the structure yields a lexicographically non-negative distance vector.
//!
//! Nests under an [`LStmt::Outer`] loop (the dimension-contraction
//! extension) carry partial structures that deliberately omit the shared
//! outer dimension; for those only well-formedness of the remaining
//! entries is checked.

use super::{Diagnostic, Stage};
use crate::asdg::VarLabel;
use crate::normal::{NStmt, NormProgram};
use crate::pipeline::{BlockDetail, Optimized};
use loopir::ir::{is_valid_structure, LStmt, LoopNest};
use loopir::ScalarProgram;

struct Found<'a> {
    block: usize,
    under_outer: bool,
    nest: &'a LoopNest,
}

fn collect_nests<'a>(s: &'a LStmt, block: usize, under_outer: bool, out: &mut Vec<Found<'a>>) {
    match s {
        LStmt::Nest(n) => out.push(Found {
            block,
            under_outer,
            nest: n,
        }),
        LStmt::Outer { body, .. } => {
            for inner in body {
                collect_nests(inner, block, true, out);
            }
        }
        _ => {}
    }
}

/// Walks the normalized skeleton and the scalarized statement list in
/// lockstep (the inverse of the pipeline's splice), attributing every nest
/// to its block. Returns `false` when the two shapes do not line up.
fn align<'a>(body: &[NStmt], ls: &'a [LStmt], out: &mut Vec<Found<'a>>) -> bool {
    let mut it = ls.iter().peekable();
    for ns in body {
        match ns {
            NStmt::Block(bi) => {
                while let Some(s) = it.peek() {
                    if matches!(s, LStmt::For { .. } | LStmt::If { .. }) {
                        break;
                    }
                    collect_nests(it.next().unwrap(), *bi, false, out);
                }
            }
            NStmt::For { body, .. } => {
                let Some(LStmt::For { body: lbody, .. }) = it.next() else {
                    return false;
                };
                if !align(body, lbody, out) {
                    return false;
                }
            }
            NStmt::If {
                then_body,
                else_body,
                ..
            } => {
                let Some(LStmt::If {
                    then_body: lt,
                    else_body: le,
                    ..
                }) = it.next()
                else {
                    return false;
                };
                if !align(then_body, lt, out) || !align(else_body, le, out) {
                    return false;
                }
            }
        }
    }
    it.next().is_none()
}

/// Structure well-formedness for reduction loops, which carry no cluster
/// provenance: just walk everything.
fn check_reduce_structures(
    program: &zlang::ir::Program,
    stmts: &[LStmt],
    diags: &mut Vec<Diagnostic>,
) {
    for s in stmts {
        match s {
            LStmt::ReduceNest {
                region, structure, ..
            } => {
                let rank = program.region(*region).rank();
                if !is_valid_structure(structure, rank) {
                    diags.push(Diagnostic::error(
                        Stage::VerifyStructure,
                        format!(
                            "reduction over rank-{rank} region `{}` has structure \
                             {structure:?}, which is not a signed permutation of 1..={rank}",
                            program.region(*region).name
                        ),
                    ));
                }
            }
            LStmt::For { body, .. } | LStmt::Outer { body, .. } => {
                check_reduce_structures(program, body, diags)
            }
            LStmt::If {
                then_body,
                else_body,
                ..
            } => {
                check_reduce_structures(program, then_body, diags);
                check_reduce_structures(program, else_body, diags);
            }
            LStmt::Nest(_) | LStmt::Scalar { .. } => {}
        }
    }
}

pub(crate) fn check(opt: &Optimized) -> Vec<Diagnostic> {
    check_parts(&opt.norm, &opt.scalarized, &opt.details)
}

pub(crate) fn check_parts(
    norm: &NormProgram,
    scalarized: &ScalarProgram,
    details: &[BlockDetail],
) -> Vec<Diagnostic> {
    let program = &norm.program;
    let mut diags = Vec::new();
    check_reduce_structures(program, &scalarized.stmts, &mut diags);

    let mut found = Vec::new();
    if !align(&norm.body, &scalarized.stmts, &mut found) {
        diags.push(Diagnostic::warning(
            Stage::VerifyStructure,
            "control-flow skeletons of the normalized and scalarized programs do not line \
             up; per-nest structure checks skipped",
        ));
        return diags;
    }

    for f in &found {
        let Some(detail) = details.get(f.block) else {
            diags.push(
                Diagnostic::error(
                    Stage::VerifyStructure,
                    format!("nest belongs to block {} which has no record", f.block),
                )
                .in_block(f.block),
            );
            continue;
        };
        let part = &detail.partition;
        let loc = format!("nest for cluster {}", f.nest.cluster);
        if !part.live_clusters().contains(&f.nest.cluster) {
            diags.push(
                Diagnostic::error(
                    Stage::VerifyStructure,
                    format!(
                        "nest references cluster {} which is not live in the block's \
                         partition",
                        f.nest.cluster
                    ),
                )
                .in_block(f.block)
                .at(loc),
            );
            continue;
        }
        let stmts = part.cluster(f.nest.cluster);
        let rank = program.region(f.nest.region).rank();
        let mut region_ok = true;
        for &s in stmts {
            if let Some(r) = norm.blocks[f.block].stmts[s].region() {
                if r != f.nest.region {
                    region_ok = false;
                    diags.push(
                        Diagnostic::error(
                            Stage::VerifyStructure,
                            format!(
                                "statement {s} iterates region `{}` but its nest was emitted \
                                 over `{}`",
                                program.region(r).name,
                                program.region(f.nest.region).name
                            ),
                        )
                        .in_block(f.block)
                        .at(loc.clone()),
                    );
                }
            }
        }
        if f.under_outer {
            // Partial structure under a shared outer loop: entries must
            // still name valid, distinct dimensions.
            let mut seen = vec![false; rank];
            let partial_ok = f.nest.structure.iter().all(|&e| {
                let d = e.unsigned_abs() as usize;
                let ok = e != 0 && d <= rank && !seen[d - 1];
                if ok {
                    seen[d - 1] = true;
                }
                ok
            });
            if !partial_ok {
                diags.push(
                    Diagnostic::error(
                        Stage::VerifyStructure,
                        format!(
                            "partial structure {:?} under a shared outer loop names invalid \
                             or repeated dimensions of rank-{rank} region `{}`",
                            f.nest.structure,
                            program.region(f.nest.region).name
                        ),
                    )
                    .in_block(f.block)
                    .at(loc.clone()),
                );
            }
            continue;
        }
        if !is_valid_structure(&f.nest.structure, rank) {
            diags.push(
                Diagnostic::error(
                    Stage::VerifyStructure,
                    format!(
                        "structure {:?} is not a signed permutation of 1..={rank} for region \
                         `{}`",
                        f.nest.structure,
                        program.region(f.nest.region).name
                    ),
                )
                .in_block(f.block)
                .at(loc),
            );
            continue;
        }
        if !region_ok {
            continue; // UDV ranks cannot be trusted against this nest
        }
        // Definition 4: every intra-cluster dependence, constrained by the
        // chosen structure, must be lexicographically non-negative.
        let in_cluster = |s: usize| part.cluster_of(s) == f.nest.cluster;
        for e in &detail.asdg.edges {
            if !(in_cluster(e.src) && in_cluster(e.dst)) {
                continue;
            }
            for l in &e.labels {
                let (VarLabel::Array(_), Some(u)) = (&l.var, &l.udv) else {
                    continue;
                };
                if u.rank() == rank && !u.preserved_by(&f.nest.structure) {
                    diags.push(
                        Diagnostic::error(
                            Stage::VerifyStructure,
                            format!(
                                "{} dependence {} -> {} with UDV {u} is violated by loop \
                                 structure {:?}: the constrained distance vector {:?} is \
                                 lexicographically negative",
                                l.kind,
                                e.src,
                                e.dst,
                                f.nest.structure,
                                u.constrain(&f.nest.structure)
                            ),
                        )
                        .in_block(f.block)
                        .at(loc.clone()),
                    );
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Level, Pipeline};

    const P: &str = "program p; config n : int = 8; region R = [1..n, 1..n]; \
                     direction w = [0, -1]; var A, B, C : [R] float; var s : float; ";

    fn optimize(src: &str, level: Level) -> Optimized {
        Pipeline::new(level).optimize(&zlang::compile(src).unwrap())
    }

    #[test]
    fn reversal_structure_passes() {
        // Fragment (7): fusing forces p = (1, -2); the checker must accept.
        let opt = optimize(
            &format!("{P} begin [R] B := A + C@w; [R] C := B; end"),
            Level::C2,
        );
        let diags = check(&opt);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn corrupt_structure_is_reported() {
        let mut opt = optimize(
            &format!("{P} begin [R] B := A + C@w; [R] C := B; end"),
            Level::C2,
        );
        // Overwrite the (reversed) structure with the identity, which
        // violates the anti dependence u = (0,-1).
        fn first_nest(stmts: &mut [LStmt]) -> Option<&mut LoopNest> {
            for s in stmts {
                if let LStmt::Nest(n) = s {
                    return Some(n);
                }
            }
            None
        }
        let nest = first_nest(&mut opt.scalarized.stmts).unwrap();
        assert_eq!(nest.structure, vec![1, -2]);
        nest.structure = vec![1, 2];
        let diags = check(&opt);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("lexicographically negative")),
            "{diags:?}"
        );
    }

    #[test]
    fn malformed_structure_vector_is_reported() {
        let mut opt = optimize(&format!("{P} begin [R] B := A + A; end"), Level::Baseline);
        let LStmt::Nest(n) = &mut opt.scalarized.stmts[0] else {
            panic!()
        };
        n.structure = vec![1, 1];
        let diags = check(&opt);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("signed permutation")),
            "{diags:?}"
        );
    }

    #[test]
    fn loops_and_ifs_align() {
        let src = format!(
            "{P} var k : int; begin [R] A := 1.0; for k := 1 to 2 do [R] B := A + B@w; \
             if s > 0.0 then [R] C := B; end; end; s := +<< [R] C; end"
        );
        let opt = optimize(&src, Level::C2F3);
        let diags = check(&opt);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
