//! Translation validation for the optimization pipeline.
//!
//! Every pass in [`crate::pipeline`] *relies* on the paper's legality
//! conditions but, before this module existed, nothing *re-checked* them:
//! a bug in [`crate::fusion`] or [`crate::loopstruct`] would silently
//! produce wrong answers. In the translation-validation tradition, this
//! module re-derives each stage's claim from scratch with an independent
//! (and deliberately simpler, brute-force where possible) algorithm and
//! diffs the result against what the pipeline produced:
//!
//! * `normal_form` — the normalized program is well formed (no statement
//!   reads and writes the same array; offset ranks match region ranks),
//!   per Section 2.1 of the paper.
//! * `asdg_check` — the array statement dependence graph is sound and
//!   complete: dependences are recomputed with a naive quadratic
//!   pair-scan (Definitions 2–3) and the edge sets diffed.
//! * `partition` — the fusion partition is legal per Definition 5:
//!   clusters are fusable, share one region, contain no fusion-preventing
//!   edges, admit *some* legal loop structure (found by exhaustive search
//!   over signed permutations, independent of the greedy search the
//!   pipeline uses), and the cluster graph is acyclic.
//! * `structure` — the loop structure chosen for every emitted nest
//!   makes each intra-cluster UDV lexicographically non-negative, per
//!   Definition 4.
//! * `contraction` — every contracted array satisfies Definition 6
//!   against the *final* partition.
//! * `rce2` — every rewrite recorded by the `+rce2` redundancy pass is
//!   value-preserving: offset algebra, region containment, and
//!   intervening-write freedom are re-derived from the final program.
//!
//! Checkers return structured [`Diagnostic`]s instead of panicking, so a
//! driver can render all of them (`zlc --verify`) and an embedder can
//! decide what to do with warnings. The whole layer is wired into
//! [`crate::pipeline::Pipeline`] behind a [`VerifyLevel`].
#![deny(missing_docs)]

use crate::normal::NormProgram;
use crate::pipeline::{BlockDetail, Optimized};
use loopir::ScalarProgram;
use std::fmt;
use std::str::FromStr;
use zlang::ir::Program;

mod asdg_check;
mod contraction;
mod normal_form;
mod partition;
mod rce2;
mod structure;

/// Which pipeline stage a diagnostic is about — the shared pass identity
/// from [`crate::pass::PassId`]. The verification stages
/// (`PassId::Verify*`) carry the paper definition they re-check via
/// [`crate::pass::PassId::definition`].
pub use crate::pass::PassId as Stage;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not known-unsound (e.g. a conservative extra edge).
    Warning,
    /// The checked property is violated; the output cannot be trusted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A structured finding from one of the checkers.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which checker produced this.
    pub stage: Stage,
    /// Error or warning.
    pub severity: Severity,
    /// The normalized-program block the finding is in, if block-local.
    pub block: Option<usize>,
    /// A free-form location inside the block (statement, edge, cluster…).
    pub location: Option<String>,
    /// What is wrong, in one sentence.
    pub message: String,
    /// Extra context lines (the violated definition is always appended
    /// when rendering).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(stage: Stage, message: impl Into<String>) -> Self {
        Diagnostic {
            stage,
            severity: Severity::Error,
            block: None,
            location: None,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Creates a warning-severity diagnostic.
    pub fn warning(stage: Stage, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(stage, message)
        }
    }

    /// Tags the diagnostic with the block it is about.
    pub fn in_block(mut self, block: usize) -> Self {
        self.block = Some(block);
        self
    }

    /// Tags the diagnostic with a location inside the block.
    pub fn at(mut self, location: impl Into<String>) -> Self {
        self.location = Some(location.into());
        self
    }

    /// Appends a note line.
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic rustc-style (multi-line, trailing newline),
    /// in the same format the `zlang` frontend uses for its errors.
    pub fn render(&self) -> String {
        let loc = match (self.block, &self.location) {
            (Some(b), Some(l)) => Some(format!("block {b}, {l}")),
            (Some(b), None) => Some(format!("block {b}")),
            (None, Some(l)) => Some(l.clone()),
            (None, None) => None,
        };
        let mut notes = self.notes.clone();
        if let Some(definition) = self.stage.definition() {
            notes.push(definition.to_string());
        }
        zlang::error::render_diagnostic(
            &self.severity.to_string(),
            self.stage.code(),
            &self.message,
            loc.as_deref(),
            &notes,
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.stage, self.message)?;
        match (self.block, &self.location) {
            (Some(b), Some(l)) => write!(f, " (block {b}, {l})"),
            (Some(b), None) => write!(f, " (block {b})"),
            (None, Some(l)) => write!(f, " ({l})"),
            (None, None) => Ok(()),
        }
    }
}

/// When the pipeline runs the translation validator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VerifyLevel {
    /// Never (the default; zero overhead).
    #[default]
    Off,
    /// Only when the cheap per-block partition check
    /// ([`crate::fusion::FusionCtx::validate`]) already failed — the full
    /// validator then localizes the damage.
    OnFailure,
    /// After every optimization run.
    Always,
}

impl VerifyLevel {
    /// The spelling accepted by [`FromStr`] and produced by [`fmt::Display`].
    pub fn name(self) -> &'static str {
        match self {
            VerifyLevel::Off => "off",
            VerifyLevel::OnFailure => "on-failure",
            VerifyLevel::Always => "always",
        }
    }
}

impl fmt::Display for VerifyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for VerifyLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(VerifyLevel::Off),
            "on-failure" => Ok(VerifyLevel::OnFailure),
            "always" => Ok(VerifyLevel::Always),
            other => Err(format!(
                "unknown verify level `{other}` (expected `off`, `on-failure`, or `always`)"
            )),
        }
    }
}

/// Runs every checker over an optimization result and returns all findings.
///
/// An empty vector means the pipeline's output passed translation
/// validation: the normal form is well formed, the recorded ASDGs match an
/// independent recomputation, the partitions and emitted loop structures
/// are legal, and every contraction is safe.
pub fn validate(opt: &Optimized) -> Vec<Diagnostic> {
    let mut diags = normal_form::check(&opt.norm);
    let candidates = crate::normal::contraction_candidates(&opt.norm);
    for (bi, (block, detail)) in opt.norm.blocks.iter().zip(&opt.details).enumerate() {
        let program = &opt.norm.program;
        diags.extend(asdg_check::check(program, block, bi, &detail.asdg));
        diags.extend(partition::check(
            program,
            block,
            bi,
            &detail.asdg,
            &detail.partition,
        ));
        diags.extend(contraction::check(
            program,
            bi,
            &detail.asdg,
            &detail.partition,
            &detail.contracted,
            &candidates,
        ));
    }
    diags.extend(structure::check(opt));
    if let Some(info) = &opt.rce2 {
        diags.extend(rce2::check(&opt.norm, info));
    }
    diags
}

// Crate-internal entry points for the scheduled verification passes
// ([`crate::pass`]), one per checker. `validate` above remains the
// public whole-result wrapper.

/// Normal-form re-check (Section 2.1) for the pass manager.
pub(crate) fn check_normal_form(np: &NormProgram) -> Vec<Diagnostic> {
    normal_form::check(np)
}

/// ASDG re-check (Definitions 2-3) for one block, for the pass manager.
pub(crate) fn check_asdg(
    program: &Program,
    block: &crate::normal::Block,
    bi: usize,
    g: &crate::asdg::Asdg,
) -> Vec<Diagnostic> {
    asdg_check::check(program, block, bi, g)
}

/// Partition-legality re-check (Definition 5) for one block, for the
/// pass manager.
pub(crate) fn check_partition(
    program: &Program,
    block: &crate::normal::Block,
    bi: usize,
    g: &crate::asdg::Asdg,
    part: &crate::fusion::Partition,
) -> Vec<Diagnostic> {
    partition::check(program, block, bi, g, part)
}

/// Contraction-safety re-check (Definition 6) for one block, for the
/// pass manager.
pub(crate) fn check_contraction(
    program: &Program,
    bi: usize,
    g: &crate::asdg::Asdg,
    part: &crate::fusion::Partition,
    contracted: &[crate::asdg::DefId],
    candidates: &[Option<usize>],
) -> Vec<Diagnostic> {
    contraction::check(program, bi, g, part, contracted, candidates)
}

/// Re-checks every `+rce2` rewrite, temporary, and hoist against the
/// final normalized program: the shifted read at each recorded site must
/// provably compute the expression it replaced (offset algebra + region
/// containment + no intervening writes). Public so harnesses can feed it
/// tampered records and prove the checker rejects them.
pub fn check_rce2(np: &NormProgram, info: &crate::rce2::Rce2Info) -> Vec<Diagnostic> {
    rce2::check(np, info)
}

/// Loop-structure re-check (Definition 4) over the scalarized program,
/// for the pass manager.
pub(crate) fn check_structure(
    norm: &NormProgram,
    scalarized: &ScalarProgram,
    details: &[BlockDetail],
) -> Vec<Diagnostic> {
    structure::check_parts(norm, scalarized, details)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_level_parses_and_displays() {
        for lv in [
            VerifyLevel::Off,
            VerifyLevel::OnFailure,
            VerifyLevel::Always,
        ] {
            assert_eq!(lv.name().parse::<VerifyLevel>().unwrap(), lv);
            assert_eq!(lv.to_string(), lv.name());
        }
        assert!("sometimes".parse::<VerifyLevel>().is_err());
    }

    #[test]
    fn diagnostic_renders_rustc_style() {
        let d = Diagnostic::error(Stage::VerifyPartition, "cluster 1 spans two regions")
            .in_block(0)
            .at("cluster 1 (statements 0, 2)")
            .note("regions `R` and `S` have different shapes");
        let r = d.render();
        assert!(r.starts_with("error[verify::partition]: cluster 1 spans two regions\n"));
        assert!(r.contains("  --> block 0, cluster 1 (statements 0, 2)\n"));
        assert!(r.contains("  = note: regions `R` and `S` have different shapes\n"));
        assert!(r.contains("Definition 5"));
        assert!(d.to_string().contains("(block 0, cluster 1"));
    }
}
