//! Contraction safety (Definition 6), re-checked against the *final*
//! partition.
//!
//! The pipeline decides contractibility during fusion, when the partition
//! is still evolving. This checker re-derives the conditions after the
//! fact, for each definition the pipeline actually contracted:
//!
//! * the definition is created by a statement in this block (the live-in
//!   range of an array can never contract — its values exist before the
//!   block);
//! * the array is a contraction *candidate* here (all of its references
//!   are confined to this block and the first one is a write), per
//!   [`crate::normal::contraction_candidates`];
//! * every statement referencing the definition landed in one cluster;
//! * every flow dependence due to the definition has a null UDV — inside
//!   one fused iteration, the value is produced and consumed at the same
//!   point, so a scalar can replace the array element.

use super::{Diagnostic, Stage};
use crate::asdg::{Asdg, DefId};
use crate::depvec::DepKind;
use crate::fusion::Partition;
use zlang::ir::Program;

pub(crate) fn check(
    program: &Program,
    bi: usize,
    g: &Asdg,
    part: &Partition,
    contracted: &[DefId],
    candidates: &[Option<usize>],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for &x in contracted {
        if x.0 as usize >= g.defs.len() {
            diags.push(
                Diagnostic::error(
                    Stage::VerifyContraction,
                    format!("contracted definition #{} does not exist in the graph", x.0),
                )
                .in_block(bi),
            );
            continue;
        }
        let info = g.def(x);
        let name = &program.array(info.array).name;
        let loc = format!("definition #{} of `{name}`", x.0);
        if info.def_stmt.is_none() {
            diags.push(
                Diagnostic::error(
                    Stage::VerifyContraction,
                    format!(
                        "live-in range of `{name}` was contracted — its values exist before \
                         the block and cannot live in a loop-local scalar"
                    ),
                )
                .in_block(bi)
                .at(loc.clone()),
            );
            continue;
        }
        match candidates.get(info.array.0 as usize) {
            Some(Some(b)) if *b == bi => {}
            _ => {
                diags.push(
                    Diagnostic::error(
                        Stage::VerifyContraction,
                        format!(
                            "`{name}` is not a contraction candidate in this block — it is \
                             referenced elsewhere or read before being written"
                        ),
                    )
                    .in_block(bi)
                    .at(loc.clone()),
                );
            }
        }
        let clusters: std::collections::BTreeSet<usize> = g
            .stmts_of_def(x)
            .iter()
            .map(|&s| part.cluster_of(s))
            .collect();
        if clusters.len() > 1 {
            diags.push(
                Diagnostic::error(
                    Stage::VerifyContraction,
                    format!(
                        "references to contracted `{name}` are spread over clusters \
                         {clusters:?} — Definition 6 requires them in one fused nest"
                    ),
                )
                .in_block(bi)
                .at(loc.clone()),
            );
        }
        for (src, dst, l) in g.labels_of_def(x) {
            if l.kind != DepKind::Flow {
                continue;
            }
            let null = matches!(&l.udv, Some(u) if u.is_null());
            if !null {
                diags.push(
                    Diagnostic::error(
                        Stage::VerifyContraction,
                        format!(
                            "flow dependence {src} -> {dst} on contracted `{name}` has UDV \
                             {} — a non-null flow means the consumer needs a value from a \
                             different iteration than the producer's",
                            l.udv.as_ref().map_or("-".to_string(), |u| u.to_string())
                        ),
                    )
                    .in_block(bi)
                    .at(loc.clone()),
                );
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asdg::build;
    use crate::normal::{contraction_candidates, normalize};
    use std::collections::BTreeSet;

    const P: &str = "program p; config n : int = 8; region R = [1..n, 1..n]; \
                     direction w = [0, -1]; var A, B, C : [R] float; var s : float; ";

    fn setup(src: &str) -> (crate::normal::NormProgram, Asdg, Vec<Option<usize>>) {
        let np = normalize(&zlang::compile(src).unwrap());
        assert_eq!(np.blocks.len(), 1);
        let g = build(&np.program, &np.blocks[0]);
        let cand = contraction_candidates(&np);
        (np, g, cand)
    }

    #[test]
    fn fused_null_flow_contraction_is_clean() {
        let (np, g, cand) = setup(&format!(
            "{P} begin [R] B := A + A; [R] C := B; s := +<< [R] C; end"
        ));
        let names = np.program.array_names();
        let b_def = g.defs_of(names["B"])[0];
        let mut part = Partition::trivial(g.n);
        part.merge(&BTreeSet::from([0, 1, 2]));
        let diags = check(&np.program, 0, &g, &part, &[b_def], &cand);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unfused_contraction_is_reported() {
        let (np, g, cand) = setup(&format!(
            "{P} begin [R] B := A + A; [R] C := B; s := +<< [R] C; end"
        ));
        let names = np.program.array_names();
        let b_def = g.defs_of(names["B"])[0];
        let part = Partition::trivial(g.n); // producer and consumer apart
        let diags = check(&np.program, 0, &g, &part, &[b_def], &cand);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("spread over clusters")),
            "{diags:?}"
        );
    }

    #[test]
    fn nonnull_flow_contraction_is_reported() {
        let (np, g, cand) = setup(&format!(
            "{P} begin [R] C := A; [R] B := C@w; s := +<< [R] B; end"
        ));
        let names = np.program.array_names();
        let c_def = g.defs_of(names["C"])[0];
        let mut part = Partition::trivial(g.n);
        part.merge(&BTreeSet::from([0, 1]));
        let diags = check(&np.program, 0, &g, &part, &[c_def], &cand);
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("flow dependence") && d.message.contains("non-null")),
            "{diags:?}"
        );
    }
}
