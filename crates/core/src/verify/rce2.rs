//! Independent re-check of `+rce2` rewrites (stage `verify::rce2`).
//!
//! [`crate::rce2`] records every change it makes — subexpression
//! rewrites, materialization temporaries, loop-invariant hoists — and
//! this module re-derives each one's legality from the *final* program,
//! sharing no code with the transform beyond the offset algebra in
//! [`crate::avail`]. A rewrite record claims that the shifted read now
//! at its site computes, bit for bit, the expression it replaced; the
//! checker proves it by
//!
//! 1. confirming the recorded read is really at the recorded site;
//! 2. resolving the provider's defining statement by a backward
//!    last-write scan, chasing bare-read copy statements and
//!    accumulating their shifts (`A := B@d` means `A[p] = B[p+d]`, so a
//!    use `A@a` becomes `B@(a+d)`), with a region-containment check at
//!    every hop so no stale halo value is laundered through a copy;
//! 3. comparing `shift(def_rhs, acc)` structurally against the replaced
//!    expression (identical f64 expression trees ⇒ identical bits),
//!    rejecting any accumulated shift of an `index`-bearing RHS;
//! 4. scanning the statements between the final definition and the use
//!    for writes to anything the definition read (a clobber would make
//!    the stored value differ from re-evaluation at the use point).
//!
//! Hoist records are checked against the loop they left: constant trip
//! count ≥ 1, the moved statement's target and inputs unwritten under
//! the loop and between the landing site and the loop header, and no
//! read of the target earlier in the iteration than its original
//! position (such a read would have observed the pre-loop value on the
//! first trip).

use super::{Diagnostic, Stage};
use crate::avail::{
    contains_index, reads_array, reads_scalar, region_contains_shifted, shift_reads, written_under,
};
use crate::normal::{BStmt, NStmt, NormProgram};
use crate::rce2::{Rce2Hoist, Rce2Info, Rce2Rewrite};
use zlang::ir::{ArrayExpr, ArrayId, ScalarExpr, ScalarId};

const STAGE: Stage = Stage::VerifyRce2;

/// Re-checks every recorded `+rce2` change against the final program.
pub(crate) fn check(np: &NormProgram, info: &Rce2Info) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, r) in info.rewrites.iter().enumerate() {
        check_rewrite(np, i, r, &mut diags);
    }
    for (i, t) in info.temps.iter().enumerate() {
        check_temp(np, i, t, &mut diags);
    }
    for (i, h) in info.hoists.iter().enumerate() {
        check_hoist(np, info, i, h, &mut diags);
    }
    diags
}

fn rhs_and_region(stmt: &BStmt) -> Option<(&ArrayExpr, zlang::ir::RegionId)> {
    match stmt {
        BStmt::Array(st) => Some((&st.rhs, st.region)),
        BStmt::Reduce { region, arg, .. } => Some((arg, *region)),
        BStmt::Scalar { .. } => None,
    }
}

/// All read offsets in `e` have rank `rank` (a precondition for shifting
/// by a rank-`rank` delta).
fn uniform_rank(e: &ArrayExpr, rank: usize) -> bool {
    let mut ok = true;
    e.for_each_read(&mut |_, o| ok &= o.0.len() == rank);
    ok
}

fn check_rewrite(np: &NormProgram, i: usize, r: &Rce2Rewrite, diags: &mut Vec<Diagnostic>) {
    let site = format!(
        "rce2 rewrite #{i} at block {}, statement {}",
        r.block, r.stmt
    );
    let err = |diags: &mut Vec<Diagnostic>, msg: String| {
        diags.push(
            Diagnostic::error(STAGE, msg)
                .in_block(r.block)
                .at(site.clone()),
        );
    };
    let Some(stmt) = np.blocks.get(r.block).and_then(|b| b.stmts.get(r.stmt)) else {
        return err(diags, "recorded statement does not exist".into());
    };
    let Some((rhs, use_region)) = rhs_and_region(stmt) else {
        return err(diags, "recorded statement has no array-valued RHS".into());
    };
    // (1) The recorded read really is at the recorded site.
    match crate::avail::node_at(rhs, &r.path) {
        Some(ArrayExpr::Read(a, o)) if *a == r.provider && o.0 == r.delta => {}
        other => {
            return err(
                diags,
                format!(
                    "site does not hold the recorded read {}@{:?} (found {})",
                    np.program.array(r.provider).name,
                    r.delta,
                    match other {
                        Some(e) => zlang::pretty::array_expr(&np.program, e),
                        None => "an invalid path".into(),
                    }
                ),
            );
        }
    }
    let rank = r.delta.len();
    if np.program.region(use_region).rank() != rank {
        return err(
            diags,
            "shift rank does not match the statement's region".into(),
        );
    }
    // (2) Resolve the provider through copy statements, accumulating
    // shifts, one region-containment proof per hop.
    let stmts = &np.blocks[r.block].stmts;
    let mut provider = r.provider;
    let mut acc = r.delta.clone();
    let mut at = r.stmt; // provider value is consumed here
    let (final_def, def_rhs) = loop {
        let Some(def) = stmts[..at]
            .iter()
            .rposition(|s| s.lhs_array() == Some(provider))
        else {
            return err(
                diags,
                format!(
                    "no defining statement for provider {} before the use",
                    np.program.array(provider).name
                ),
            );
        };
        let BStmt::Array(st) = &stmts[def] else {
            unreachable!("lhs_array is Some only for array statements")
        };
        if np.program.region(st.region).rank() != rank {
            return err(diags, "provider definition has a different rank".into());
        }
        if !region_contains_shifted(&np.program, st.region, use_region, &acc) {
            return err(
                diags,
                format!(
                    "use region shifted by {acc:?} is not provably inside the region of {}'s definition",
                    np.program.array(provider).name
                ),
            );
        }
        if let ArrayExpr::Read(b, d) = &st.rhs {
            if d.0.len() != rank {
                return err(diags, "copy statement has a different rank".into());
            }
            for (a, x) in acc.iter_mut().zip(&d.0) {
                *a += x;
            }
            provider = *b;
            at = def;
        } else {
            break (def, &st.rhs);
        }
    };
    // (3) Offset algebra: the definition's RHS, shifted by the
    // accumulated offset, must be structurally identical to the
    // replaced expression.
    if contains_index(def_rhs) && acc.iter().any(|&d| d != 0) {
        return err(
            diags,
            format!("definition contains `index`, which a shift by {acc:?} cannot preserve"),
        );
    }
    if !uniform_rank(def_rhs, rank) {
        return err(diags, "definition reads arrays of a different rank".into());
    }
    if shift_reads(def_rhs, &acc) != r.replaced {
        return err(
            diags,
            format!(
                "shifted definition ({}) does not equal the replaced expression ({})",
                zlang::pretty::array_expr(&np.program, &shift_reads(def_rhs, &acc)),
                zlang::pretty::array_expr(&np.program, &r.replaced),
            ),
        );
    }
    // (4) No intervening write may clobber anything the definition read:
    // the stored value must equal re-evaluation at the use point.
    for (k, s) in stmts.iter().enumerate().take(r.stmt).skip(final_def + 1) {
        if let Some(a) = s.lhs_array() {
            if reads_array(def_rhs, a) {
                return err(
                    diags,
                    format!(
                        "statement {k} overwrites {}, which the definition reads",
                        np.program.array(a).name
                    ),
                );
            }
        }
        if let Some(sc) = s.lhs_scalar() {
            if reads_scalar(def_rhs, sc) {
                return err(
                    diags,
                    format!(
                        "statement {k} overwrites scalar {}, which the definition reads",
                        np.program.scalar(sc).name
                    ),
                );
            }
        }
    }
}

fn check_temp(np: &NormProgram, i: usize, t: &crate::rce2::Rce2Temp, diags: &mut Vec<Diagnostic>) {
    let site = format!("rce2 temp #{i} at block {}, statement {}", t.block, t.stmt);
    let err = |diags: &mut Vec<Diagnostic>, msg: String| {
        diags.push(
            Diagnostic::error(STAGE, msg)
                .in_block(t.block)
                .at(site.clone()),
        );
    };
    match np.blocks.get(t.block).and_then(|b| b.stmts.get(t.stmt)) {
        Some(BStmt::Array(st)) if st.lhs == t.array => {
            if st.region != np.program.array(t.array).region {
                err(
                    diags,
                    "temporary is not defined over its declared region".into(),
                );
            }
        }
        _ => {
            return err(
                diags,
                "recorded statement does not define the temporary".into(),
            )
        }
    }
    if !np.program.array(t.array).compiler_temp {
        err(diags, "materialization target is a user array".into());
    }
    let writes = np
        .blocks
        .iter()
        .flat_map(|b| &b.stmts)
        .filter(|s| s.lhs_array() == Some(t.array))
        .count();
    if writes != 1 {
        err(
            diags,
            format!("temporary is written {writes} times (expected exactly once)"),
        );
    }
}

/// The constant trip count of a loop, if its bounds are constants.
fn const_trips(lo: &ScalarExpr, hi: &ScalarExpr, down: bool) -> Option<i64> {
    match (lo, hi) {
        (ScalarExpr::Const(l), ScalarExpr::Const(h)) => {
            let t = if down { l - h } else { h - l } + 1.0;
            (t.fract() == 0.0).then_some(t as i64)
        }
        _ => None,
    }
}

/// Locates the skeleton list containing `NStmt::Block(block)` and the
/// position of that entry.
fn find_block_entry(body: &[NStmt], block: usize) -> Option<(&[NStmt], usize)> {
    for (i, n) in body.iter().enumerate() {
        match n {
            NStmt::Block(b) if *b == block => return Some((body, i)),
            NStmt::For { body: fb, .. } => {
                if let Some(hit) = find_block_entry(fb, block) {
                    return Some(hit);
                }
            }
            NStmt::If {
                then_body,
                else_body,
                ..
            } => {
                if let Some(hit) = find_block_entry(then_body, block)
                    .or_else(|| find_block_entry(else_body, block))
                {
                    return Some(hit);
                }
            }
            _ => {}
        }
    }
    None
}

fn subtree_has_block(body: &[NStmt], block: usize) -> bool {
    body.iter().any(|n| match n {
        NStmt::Block(b) => *b == block,
        NStmt::For { body, .. } => subtree_has_block(body, block),
        NStmt::If {
            then_body,
            else_body,
            ..
        } => subtree_has_block(then_body, block) || subtree_has_block(else_body, block),
    })
}

/// Preorder block order of a skeleton subtree.
fn preorder_blocks(body: &[NStmt], out: &mut Vec<usize>) {
    for n in body {
        match n {
            NStmt::Block(b) => out.push(*b),
            NStmt::For { body, .. } => preorder_blocks(body, out),
            NStmt::If {
                then_body,
                else_body,
                ..
            } => {
                preorder_blocks(then_body, out);
                preorder_blocks(else_body, out);
            }
        }
    }
}

fn check_hoist(
    np: &NormProgram,
    info: &Rce2Info,
    i: usize,
    h: &Rce2Hoist,
    diags: &mut Vec<Diagnostic>,
) {
    let site = format!(
        "rce2 hoist #{i} of {} to block {}, statement {}",
        np.program.array(h.array).name,
        h.landing_block,
        h.landing_stmt
    );
    let err = |diags: &mut Vec<Diagnostic>, msg: String| {
        diags.push(
            Diagnostic::error(STAGE, msg)
                .in_block(h.landing_block)
                .at(site.clone()),
        );
    };
    let Some(stmt) = np
        .blocks
        .get(h.landing_block)
        .and_then(|b| b.stmts.get(h.landing_stmt))
    else {
        return err(diags, "landing statement does not exist".into());
    };
    let BStmt::Array(landed) = stmt else {
        return err(diags, "landing statement is not an array statement".into());
    };
    if landed.lhs != h.array {
        return err(diags, "landing statement writes a different array".into());
    }
    // Locate the loop the statement came from: the landing block's entry
    // must be followed (in the same skeleton list) by a `for` whose
    // subtree holds the original block.
    let Some((list, at)) = find_block_entry(&np.body, h.landing_block) else {
        return err(diags, "landing block is not in the program skeleton".into());
    };
    let Some(fi) = list[at + 1..].iter().position(|n| match n {
        NStmt::For { body, .. } => subtree_has_block(body, h.orig_block),
        _ => false,
    }) else {
        return err(
            diags,
            "no loop containing the original block follows the landing block".into(),
        );
    };
    let fi = at + 1 + fi;
    let NStmt::For {
        lo,
        hi,
        down,
        body: fbody,
        ..
    } = &list[fi]
    else {
        unreachable!("position matched a for node")
    };
    match const_trips(lo, hi, *down) {
        Some(t) if t >= 1 => {}
        _ => {
            return err(
                diags,
                "loop trip count is not provably at least 1, so the hoisted write may be spurious"
                    .into(),
            );
        }
    }
    if h.orig_index > np.blocks[h.orig_block].stmts.len() {
        return err(diags, "original statement position is out of range".into());
    }
    // Everything the statement depends on — and the written array itself
    // — must be untouched both under the loop and between the landing
    // site and the loop header.
    let mut warr: Vec<ArrayId> = Vec::new();
    let mut wsc: Vec<ScalarId> = Vec::new();
    written_under(&np.blocks, fbody, &mut warr, &mut wsc);
    for s in &np.blocks[h.landing_block].stmts[h.landing_stmt + 1..] {
        if let Some(a) = s.lhs_array() {
            warr.push(a);
        }
        if let Some(sc) = s.lhs_scalar() {
            wsc.push(sc);
        }
    }
    written_under(&np.blocks, &list[at + 1..fi], &mut warr, &mut wsc);
    if warr.contains(&h.array) {
        return err(
            diags,
            "the hoisted array is written again before or inside the loop".into(),
        );
    }
    for (a, _) in landed.rhs.reads() {
        if warr.contains(&a) {
            return err(
                diags,
                format!(
                    "input {} is written before or inside the loop, so the value is not invariant",
                    np.program.array(a).name
                ),
            );
        }
    }
    for sc in stmt.scalar_reads() {
        if wsc.contains(&sc) {
            return err(
                diags,
                format!(
                    "input scalar {} is written before or inside the loop",
                    np.program.scalar(sc).name
                ),
            );
        }
    }
    // On the first trip, nothing may read the array before the point the
    // statement was removed from — such a read observed the pre-loop
    // value in the original program but sees the hoisted value now.
    let mut order = Vec::new();
    preorder_blocks(fbody, &mut order);
    for &b in &order {
        let upto = if b == h.orig_block {
            h.orig_index
        } else {
            np.blocks[b].stmts.len()
        };
        for (k, s) in np.blocks[b].stmts[..upto].iter().enumerate() {
            if s.reads().iter().any(|(a, _)| *a == h.array) {
                return err(
                    diags,
                    format!(
                        "block {b}, statement {k} reads {} earlier in the iteration than the original definition",
                        np.program.array(h.array).name
                    ),
                );
            }
        }
        if b == h.orig_block {
            break;
        }
    }
    // Reads between the landing site and the loop would likewise have
    // seen the pre-loop value — only statements placed there by other
    // recorded rce2 changes (whose own records justify them) may read it.
    let placed_by_rce2 = |block: usize, stmt: usize| {
        info.hoists
            .iter()
            .any(|o| o.landing_block == block && o.landing_stmt == stmt)
            || info
                .temps
                .iter()
                .any(|t| t.block == block && t.stmt == stmt)
    };
    for (k, s) in np.blocks[h.landing_block]
        .stmts
        .iter()
        .enumerate()
        .skip(h.landing_stmt + 1)
    {
        if s.reads().iter().any(|(a, _)| *a == h.array) && !placed_by_rce2(h.landing_block, k) {
            return err(
                diags,
                format!(
                    "statement {k} after the landing site reads {} before the loop",
                    np.program.array(h.array).name
                ),
            );
        }
    }
    let mut between = Vec::new();
    preorder_blocks(&list[at + 1..fi], &mut between);
    for b in between {
        for s in &np.blocks[b].stmts {
            if s.reads().iter().any(|(a, _)| *a == h.array) {
                return err(
                    diags,
                    format!(
                        "a statement between the landing site and the loop reads {}",
                        np.program.array(h.array).name
                    ),
                );
            }
        }
    }
}
