//! Checks that the normalizer's output is well formed (Section 2.1).
//!
//! A normalized array statement never reads the array it writes (the
//! normalizer must have split it through a compiler temporary), and every
//! reference's offset rank matches the rank of the region the statement
//! iterates over.

use super::{Diagnostic, Stage};
use crate::normal::NormProgram;

pub(crate) fn check(np: &NormProgram) -> Vec<Diagnostic> {
    let program = &np.program;
    let mut diags = Vec::new();
    for (bi, block) in np.blocks.iter().enumerate() {
        for (si, stmt) in block.stmts.iter().enumerate() {
            let Some(region) = stmt.region() else {
                continue; // scalar statements have no loops to check
            };
            let rank = program.region(region).rank();
            if let Some(lhs) = stmt.lhs_array() {
                if stmt.reads().iter().any(|(a, _)| *a == lhs) {
                    diags.push(
                        Diagnostic::error(
                            Stage::VerifyNormalForm,
                            format!(
                                "statement reads and writes `{}` — normalization must split \
                                 it through a compiler temporary",
                                program.array(lhs).name
                            ),
                        )
                        .in_block(bi)
                        .at(format!("statement {si}")),
                    );
                }
                let lhs_rank = program.region(program.array(lhs).region).rank();
                if lhs_rank != rank {
                    diags.push(
                        Diagnostic::error(
                            Stage::VerifyNormalForm,
                            format!(
                                "statement over rank-{rank} region `{}` writes rank-{lhs_rank} \
                                 array `{}`",
                                program.region(region).name,
                                program.array(lhs).name
                            ),
                        )
                        .in_block(bi)
                        .at(format!("statement {si}")),
                    );
                }
            }
            for (a, off) in stmt.reads() {
                if off.rank() != rank {
                    diags.push(
                        Diagnostic::error(
                            Stage::VerifyNormalForm,
                            format!(
                                "read of `{}` uses a rank-{} offset {off} in a statement over \
                                 rank-{rank} region `{}`",
                                program.array(a).name,
                                off.rank(),
                                program.region(region).name
                            ),
                        )
                        .in_block(bi)
                        .at(format!("statement {si}")),
                    );
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::{normalize, BStmt};
    use zlang::ir::{ArrayExpr, ArrayStmt, Offset};

    const P: &str = "program p; config n : int = 8; region R = [1..n, 1..n]; \
                     var A, B : [R] float; ";

    #[test]
    fn normalized_program_is_clean() {
        let np = normalize(&zlang::compile(&format!("{P} begin [R] A := A + A; end")).unwrap());
        assert!(check(&np).is_empty());
    }

    #[test]
    fn hand_built_read_write_conflict_is_reported() {
        let mut np = normalize(&zlang::compile(&format!("{P} begin [R] B := A; end")).unwrap());
        // Corrupt the block: make the statement read its own LHS.
        let names = np.program.array_names();
        np.blocks[0].stmts[0] = BStmt::Array(ArrayStmt {
            region: np.program.array(names["B"]).region,
            lhs: names["B"],
            rhs: ArrayExpr::Read(names["B"], Offset(vec![0, -1])),
        });
        let diags = check(&np);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("reads and writes"), "{diags:?}");
    }
}
