//! The `+rce2` transform: stencil-aware redundancy elimination driven by
//! the offset-lattice availability analysis ([`crate::avail`]).
//!
//! Three mechanisms, applied in this order:
//!
//! 1. **Loop-invariant hoisting** — a statement inside a counted loop
//!    whose inputs are never written anywhere in the loop recomputes the
//!    same plane every iteration; it moves to a block immediately before
//!    the loop (the degenerate "rotate zero planes" case of loop-carried
//!    redundancy: the previous time step's value *is* the current one).
//!    Only loops with constant bounds and a provable trip count ≥ 2 are
//!    touched, and only statements whose target is written exactly once
//!    in the loop and never read at an earlier point of the iteration
//!    (an earlier read would observe the pre-loop value on trip one).
//! 2. **Direct reuse** — inside each block, a forward sweep carries the
//!    [`AvailState`]; any compound subexpression equal to a live fact's
//!    canonical form (modulo a uniform shift δ, with the fact's region
//!    containing the use region shifted by δ) is replaced by
//!    `provider@δ`.
//! 3. **Materialization** — repeated shifted occurrences of the same
//!    canonical form with *no* provider (e.g. SP's flux differences
//!    `RHO@xp*US@xp − RHO@xm*US@xm`, where `RHO*US` recurs at two
//!    offsets inside one statement) are computed once into a fresh
//!    compiler temporary over the union region and every occurrence
//!    becomes a shifted read of it. Only profitable plans (strictly
//!    fewer flops under the session binding) are applied.
//!
//! Every change is recorded in an [`Rce2Info`] so the independent
//! re-checker ([`crate::verify`], stage `verify::rce2`) can re-derive
//! its legality from the *final* program: offset algebra, region
//! containment, and intervening-write freedom per rewrite; single-def,
//! invariant-input, and trip-count conditions per hoist.
//!
//! Statements serving as reuse providers are *locked*: later rounds must
//! not restructure their right-hand sides, or the recorded rewrites
//! would no longer re-check. (Whole-RHS rewrites into bare reads would
//! actually remain checkable — the validator chases copy chains — but
//! the lock keeps the invariant simple.)

use crate::avail::{
    canonicalize, compound_subexprs, region_contains_shifted, replace_at, shift_reads,
    written_under, AvailState, Fact,
};
use crate::normal::{BStmt, Block, NStmt, NormProgram};
use std::collections::{HashMap, HashSet};
use zlang::ir::{
    ArrayExpr, ArrayId, ArrayStmt, ConfigBinding, Extent, LinExpr, Offset, Program, RegionId,
    ScalarExpr, ScalarId,
};

/// Everything the `+rce2` pass did, for the independent re-checker and
/// the `--emit rce2` snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Rce2Info {
    /// Subexpression-to-shifted-read rewrites, in application order.
    pub rewrites: Vec<Rce2Rewrite>,
    /// Materialization temporaries inserted.
    pub temps: Vec<Rce2Temp>,
    /// Loop-invariant statements hoisted out of counted loops.
    pub hoists: Vec<Rce2Hoist>,
}

impl Rce2Info {
    /// Whether the pass did anything at all.
    pub fn is_empty(&self) -> bool {
        self.rewrites.is_empty() && self.temps.is_empty() && self.hoists.is_empty()
    }
}

/// One subexpression rewritten into a shifted read of a provider.
#[derive(Debug, Clone, PartialEq)]
pub struct Rce2Rewrite {
    /// Block of the rewritten statement (final indices).
    pub block: usize,
    /// Statement index within the block (final indices).
    pub stmt: usize,
    /// Child-index path from the RHS root to the rewritten node.
    pub path: Vec<u32>,
    /// The array now read at the site.
    pub provider: ArrayId,
    /// The shift of the read.
    pub delta: Vec<i64>,
    /// The subexpression the read replaced (the re-checker proves it
    /// equals `provider@delta` element-wise).
    pub replaced: ArrayExpr,
}

/// One materialization temporary: `[R] _tN := canon@base` inserted
/// before the first occurrence it serves.
#[derive(Debug, Clone, PartialEq)]
pub struct Rce2Temp {
    /// Block the temporary's defining statement is in.
    pub block: usize,
    /// Its statement index (final indices).
    pub stmt: usize,
    /// The temporary array.
    pub array: ArrayId,
}

/// One loop-invariant statement moved out of a counted loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Rce2Hoist {
    /// Block the statement landed in (immediately before the loop).
    pub landing_block: usize,
    /// Its statement index there (final indices).
    pub landing_stmt: usize,
    /// The array the statement writes.
    pub array: ArrayId,
    /// The loop-body block it was removed from.
    pub orig_block: usize,
    /// The index it held there (in the block's final statement order:
    /// earlier statements are unchanged by the removal).
    pub orig_index: usize,
}

/// Bounded safety net around the flop-monotone round loop (every applied
/// change strictly reduces the block's RHS flop count, so termination is
/// guaranteed anyway).
const MAX_ROUNDS: usize = 32;

/// Runs the whole transform over a normalized program. The binding is
/// only consulted for materialization *profitability* — every rewrite is
/// legal under any binding.
pub(crate) fn run(np: &mut NormProgram, binding: &ConfigBinding) -> (bool, Rce2Info) {
    let mut info = Rce2Info::default();
    let mut changed = false;
    while try_hoist(&mut np.blocks, &mut np.body, &mut info) {
        changed = true;
    }
    for bi in 0..np.blocks.len() {
        changed |= cse_block(np, binding, bi, &mut info);
    }
    (changed, info)
}

// ---------------------------------------------------------------------------
// Phase 1: loop-invariant hoisting
// ---------------------------------------------------------------------------

/// Constant trip count of a counted loop, or 0 if the bounds are not
/// both constants.
fn const_trips(lo: &ScalarExpr, hi: &ScalarExpr, down: bool) -> i64 {
    let (ScalarExpr::Const(l), ScalarExpr::Const(h)) = (lo, hi) else {
        return 0;
    };
    let trips = if down { l - h } else { h - l } + 1.0;
    if trips >= 1.0 && trips.fract() == 0.0 {
        trips as i64
    } else {
        0
    }
}

/// Finds and applies one hoist anywhere under `body`, innermost loops
/// first. Returns whether anything moved (callers loop to fixpoint —
/// repeated application ladders an invariant statement out of a whole
/// loop nest one level at a time, each level independently re-checked).
fn try_hoist(blocks: &mut Vec<Block>, body: &mut Vec<NStmt>, info: &mut Rce2Info) -> bool {
    for i in 0..body.len() {
        let recursed = match &mut body[i] {
            NStmt::For { body: fb, .. } => try_hoist(blocks, fb, info),
            NStmt::If {
                then_body,
                else_body,
                ..
            } => try_hoist(blocks, then_body, info) || try_hoist(blocks, else_body, info),
            NStmt::Block(_) => false,
        };
        if recursed {
            return true;
        }
        let NStmt::For {
            lo,
            hi,
            down,
            body: fb,
            ..
        } = &body[i]
        else {
            continue;
        };
        if const_trips(lo, hi, *down) < 2 {
            continue;
        }
        let Some((b, j)) = find_hoist_candidate(blocks, fb) else {
            continue;
        };
        apply_hoist(blocks, body, i, b, j, info);
        return true;
    }
    false
}

/// A hoistable statement directly in a loop body: an array statement
/// whose inputs (arrays and scalars, including loop variables) are never
/// written anywhere in the loop, whose target is written exactly once in
/// the loop, and whose target is not read at any earlier point of the
/// iteration (trip one would otherwise observe the pre-loop value).
fn find_hoist_candidate(blocks: &[Block], fbody: &[NStmt]) -> Option<(usize, usize)> {
    let mut warr = Vec::new();
    let mut wsc = Vec::new();
    written_under(blocks, fbody, &mut warr, &mut wsc);
    let mut wcount: HashMap<ArrayId, usize> = HashMap::new();
    for &a in &warr {
        *wcount.entry(a).or_insert(0) += 1;
    }
    let warr_set: HashSet<ArrayId> = warr.into_iter().collect();
    let wsc_set: HashSet<ScalarId> = wsc.into_iter().collect();
    let direct: HashSet<usize> = fbody
        .iter()
        .filter_map(|n| match n {
            NStmt::Block(b) => Some(*b),
            _ => None,
        })
        .collect();

    fn preorder(body: &[NStmt], out: &mut Vec<usize>) {
        for n in body {
            match n {
                NStmt::Block(b) => out.push(*b),
                NStmt::For { body, .. } => preorder(body, out),
                NStmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    preorder(then_body, out);
                    preorder(else_body, out);
                }
            }
        }
    }
    let mut order = Vec::new();
    preorder(fbody, &mut order);

    let mut read_so_far: HashSet<ArrayId> = HashSet::new();
    for b in order {
        for (j, s) in blocks[b].stmts.iter().enumerate() {
            if direct.contains(&b) {
                if let BStmt::Array(st) = s {
                    let ok = wcount.get(&st.lhs) == Some(&1)
                        && !read_so_far.contains(&st.lhs)
                        && st.rhs.reads().iter().all(|(a, _)| !warr_set.contains(a))
                        && s.scalar_reads().iter().all(|sc| !wsc_set.contains(sc));
                    if ok {
                        return Some((b, j));
                    }
                }
            }
            for (a, _) in s.reads() {
                read_so_far.insert(a);
            }
        }
    }
    None
}

/// Moves `blocks[b].stmts[j]` to a block immediately before the loop at
/// `body[i]`, reusing a directly preceding block when one exists.
fn apply_hoist(
    blocks: &mut Vec<Block>,
    body: &mut Vec<NStmt>,
    i: usize,
    b: usize,
    j: usize,
    info: &mut Rce2Info,
) {
    let st = blocks[b].stmts.remove(j);
    let array = st
        .lhs_array()
        .expect("hoist candidates are array statements");
    // A previously hoisted statement may itself be moving further out
    // (laddering): its record must follow it to the new landing spot.
    let mut rehoisted = Vec::new();
    for (hi, h) in info.hoists.iter_mut().enumerate() {
        if h.orig_block == b && h.orig_index > j {
            h.orig_index -= 1;
        }
        if h.landing_block == b {
            if h.landing_stmt == j {
                rehoisted.push(hi);
            } else if h.landing_stmt > j {
                h.landing_stmt -= 1;
            }
        }
    }
    let (lb, ls) = match (i > 0).then(|| &body[i - 1]) {
        Some(NStmt::Block(lb)) => {
            let lb = *lb;
            blocks[lb].stmts.push(st);
            (lb, blocks[lb].stmts.len() - 1)
        }
        _ => {
            blocks.push(Block { stmts: vec![st] });
            let nb = blocks.len() - 1;
            body.insert(i, NStmt::Block(nb));
            (nb, 0)
        }
    };
    for hi in rehoisted {
        info.hoists[hi].landing_block = lb;
        info.hoists[hi].landing_stmt = ls;
    }
    info.hoists.push(Rce2Hoist {
        landing_block: lb,
        landing_stmt: ls,
        array,
        orig_block: b,
        orig_index: j,
    });
}

// ---------------------------------------------------------------------------
// Phase 2: per-block CSE (direct reuse + materialization)
// ---------------------------------------------------------------------------

fn cse_block(
    np: &mut NormProgram,
    binding: &ConfigBinding,
    bi: usize,
    info: &mut Rce2Info,
) -> bool {
    let mut locked: HashSet<usize> = HashSet::new();
    let mut changed = false;
    for _ in 0..MAX_ROUNDS {
        let a = direct_reuse_round(np, bi, info, &mut locked);
        let b = materialize_round(np, binding, bi, info, &mut locked);
        changed |= a | b;
        if !a && !b {
            break;
        }
    }
    changed
}

/// One planned direct-reuse rewrite.
struct Reuse {
    path: Vec<u32>,
    provider: ArrayId,
    provider_stmt: usize,
    delta: Vec<i64>,
    replaced: ArrayExpr,
}

fn rhs_of(stmt: &BStmt) -> Option<(&ArrayExpr, RegionId, Option<ArrayId>)> {
    match stmt {
        BStmt::Array(st) => Some((&st.rhs, st.region, Some(st.lhs))),
        BStmt::Reduce { region, arg, .. } => Some((arg, *region, None)),
        BStmt::Scalar { .. } => None,
    }
}

fn rhs_of_mut(stmt: &mut BStmt) -> Option<&mut ArrayExpr> {
    match stmt {
        BStmt::Array(st) => Some(&mut st.rhs),
        BStmt::Reduce { arg, .. } => Some(arg),
        BStmt::Scalar { .. } => None,
    }
}

/// Forward sweep: rewrite compound subexpressions against the live
/// availability facts. Outermost matches win (preorder), and each
/// statement is re-scanned after a rewrite so independent subtrees all
/// get their turn. Termination: every rewrite removes at least one flop.
fn direct_reuse_round(
    np: &mut NormProgram,
    bi: usize,
    info: &mut Rce2Info,
    locked: &mut HashSet<usize>,
) -> bool {
    let mut changed = false;
    let mut state = AvailState::default();
    for j in 0..np.blocks[bi].stmts.len() {
        if !locked.contains(&j) {
            loop {
                let found = find_reuse(&np.program, &np.blocks[bi].stmts[j], &state);
                let Some(r) = found else { break };
                let rhs = rhs_of_mut(&mut np.blocks[bi].stmts[j]).expect("matched a RHS");
                let ok = replace_at(
                    rhs,
                    &r.path,
                    ArrayExpr::Read(r.provider, Offset(r.delta.clone())),
                );
                debug_assert!(ok, "reuse path came from this RHS");
                drop_superseded(info, bi, j, &r.path);
                info.rewrites.push(Rce2Rewrite {
                    block: bi,
                    stmt: j,
                    path: r.path,
                    provider: r.provider,
                    delta: r.delta,
                    replaced: r.replaced,
                });
                lock_chain(&np.blocks[bi], r.provider_stmt, locked);
                changed = true;
            }
        }
        let s = &np.blocks[bi].stmts[j];
        crate::avail::transfer(&np.program, &mut state, s, bi, j);
    }
    changed
}

/// Locks a provider statement and, transitively, the copy chain the
/// re-checker will chase through it (each hop's defining statement must
/// keep its RHS shape).
fn lock_chain(block: &Block, start: usize, locked: &mut HashSet<usize>) {
    let mut idx = start;
    loop {
        if !locked.insert(idx) {
            return;
        }
        let Some(BStmt::Array(st)) = block.stmts.get(idx) else {
            return;
        };
        let ArrayExpr::Read(b, _) = &st.rhs else {
            return;
        };
        let Some(prev) = block.stmts[..idx]
            .iter()
            .rposition(|s| s.lhs_array() == Some(*b))
        else {
            return;
        };
        idx = prev;
    }
}

/// Drops earlier records that a new rewrite at `path` supersedes (their
/// recorded site no longer exists once an ancestor node is replaced).
fn drop_superseded(info: &mut Rce2Info, block: usize, stmt: usize, path: &[u32]) {
    info.rewrites.retain(|r| {
        !(r.block == block
            && r.stmt == stmt
            && r.path.len() >= path.len()
            && r.path[..path.len()] == *path)
    });
}

fn find_reuse(program: &Program, stmt: &BStmt, state: &AvailState) -> Option<Reuse> {
    let (rhs, region, lhs) = rhs_of(stmt)?;
    for sub in compound_subexprs(rhs) {
        let Some(c) = canonicalize(sub.expr) else {
            continue;
        };
        let mut best: Option<(&Fact, Vec<i64>)> = None;
        for f in &state.facts {
            if f.key != c.key || f.canon != c.expr || f.base.len() != c.base.len() {
                continue;
            }
            if Some(f.provider) == lhs {
                continue;
            }
            let delta: Vec<i64> = c.base.iter().zip(&f.base).map(|(x, y)| x - y).collect();
            if c.has_index && delta.iter().any(|&d| d != 0) {
                continue;
            }
            if !region_contains_shifted(program, f.region, region, &delta) {
                continue;
            }
            let score: i64 = delta.iter().map(|d| d.abs()).sum();
            let better = match &best {
                None => true,
                Some((bf, bd)) => {
                    let bscore: i64 = bd.iter().map(|d| d.abs()).sum();
                    score < bscore || (score == bscore && f.stmt > bf.stmt)
                }
            };
            if better {
                best = Some((f, delta));
            }
        }
        if let Some((f, delta)) = best {
            return Some(Reuse {
                path: sub.path,
                provider: f.provider,
                provider_stmt: f.stmt,
                delta,
                replaced: sub.expr.clone(),
            });
        }
    }
    None
}

/// One occurrence of a canonical form inside a statement's RHS.
struct Occ {
    stmt: usize,
    path: Vec<u32>,
    base: Vec<i64>,
    region: RegionId,
}

struct KeyOccs {
    canon: ArrayExpr,
    has_index: bool,
    groups: Vec<Vec<Occ>>,
}

/// `min`/`max` of two symbolic bounds, when comparable.
fn lin_min(a: &LinExpr, b: &LinExpr) -> Option<LinExpr> {
    (a.terms == b.terms).then(|| {
        if a.base <= b.base {
            a.clone()
        } else {
            b.clone()
        }
    })
}

fn lin_max(a: &LinExpr, b: &LinExpr) -> Option<LinExpr> {
    (a.terms == b.terms).then(|| {
        if a.base >= b.base {
            a.clone()
        } else {
            b.clone()
        }
    })
}

/// Collects repeated shifted occurrences of provider-less canonical
/// forms, picks the most profitable group, computes it once into a fresh
/// compiler temporary over the union region, and rewrites every
/// occurrence into a shifted read. One plan per call; the round loop
/// re-collects.
fn materialize_round(
    np: &mut NormProgram,
    binding: &ConfigBinding,
    bi: usize,
    info: &mut Rce2Info,
    locked: &mut HashSet<usize>,
) -> bool {
    // --- Collect occurrences, segmented at clobbers of their inputs. ---
    let mut map: HashMap<u64, KeyOccs> = HashMap::new();
    for (j, s) in np.blocks[bi].stmts.iter().enumerate() {
        if !locked.contains(&j) {
            if let Some((rhs, region, _)) = rhs_of(s) {
                let rank = np.program.region(region).rank();
                for sub in compound_subexprs(rhs) {
                    let Some(c) = canonicalize(sub.expr) else {
                        continue;
                    };
                    if c.base.len() != rank {
                        continue;
                    }
                    let entry = map.entry(c.key).or_insert_with(|| KeyOccs {
                        canon: c.expr.clone(),
                        has_index: c.has_index,
                        groups: vec![Vec::new()],
                    });
                    if entry.canon != c.expr {
                        continue; // digest collision: keep the first shape
                    }
                    entry.groups.last_mut().expect("never empty").push(Occ {
                        stmt: j,
                        path: sub.path,
                        base: c.base,
                        region,
                    });
                }
            }
        }
        if let Some(a) = s.lhs_array() {
            for ko in map.values_mut() {
                if crate::avail::reads_array(&ko.canon, a) {
                    ko.groups.push(Vec::new());
                }
            }
        }
        if let Some(sc) = s.lhs_scalar() {
            for ko in map.values_mut() {
                if crate::avail::reads_scalar(&ko.canon, sc) {
                    ko.groups.push(Vec::new());
                }
            }
        }
    }

    // --- Score candidate plans. ---
    struct Plan {
        canon: ArrayExpr,
        occs: Vec<Occ>,
        base: Vec<i64>,
        extents: Vec<Extent>,
        saved: i64,
    }
    let mut best: Option<Plan> = None;
    let mut keys: Vec<u64> = map.keys().copied().collect();
    keys.sort_unstable(); // deterministic plan choice across runs
    for key in keys {
        let ko = &map[&key];
        for group in &ko.groups {
            let occs: Vec<&Occ> = if ko.has_index {
                // `index` pins the value to the write point: only
                // occurrences at the *same* shift can share one temp.
                let Some(first) = group.first() else { continue };
                group.iter().filter(|o| o.base == first.base).collect()
            } else {
                group.iter().collect()
            };
            if occs.len() < 2 {
                continue;
            }
            let base = occs[0].base.clone();
            let rank = base.len();
            // Union region over all shifted occurrence regions.
            let mut extents: Vec<Extent> = np.program.region(occs[0].region).extents.clone();
            for (d, e) in extents.iter_mut().enumerate() {
                let delta0 = occs[0].base[d] - base[d];
                e.lo = e.lo.offset(delta0);
                e.hi = e.hi.offset(delta0);
            }
            let mut ok = true;
            for occ in &occs[1..] {
                let r = np.program.region(occ.region);
                for d in 0..rank {
                    let delta = occ.base[d] - base[d];
                    let lo = r.extents[d].lo.offset(delta);
                    let hi = r.extents[d].hi.offset(delta);
                    match (lin_min(&extents[d].lo, &lo), lin_max(&extents[d].hi, &hi)) {
                        (Some(l), Some(h)) => {
                            extents[d].lo = l;
                            extents[d].hi = h;
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    break;
                }
            }
            if !ok {
                continue;
            }
            // The temp's own reads must stay inside each source array's
            // declared region (they do whenever the occurrences' reads
            // did, but re-check rather than assume).
            let temp_rhs = shift_reads(&ko.canon, &base);
            let mut in_bounds = true;
            temp_rhs.for_each_read(&mut |a, off| {
                let decl = np.program.region(np.program.array(a).region);
                if decl.rank() != rank {
                    in_bounds = false;
                    return;
                }
                for (d, ext) in extents.iter().enumerate().take(rank) {
                    let lo = ext.lo.offset(off.0[d]);
                    let hi = ext.hi.offset(off.0[d]);
                    if !crate::avail::lin_le(&decl.extents[d].lo, &lo)
                        || !crate::avail::lin_le(&hi, &decl.extents[d].hi)
                    {
                        in_bounds = false;
                    }
                }
            });
            if !in_bounds {
                continue;
            }
            // Profitability under the session binding: evaluating the
            // form once over the union must beat evaluating it at every
            // occurrence.
            let flops = ko.canon.flops() as i64;
            let union_size: i64 = extents
                .iter()
                .map(|e| (e.hi.eval(binding) - e.lo.eval(binding) + 1).max(0))
                .product();
            let occ_size: i64 = occs
                .iter()
                .map(|o| np.program.region(o.region).size(binding) as i64)
                .sum();
            let saved = flops * (occ_size - union_size);
            if saved <= 0 {
                continue;
            }
            if best.as_ref().is_none_or(|b| saved > b.saved) {
                best = Some(Plan {
                    canon: ko.canon.clone(),
                    occs: occs
                        .into_iter()
                        .map(|o| Occ {
                            stmt: o.stmt,
                            path: o.path.clone(),
                            base: o.base.clone(),
                            region: o.region,
                        })
                        .collect(),
                    base,
                    extents,
                    saved,
                });
            }
        }
    }
    let Some(plan) = best else { return false };

    // --- Apply the winning plan. ---
    let rid = match np
        .program
        .regions
        .iter()
        .position(|r| r.extents == plan.extents)
    {
        Some(i) => RegionId(i as u32),
        None => {
            let id = RegionId(np.program.regions.len() as u32);
            let name = format!("_rce2r{}", id.0);
            np.program.names.register_region(&name, id);
            np.program.regions.push(zlang::ir::RegionDecl {
                name,
                extents: plan.extents.clone(),
            });
            id
        }
    };
    let temp = np.program.add_compiler_temp(rid);
    let insert_at = plan.occs[0].stmt;
    np.blocks[bi].stmts.insert(
        insert_at,
        BStmt::Array(ArrayStmt {
            region: rid,
            lhs: temp,
            rhs: shift_reads(&plan.canon, &plan.base),
        }),
    );
    // Shift every structure that tracks statement indices in this block.
    for r in &mut info.rewrites {
        if r.block == bi && r.stmt >= insert_at {
            r.stmt += 1;
        }
    }
    for t in &mut info.temps {
        if t.block == bi && t.stmt >= insert_at {
            t.stmt += 1;
        }
    }
    for h in &mut info.hoists {
        if h.orig_block == bi && h.orig_index >= insert_at {
            h.orig_index += 1;
        }
        if h.landing_block == bi && h.landing_stmt >= insert_at {
            h.landing_stmt += 1;
        }
    }
    *locked = locked
        .iter()
        .map(|&s| if s >= insert_at { s + 1 } else { s })
        .collect();
    locked.insert(insert_at);
    info.temps.push(Rce2Temp {
        block: bi,
        stmt: insert_at,
        array: temp,
    });
    for occ in &plan.occs {
        let stmt = occ.stmt + 1; // everything at/after insert_at shifted
        let delta: Vec<i64> = occ
            .base
            .iter()
            .zip(&plan.base)
            .map(|(x, y)| x - y)
            .collect();
        let rhs = rhs_of_mut(&mut np.blocks[bi].stmts[stmt]).expect("occurrences have an RHS");
        let ok = replace_at(rhs, &occ.path, ArrayExpr::Read(temp, Offset(delta.clone())));
        debug_assert!(ok, "occurrence path came from this RHS");
        drop_superseded(info, bi, stmt, &occ.path);
        info.rewrites.push(Rce2Rewrite {
            block: bi,
            stmt,
            path: occ.path.clone(),
            provider: temp,
            delta,
            replaced: shift_reads(&plan.canon, &occ.base),
        });
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use zlang::ir::ConfigBinding;

    fn norm(src: &str) -> NormProgram {
        crate::normal::normalize(&zlang::compile(src).unwrap())
    }

    #[test]
    fn flux_pair_is_materialized_once() {
        // RHO*US recurs at offsets [1,0] and [-1,0] inside one statement
        // (and again in a second statement): one temp should serve all
        // four occurrences.
        let np0 = norm(
            "program sp1; config n : int = 16; \
             region RH = [0..n+1, 0..n+1]; region R = [1..n, 1..n]; \
             var RHO, US : [RH] float; var F, G : [R] float; \
             begin \
               [R] F := RHO@[1,0] * US@[1,0] - RHO@[-1,0] * US@[-1,0]; \
               [R] G := RHO@[0,1] * US@[0,1] - RHO@[0,-1] * US@[0,-1]; \
             end",
        );
        let mut np = np0.clone();
        let binding = np.default_binding();
        let (changed, rce2) = run(&mut np, &binding);
        assert!(changed);
        assert_eq!(rce2.temps.len(), 1, "{rce2:?}");
        assert_eq!(rce2.rewrites.len(), 4, "{rce2:?}");
        // Flops drop: 4 multiplies collapse into 1 over a padded region.
        let flops = |np: &NormProgram| -> u64 {
            np.blocks
                .iter()
                .flat_map(|b| &b.stmts)
                .filter_map(|s| rhs_of(s).map(|(rhs, ..)| rhs.flops()))
                .sum()
        };
        assert!(flops(&np) < flops(&np0), "{} < {}", flops(&np), flops(&np0));
        // And the re-checker agrees with every record.
        let diags = crate::verify::check_rce2(&np, &rce2);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn direct_reuse_reads_the_earlier_statement() {
        let mut np = norm(
            "program r1; config n : int = 16; \
             region RH = [0..n+1, 0..n+1]; region R = [1..n, 1..n]; \
             var A, B : [RH] float; var X, Y : [R] float; \
             begin \
               [R] X := (A + B) * 2.0; \
               [R] Y := (A@[0,1] + B@[0,1]) * 3.0; \
             end",
        );
        let binding = np.default_binding();
        let (changed, rce2) = run(&mut np, &binding);
        // (A+B) is materialized once (2 occurrences at shifted offsets)
        // or Y reuses X's subterm; either way something must change and
        // every record must re-check.
        assert!(changed, "{rce2:?}");
        assert!(!rce2.is_empty());
        let diags = crate::verify::check_rce2(&np, &rce2);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn invariant_statement_hoists_out_of_a_counted_loop() {
        let mut np = norm(
            "program h1; config n : int = 16; \
             region RH = [0..n+1, 0..n+1]; region R = [1..n, 1..n]; \
             var H : [RH] float; var U, V : [R] float; \
             var k : int; \
             begin \
               for k := 1 to 8 do \
                 [R] U := (H@[1,0] + H@[-1,0]) * 0.5; \
                 [R] V := (V * 0.5 + U); \
               end; \
             end",
        );
        let binding = np.default_binding();
        let (changed, rce2) = run(&mut np, &binding);
        assert!(changed);
        assert_eq!(rce2.hoists.len(), 1, "{rce2:?}");
        assert_eq!(np.program.array(rce2.hoists[0].array).name, "U", "{rce2:?}");
        let diags = crate::verify::check_rce2(&np, &rce2);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn zero_or_unknown_trip_loops_are_left_alone() {
        for bounds in ["1 to 0", "1 to 1", "1 to n"] {
            let mut np = norm(&format!(
                "program h2; config n : int = 4; \
                 region RH = [0..n+1, 0..n+1]; region R = [1..n, 1..n]; \
                 var H : [RH] float; var U : [R] float; var k : int; \
                 begin for k := {bounds} do [R] U := H * 2.0; end; end",
            ));
            let binding = np.default_binding();
            let (_, rce2) = run(&mut np, &binding);
            assert!(rce2.hoists.is_empty(), "{bounds}: {rce2:?}");
        }
    }

    #[test]
    fn reads_before_the_def_block_hoisting() {
        // V reads U before U's def: trip one must see the pre-loop U.
        let mut np = norm(
            "program h3; config n : int = 16; \
             region RH = [0..n+1, 0..n+1]; region R = [1..n, 1..n]; \
             var H : [RH] float; var U, V : [R] float; var k : int; \
             begin \
               for k := 1 to 8 do \
                 [R] V := (V * 0.5 + U); \
                 [R] U := (H@[1,0] + H@[-1,0]) * 0.5; \
               end; \
             end",
        );
        let binding = np.default_binding();
        let (_, rce2) = run(&mut np, &binding);
        assert!(rce2.hoists.is_empty(), "{rce2:?}");
    }

    #[test]
    fn unprofitable_plans_are_skipped() {
        // A single occurrence of each form: nothing to share.
        let mut np = norm(
            "program u1; config n : int = 16; \
             region R = [1..n, 1..n]; \
             var X, Y : [R] float; \
             begin [R] Y := X * 2.0; end",
        );
        let binding = np.default_binding();
        let (changed, rce2) = run(&mut np, &binding);
        assert!(!changed, "{rce2:?}");
        assert!(rce2.is_empty());
    }

    #[test]
    fn index_occurrences_only_share_at_equal_shifts() {
        let mut np = norm(
            "program i1; config n : int = 16; \
             region RH = [0..n+1, 0..n+1]; region R = [1..n, 1..n]; \
             var A : [RH] float; var X, Y : [R] float; \
             begin \
               [R] X := A * index1; \
               [R] Y := A@[1,0] * index1; \
             end",
        );
        let binding = np.default_binding();
        let (_, rce2) = run(&mut np, &binding);
        // The two occurrences sit at different shifts — a shared temp
        // would shift the index term, which a read cannot express.
        for r in &rce2.rewrites {
            assert!(
                !crate::avail::contains_index(&r.replaced) || r.delta.iter().all(|&d| d == 0),
                "{rce2:?}"
            );
        }
        let diags = crate::verify::check_rce2(&np, &rce2);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn default_binding_smoke() {
        // ConfigBinding is only a profitability input; a zero-size
        // binding must simply suppress materialization, not crash.
        let p = zlang::compile(
            "program z; config n : int = 0; region R = [1..n]; \
             var A, B : [R] float; begin [R] B := A + A; [R] A := B + B; end",
        )
        .unwrap();
        let mut np = crate::normal::normalize(&p);
        let binding = ConfigBinding::defaults(&np.program);
        let (_, rce2) = run(&mut np, &binding);
        let diags = crate::verify::check_rce2(&np, &rce2);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
