//! Reference weights (Section 3 of the paper).
//!
//! The number of array element references eliminated by contracting a
//! definition `x` — its *reference weight* `w(x, G)` — is the number of
//! times it is referenced at the array level times the region sizes over
//! which those references occur. `FUSION-FOR-CONTRACTION` considers
//! candidates in decreasing weight order so the largest single
//! contributions to the contraction benefit are tried first.

use crate::asdg::{Asdg, DefId};
use crate::normal::Block;
use zlang::ir::{ConfigBinding, Program};

/// Computes `w(x, G)` for a definition: the sum over its references
/// (the defining write plus every read) of the referencing statement's
/// region size, evaluated under `binding`.
pub fn def_weight(
    program: &Program,
    block: &Block,
    asdg: &Asdg,
    def: DefId,
    binding: &ConfigBinding,
) -> u64 {
    let info = asdg.def(def);
    let mut w = 0u64;
    if let Some(s) = info.def_stmt {
        if let Some(r) = block.stmts[s].region() {
            w += program.region(r).size(binding);
        }
    }
    for &(s, _) in &info.reads {
        if let Some(r) = block.stmts[s].region() {
            w += program.region(r).size(binding);
        }
    }
    w
}

/// Sorts candidate definitions by decreasing weight (ties broken by
/// definition id for determinism) — the order `FUSION-FOR-CONTRACTION`
/// considers them in.
pub fn sort_by_weight(
    program: &Program,
    block: &Block,
    asdg: &Asdg,
    mut candidates: Vec<DefId>,
    binding: &ConfigBinding,
) -> Vec<DefId> {
    candidates.sort_by_key(|&d| {
        (
            std::cmp::Reverse(def_weight(program, block, asdg, d, binding)),
            d,
        )
    });
    candidates
}

/// The total contraction benefit of a set of contracted definitions: the
/// sum of their reference weights (Section 3).
pub fn contraction_benefit(
    program: &Program,
    block: &Block,
    asdg: &Asdg,
    contracted: &[DefId],
    binding: &ConfigBinding,
) -> u64 {
    contracted
        .iter()
        .map(|&d| def_weight(program, block, asdg, d, binding))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asdg::build;
    use crate::normal::normalize;

    #[test]
    fn weight_counts_refs_times_region_size() {
        let p = zlang::compile(
            "program p; config n : int = 10; region R = [1..n, 1..n]; \
             var A, B, C : [R] float; var s : float; begin \
             [R] B := A; [R] C := B * B; s := +<< [R] C + B; end",
        )
        .unwrap();
        let np = normalize(&p);
        let g = build(&np.program, &np.blocks[0]);
        let binding = np.default_binding();
        let names = np.program.array_names();
        let b_def = g.defs_of(names["B"])[0];
        // B: 1 write + 2 reads in stmt 1 + 1 read in the reduce = 4 refs of
        // a 100-element region.
        assert_eq!(
            def_weight(&np.program, &np.blocks[0], &g, b_def, &binding),
            400
        );
        let c_def = g.defs_of(names["C"])[0];
        // C: 1 write + 1 read.
        assert_eq!(
            def_weight(&np.program, &np.blocks[0], &g, c_def, &binding),
            200
        );
        let sorted = sort_by_weight(&np.program, &np.blocks[0], &g, vec![c_def, b_def], &binding);
        assert_eq!(sorted, vec![b_def, c_def]);
        assert_eq!(
            contraction_benefit(&np.program, &np.blocks[0], &g, &[b_def, c_def], &binding),
            600
        );
    }

    #[test]
    fn weight_scales_with_binding() {
        let p = zlang::compile(
            "program p; config n : int = 10; region R = [1..n]; \
             var A, B : [R] float; var s : float; begin [R] B := A; s := +<< [R] B; end",
        )
        .unwrap();
        let np = normalize(&p);
        let g = build(&np.program, &np.blocks[0]);
        let names = np.program.array_names();
        let b_def = g.defs_of(names["B"])[0];
        let mut binding = np.default_binding();
        assert_eq!(
            def_weight(&np.program, &np.blocks[0], &g, b_def, &binding),
            20
        );
        binding.set_by_name(&np.program, "n", 50);
        assert_eq!(
            def_weight(&np.program, &np.blocks[0], &g, b_def, &binding),
            100
        );
    }
}
