//! The array statement dependence graph (Definition 3 of the paper).
//!
//! Vertices are the statements of one basic block; edges carry sets of
//! `(variable, unconstrained distance vector, dependence type)` labels.
//! Per the paper's footnote 2, the graph operates on array variable
//! *definitions* (live ranges), so disjoint live ranges of the same array
//! optimize independently.
//!
//! Extensions beyond the paper needed for a full language:
//!
//! * Scalar dependences (a reduction writing a scalar that a later array
//!   statement reads) are represented as labels with no UDV; they order
//!   statements and forbid putting producer and consumer in one cluster
//!   (a reduction's value is complete only after its whole loop).
//! * Dependences between statements over *different regions* get no UDV
//!   (`udv: None`), which makes them automatically ineligible for fusion
//!   and contraction while still constraining statement order.

use crate::depvec::{DepKind, Udv};
use crate::normal::{BStmt, Block};
use std::collections::HashMap;
use zlang::ir::{ArrayId, Offset, Program, ScalarId};

/// Identifies one definition (live range) of an array within a block.
///
/// `index` 0 is the live-in range (referenced before any in-block write);
/// each write starts a new range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DefId(pub u32);

/// Information about one array definition (live range).
#[derive(Debug, Clone, PartialEq)]
pub struct DefInfo {
    /// The array.
    pub array: ArrayId,
    /// The statement that created this range, or `None` for the live-in
    /// range.
    pub def_stmt: Option<usize>,
    /// Statements (and offsets) reading this range, in program order.
    pub reads: Vec<(usize, Offset)>,
}

/// The variable a dependence label is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarLabel {
    /// An array live range.
    Array(DefId),
    /// A scalar variable.
    Scalar(ScalarId),
}

/// One dependence label on an edge.
#[derive(Debug, Clone, PartialEq)]
pub struct Label {
    /// The variable inducing the dependence.
    pub var: VarLabel,
    /// The unconstrained distance vector, when both endpoints are fusable
    /// statements over the same region; `None` otherwise.
    pub udv: Option<Udv>,
    /// Flow, anti, or output.
    pub kind: DepKind,
}

/// A labeled edge `src -> dst` (src precedes dst in program order).
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Source statement index.
    pub src: usize,
    /// Target statement index.
    pub dst: usize,
    /// All dependences this edge represents.
    pub labels: Vec<Label>,
}

/// The array statement dependence graph of one basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Asdg {
    /// Number of statements (vertices).
    pub n: usize,
    /// Labeled edges. All edges satisfy `src < dst` (the block is straight-
    /// line code, so program order is a topological order).
    pub edges: Vec<Edge>,
    /// Per-statement: the definition each array read refers to.
    pub read_defs: Vec<Vec<(ArrayId, Offset, DefId)>>,
    /// Per-statement: the definition its write creates (array statements).
    pub write_def: Vec<Option<DefId>>,
    /// All definitions.
    pub defs: Vec<DefInfo>,
    /// Adjacency: edge indices leaving each vertex.
    pub out_edges: Vec<Vec<usize>>,
    /// Adjacency: edge indices entering each vertex.
    pub in_edges: Vec<Vec<usize>>,
}

impl Asdg {
    /// The definitions of a given array, in creation order.
    pub fn defs_of(&self, array: ArrayId) -> Vec<DefId> {
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.array == array)
            .map(|(i, _)| DefId(i as u32))
            .collect()
    }

    /// Info for a definition.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn def(&self, id: DefId) -> &DefInfo {
        &self.defs[id.0 as usize]
    }

    /// Every statement referencing (reading or defining) the given
    /// definition.
    pub fn stmts_of_def(&self, id: DefId) -> Vec<usize> {
        let info = self.def(id);
        let mut out: Vec<usize> = info.def_stmt.into_iter().collect();
        for &(s, _) in &info.reads {
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }

    /// Iterates all labels on edges between `src` and `dst`.
    pub fn labels_between(&self, src: usize, dst: usize) -> &[Label] {
        self.edges
            .iter()
            .find(|e| e.src == src && e.dst == dst)
            .map(|e| e.labels.as_slice())
            .unwrap_or(&[])
    }

    /// All labels mentioning an array definition, with their edges.
    pub fn labels_of_def(&self, id: DefId) -> Vec<(usize, usize, &Label)> {
        let mut out = Vec::new();
        for e in &self.edges {
            for l in &e.labels {
                if l.var == VarLabel::Array(id) {
                    out.push((e.src, e.dst, l));
                }
            }
        }
        out
    }
}

/// Renders an ASDG in GraphViz `dot` syntax, labelling vertices with their
/// statements and edges with `(variable, UDV, kind)` triples — the exact
/// notation of the paper's Figure 2(d).
pub fn to_dot(program: &Program, block: &crate::normal::Block, g: &Asdg) -> String {
    use std::fmt::Write;
    let mut out = String::from("digraph asdg {\n  node [shape=box, fontname=\"monospace\"];\n");
    for (i, s) in block.stmts.iter().enumerate() {
        let label = match s {
            crate::normal::BStmt::Array(a) => format!(
                "{}: [{}] {} := ...",
                i,
                program.region(a.region).name,
                program.array(a.lhs).name
            ),
            crate::normal::BStmt::Reduce { lhs, region, .. } => format!(
                "{}: {} := reduce [{}]",
                i,
                program.scalar(*lhs).name,
                program.region(*region).name
            ),
            crate::normal::BStmt::Scalar { lhs, .. } => {
                format!("{}: {} := ...", i, program.scalar(*lhs).name)
            }
        };
        let _ = writeln!(out, "  s{i} [label=\"{label}\"];");
    }
    for e in &g.edges {
        let labels: Vec<String> = e
            .labels
            .iter()
            .map(|l| {
                let var = match l.var {
                    VarLabel::Array(d) => {
                        let info = g.def(d);
                        format!("{}#{}", program.array(info.array).name, d.0)
                    }
                    VarLabel::Scalar(s) => program.scalar(s).name.clone(),
                };
                let udv = l.udv.as_ref().map_or("-".to_string(), |u| u.to_string());
                format!("({var}, {udv}, {})", l.kind)
            })
            .collect();
        let _ = writeln!(
            out,
            "  s{} -> s{} [label=\"{}\"];",
            e.src,
            e.dst,
            labels.join("\\n")
        );
    }
    out.push_str("}\n");
    out
}

/// Builds the ASDG for a basic block.
pub fn build(program: &Program, block: &Block) -> Asdg {
    let n = block.stmts.len();
    let mut defs: Vec<DefInfo> = Vec::new();
    let mut current: HashMap<ArrayId, DefId> = HashMap::new();
    let mut edge_map: HashMap<(usize, usize), Vec<Label>> = HashMap::new();
    let mut read_defs: Vec<Vec<(ArrayId, Offset, DefId)>> = vec![Vec::new(); n];
    let mut write_def: Vec<Option<DefId>> = vec![None; n];

    // Scalar tracking: last writer and readers since.
    let mut scalar_writer: HashMap<ScalarId, usize> = HashMap::new();
    let mut scalar_readers: HashMap<ScalarId, Vec<usize>> = HashMap::new();

    let mut add_label = |src: usize, dst: usize, label: Label| {
        if src == dst {
            return;
        }
        debug_assert!(src < dst, "dependences point forward in a basic block");
        edge_map.entry((src, dst)).or_default().push(label);
    };

    for (si, stmt) in block.stmts.iter().enumerate() {
        let same_region_udv = |other: usize, u: Udv| -> Option<Udv> {
            let a = block.stmts[other].region();
            let b = stmt.region();
            match (a, b) {
                (Some(ra), Some(rb)) if ra == rb => Some(u),
                _ => None,
            }
        };

        // --- Array reads ---
        for (a, off) in stmt.reads() {
            let def = *current.entry(a).or_insert_with(|| {
                let id = DefId(defs.len() as u32);
                defs.push(DefInfo {
                    array: a,
                    def_stmt: None,
                    reads: Vec::new(),
                });
                id
            });
            let info = &mut defs[def.0 as usize];
            info.reads.push((si, off.clone()));
            read_defs[si].push((a, off.clone(), def));
            if let Some(d) = info.def_stmt {
                // Flow dependence: u = d_write - d_read, write offset is 0.
                let rank = off.rank();
                let u = Udv::between(&Offset::zero(rank), &off);
                add_label(
                    d,
                    si,
                    Label {
                        var: VarLabel::Array(def),
                        udv: same_region_udv(d, u),
                        kind: DepKind::Flow,
                    },
                );
            }
        }

        // --- Scalar reads ---
        for s in stmt.scalar_reads() {
            scalar_readers.entry(s).or_default().push(si);
            if let Some(&w) = scalar_writer.get(&s) {
                add_label(
                    w,
                    si,
                    Label {
                        var: VarLabel::Scalar(s),
                        udv: None,
                        kind: DepKind::Flow,
                    },
                );
            }
        }

        // --- Array write ---
        if let BStmt::Array(ast) = stmt {
            let a = ast.lhs;
            if let Some(&prev) = current.get(&a) {
                let prev_info = defs[prev.0 as usize].clone();
                // Anti dependences from every read of the previous range.
                for (r_stmt, r_off) in &prev_info.reads {
                    if *r_stmt == si {
                        continue; // normalization forbids read+write in one stmt
                    }
                    let rank = r_off.rank();
                    let u = Udv::between(r_off, &Offset::zero(rank));
                    add_label(
                        *r_stmt,
                        si,
                        Label {
                            var: VarLabel::Array(prev),
                            udv: same_region_udv(*r_stmt, u),
                            kind: DepKind::Anti,
                        },
                    );
                }
                // Output dependence from the previous definition.
                if let Some(d) = prev_info.def_stmt {
                    let u = Udv::null(program.region(ast.region).rank());
                    add_label(
                        d,
                        si,
                        Label {
                            var: VarLabel::Array(prev),
                            udv: same_region_udv(d, u),
                            kind: DepKind::Output,
                        },
                    );
                }
            }
            let id = DefId(defs.len() as u32);
            defs.push(DefInfo {
                array: a,
                def_stmt: Some(si),
                reads: Vec::new(),
            });
            current.insert(a, id);
            write_def[si] = Some(id);
        }

        // --- Scalar write ---
        if let Some(s) = stmt.lhs_scalar() {
            if let Some(readers) = scalar_readers.get(&s) {
                for &r in readers {
                    add_label(
                        r,
                        si,
                        Label {
                            var: VarLabel::Scalar(s),
                            udv: None,
                            kind: DepKind::Anti,
                        },
                    );
                }
            }
            if let Some(&w) = scalar_writer.get(&s) {
                add_label(
                    w,
                    si,
                    Label {
                        var: VarLabel::Scalar(s),
                        udv: None,
                        kind: DepKind::Output,
                    },
                );
            }
            scalar_writer.insert(s, si);
            scalar_readers.insert(s, Vec::new());
        }
    }

    let mut edges: Vec<Edge> = edge_map
        .into_iter()
        .map(|((src, dst), labels)| Edge { src, dst, labels })
        .collect();
    edges.sort_by_key(|e| (e.src, e.dst));

    let mut out_edges = vec![Vec::new(); n];
    let mut in_edges = vec![Vec::new(); n];
    for (i, e) in edges.iter().enumerate() {
        out_edges[e.src].push(i);
        in_edges[e.dst].push(i);
    }

    Asdg {
        n,
        edges,
        read_defs,
        write_def,
        defs,
        out_edges,
        in_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::normalize;

    fn asdg_of(src: &str) -> (Asdg, crate::normal::NormProgram) {
        let np = normalize(&zlang::compile(src).unwrap());
        assert_eq!(np.blocks.len(), 1, "test expects a single block");
        let g = build(&np.program, &np.blocks[0]);
        (g, np)
    }

    const P: &str = "program p; config n : int = 8; region R = [1..n, 1..n]; \
                     direction w = [0, -1]; direction nw = [-1, 1]; \
                     var A, B, C : [R] float; var s : float; ";

    #[test]
    fn figure2_asdg() {
        // [R] A := B@(0,-1)... the paper's Figure 2(b) (renamed dirs):
        //   1: A := B@(-1,0);  2: C := A@(0,-1);  3: B := A@(-1,1);
        let (g, np) = asdg_of(
            "program p; config m : int = 4; config n : int = 4; \
             region R = [1..m, 1..n]; var A, B, C : [R] float; begin \
             [R] A := B@[-1,0]; [R] C := A@[0,-1]; [R] B := A@[-1,1]; end",
        );
        let names = np.program.array_names();
        assert_eq!(g.n, 3);
        // Flow A: 1->2 with u=(0,1); flow A: 1->3 with u=(1,-1);
        // anti B: 1->3 with u=(-1,0).
        let l12 = g.labels_between(0, 1);
        assert_eq!(l12.len(), 1);
        assert_eq!(l12[0].udv, Some(Udv(vec![0, 1])));
        assert_eq!(l12[0].kind, DepKind::Flow);
        let l13 = g.labels_between(0, 2);
        assert_eq!(l13.len(), 2);
        let flow = l13.iter().find(|l| l.kind == DepKind::Flow).unwrap();
        let anti = l13.iter().find(|l| l.kind == DepKind::Anti).unwrap();
        assert_eq!(flow.udv, Some(Udv(vec![1, -1])));
        assert_eq!(anti.udv, Some(Udv(vec![-1, 0])));
        // The anti dep is on B's live-in range.
        let VarLabel::Array(d) = anti.var else {
            panic!()
        };
        assert_eq!(g.def(d).array, names["B"]);
        assert_eq!(g.def(d).def_stmt, None);
    }

    #[test]
    fn to_dot_golden() {
        // The dot rendering is a stable external format (`zlc --print asdg`
        // and the --emit snapshots embed it): pin the exact node and edge
        // labels for a two-statement flow chain into a reduction.
        let (g, np) = asdg_of(&format!(
            "{P} begin [R] B := A@w; [R] C := B; s := +<< [R] C; end"
        ));
        let dot = to_dot(&np.program, &np.blocks[0], &g);
        assert_eq!(
            dot,
            "digraph asdg {\n\
             \x20 node [shape=box, fontname=\"monospace\"];\n\
             \x20 s0 [label=\"0: [R] B := ...\"];\n\
             \x20 s1 [label=\"1: [R] C := ...\"];\n\
             \x20 s2 [label=\"2: s := reduce [R]\"];\n\
             \x20 s0 -> s1 [label=\"(B#1, (0,0), flow)\"];\n\
             \x20 s1 -> s2 [label=\"(C#2, (0,0), flow)\"];\n\
             }\n"
        );
    }

    #[test]
    fn output_dependence_between_redefinitions() {
        let (g, _) = asdg_of(&format!(
            "{P} begin [R] C := A; [R] C := B; s := +<< [R] C; end"
        ));
        let labels = g.labels_between(0, 1);
        assert!(labels.iter().any(|l| l.kind == DepKind::Output));
        // The reduce reads the SECOND definition of C only.
        assert!(g.labels_between(0, 2).is_empty());
        assert_eq!(g.labels_between(1, 2).len(), 1);
    }

    #[test]
    fn live_ranges_split_reads() {
        let (g, np) = asdg_of(&format!(
            "{P} begin [R] C := A; [R] B := C; [R] C := A + A; s := +<< [R] C; end"
        ));
        let names = np.program.array_names();
        let c_defs = g.defs_of(names["C"]);
        assert_eq!(c_defs.len(), 2);
        assert_eq!(g.def(c_defs[0]).reads.len(), 1);
        assert_eq!(g.def(c_defs[1]).reads.len(), 1);
        // Anti dependence from the read of range 0 to the redefinition.
        let l = g.labels_between(1, 2);
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].kind, DepKind::Anti);
        assert_eq!(l[0].udv, Some(Udv::null(2)));
    }

    #[test]
    fn scalar_dependences_are_tracked() {
        let (g, _) = asdg_of(&format!(
            "{P} begin s := 2.0; [R] A := B * s; s := 3.0; end"
        ));
        // Flow s: 0->1; anti s: 1->2; output s: 0->2.
        assert_eq!(g.labels_between(0, 1)[0].kind, DepKind::Flow);
        assert_eq!(g.labels_between(1, 2)[0].kind, DepKind::Anti);
        assert_eq!(g.labels_between(0, 2)[0].kind, DepKind::Output);
        for e in &g.edges {
            for l in &e.labels {
                assert!(matches!(l.var, VarLabel::Scalar(_)));
                assert_eq!(l.udv, None);
            }
        }
    }

    #[test]
    fn cross_region_dependence_has_no_udv() {
        let (g, _) = asdg_of(
            "program p; config n : int = 8; region R = [1..n]; region RI = [2..n]; \
             var A, B : [R] float; var s : float; begin \
             [R] A := B; [RI] B := A@[-1]; end",
        );
        let labels = g.labels_between(0, 1);
        assert!(!labels.is_empty());
        assert!(labels.iter().all(|l| l.udv.is_none()));
    }

    #[test]
    fn reduce_creates_flow_edges_from_producer() {
        let (g, _) = asdg_of(&format!("{P} begin [R] A := B + B; s := +<< [R] A; end"));
        let l = g.labels_between(0, 1);
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].kind, DepKind::Flow);
        assert_eq!(l[0].udv, Some(Udv::null(2)));
    }

    #[test]
    fn dot_export_names_vertices_and_labels() {
        let (g, np) = asdg_of(&format!(
            "{P} begin [R] B := A@w; [R] C := B; s := +<< [R] C; end"
        ));
        let dot = to_dot(&np.program, &np.blocks[0], &g);
        assert!(dot.starts_with("digraph asdg {"), "{dot}");
        assert!(dot.contains("s0 -> s1"), "{dot}");
        assert!(dot.contains("flow"), "{dot}");
        assert!(dot.contains("B#"), "{dot}");
        assert!(dot.contains("reduce [R]"), "{dot}");
        assert!(dot.ends_with("}\n"), "{dot}");
    }

    #[test]
    fn edges_point_forward_and_adjacency_consistent() {
        let (g, _) = asdg_of(&format!(
            "{P} begin [R] A := B; [R] C := A; [R] B := C@w; s := +<< [R] B; end"
        ));
        for e in &g.edges {
            assert!(e.src < e.dst);
        }
        let edge_count: usize = g.out_edges.iter().map(|v| v.len()).sum();
        assert_eq!(edge_count, g.edges.len());
        let in_count: usize = g.in_edges.iter().map(|v| v.len()).sum();
        assert_eq!(in_count, g.edges.len());
    }
}
