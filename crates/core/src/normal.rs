//! Array statement normalization (Section 2.1 of the paper) and basic-block
//! structure.
//!
//! A *normalized* array statement `[R] f(A1@d1, ..., As@ds)` never reads and
//! writes the same array. When a source statement does (e.g. F90's
//! `A(1:n) = A(0:n-1) + A(0:n-1)`), normalization splits it through a
//! compiler temporary:
//!
//! ```text
//! [R] A := A@d + ...        =>        [R] _t0 := A@d + ...
//!                                     [R] A   := _t0
//! ```
//!
//! The paper's technique *always* inserts the temporary and relies on
//! contraction to remove it when a single statement does not truly require
//! it — in contrast to the Cray compiler, which never inserts one and
//! thereby forgoes profitable cross-statement contractions (Section 5.1).
//!
//! Normalization also flattens the program into *basic blocks* of
//! statements: maximal runs of array / reduction / scalar statements not
//! crossing control flow. Each block gets its own array statement
//! dependence graph.

use zlang::ast::ReduceOp;
use zlang::ir::{
    ArrayExpr, ArrayId, ArrayStmt, ConfigBinding, Program, RegionId, ScalarExpr, ScalarId, Stmt,
};

/// A statement inside a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum BStmt {
    /// A normalized element-wise array assignment.
    Array(ArrayStmt),
    /// A reduction into a scalar. Fusable with array statements over the
    /// same region; never contractible (it has no array LHS).
    Reduce {
        /// Scalar receiving the result.
        lhs: ScalarId,
        /// Reduction operator.
        op: ReduceOp,
        /// Region reduced over.
        region: RegionId,
        /// Element-wise argument.
        arg: ArrayExpr,
    },
    /// A scalar assignment. Unfusable: it is a single event, not an
    /// element-wise loop.
    Scalar {
        /// Scalar written.
        lhs: ScalarId,
        /// Right-hand side.
        rhs: ScalarExpr,
    },
}

impl BStmt {
    /// The region this statement iterates over, if it is loop-shaped.
    pub fn region(&self) -> Option<RegionId> {
        match self {
            BStmt::Array(s) => Some(s.region),
            BStmt::Reduce { region, .. } => Some(*region),
            BStmt::Scalar { .. } => None,
        }
    }

    /// True for statements that can join a fusible cluster (array
    /// statements and reductions).
    pub fn is_fusable(&self) -> bool {
        !matches!(self, BStmt::Scalar { .. })
    }

    /// The array written, if any.
    pub fn lhs_array(&self) -> Option<ArrayId> {
        match self {
            BStmt::Array(s) => Some(s.lhs),
            _ => None,
        }
    }

    /// All `(array, offset)` reads of the statement.
    pub fn reads(&self) -> Vec<(ArrayId, zlang::ir::Offset)> {
        match self {
            BStmt::Array(s) => s.rhs.reads(),
            BStmt::Reduce { arg, .. } => arg.reads(),
            BStmt::Scalar { .. } => Vec::new(),
        }
    }

    /// All scalars read by the statement.
    pub fn scalar_reads(&self) -> Vec<ScalarId> {
        fn from_array(e: &ArrayExpr, out: &mut Vec<ScalarId>) {
            match e {
                ArrayExpr::ScalarRef(s) => out.push(*s),
                ArrayExpr::Unary(_, i) => from_array(i, out),
                ArrayExpr::Binary(_, l, r) => {
                    from_array(l, out);
                    from_array(r, out);
                }
                ArrayExpr::Call(_, args) => args.iter().for_each(|a| from_array(a, out)),
                _ => {}
            }
        }
        fn from_scalar(e: &ScalarExpr, out: &mut Vec<ScalarId>) {
            match e {
                ScalarExpr::ScalarRef(s) => out.push(*s),
                ScalarExpr::Unary(_, i) => from_scalar(i, out),
                ScalarExpr::Binary(_, l, r) => {
                    from_scalar(l, out);
                    from_scalar(r, out);
                }
                ScalarExpr::Call(_, args) => args.iter().for_each(|a| from_scalar(a, out)),
                _ => {}
            }
        }
        let mut out = Vec::new();
        match self {
            BStmt::Array(s) => from_array(&s.rhs, &mut out),
            BStmt::Reduce { arg, .. } => from_array(arg, &mut out),
            BStmt::Scalar { rhs, .. } => from_scalar(rhs, &mut out),
        }
        out
    }

    /// The scalar written, if any.
    pub fn lhs_scalar(&self) -> Option<ScalarId> {
        match self {
            BStmt::Reduce { lhs, .. } | BStmt::Scalar { lhs, .. } => Some(*lhs),
            BStmt::Array(_) => None,
        }
    }
}

/// A basic block: a straight-line sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in program order.
    pub stmts: Vec<BStmt>,
}

/// Control-flow skeleton around basic blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum NStmt {
    /// A basic block (index into [`NormProgram::blocks`]).
    Block(usize),
    /// A counted loop.
    For {
        var: ScalarId,
        lo: ScalarExpr,
        hi: ScalarExpr,
        down: bool,
        body: Vec<NStmt>,
    },
    /// A conditional.
    If {
        cond: ScalarExpr,
        then_body: Vec<NStmt>,
        else_body: Vec<NStmt>,
    },
}

/// A normalized program: the original declarations (with compiler
/// temporaries appended) plus basic blocks under a control-flow skeleton.
#[derive(Debug, Clone, PartialEq)]
pub struct NormProgram {
    /// The program with compiler temporaries appended to `arrays`.
    pub program: Program,
    /// All basic blocks.
    pub blocks: Vec<Block>,
    /// The control-flow skeleton referencing blocks by index.
    pub body: Vec<NStmt>,
}

impl NormProgram {
    /// Number of compiler temporaries inserted by normalization.
    pub fn compiler_temps(&self) -> usize {
        self.program
            .arrays
            .iter()
            .filter(|a| a.compiler_temp)
            .count()
    }

    /// The default config binding of the underlying program.
    pub fn default_binding(&self) -> ConfigBinding {
        ConfigBinding::defaults(&self.program)
    }
}

struct Normalizer {
    program: Program,
    blocks: Vec<Block>,
}

impl Normalizer {
    fn push_array_stmt(&mut self, block: &mut Block, s: &ArrayStmt) {
        let reads_lhs = s.rhs.reads().iter().any(|(a, _)| *a == s.lhs);
        if reads_lhs {
            // Split through a compiler temporary (the paper's rule: always
            // insert; contraction removes it when unneeded).
            let t = self.program.add_compiler_temp(s.region);
            block.stmts.push(BStmt::Array(ArrayStmt {
                region: s.region,
                lhs: t,
                rhs: s.rhs.clone(),
            }));
            let rank = self.program.region(s.region).rank();
            block.stmts.push(BStmt::Array(ArrayStmt {
                region: s.region,
                lhs: s.lhs,
                rhs: ArrayExpr::Read(t, zlang::ir::Offset::zero(rank)),
            }));
        } else {
            block.stmts.push(BStmt::Array(s.clone()));
        }
    }

    fn lower(&mut self, stmts: &[Stmt]) -> Vec<NStmt> {
        let mut out = Vec::new();
        let mut block = Block::default();
        let flush = |blocks: &mut Vec<Block>, block: &mut Block, out: &mut Vec<NStmt>| {
            if !block.stmts.is_empty() {
                out.push(NStmt::Block(blocks.len()));
                blocks.push(std::mem::take(block));
            }
        };
        for s in stmts {
            match s {
                Stmt::Array(a) => self.push_array_stmt(&mut block, a),
                Stmt::Reduce {
                    lhs,
                    op,
                    region,
                    arg,
                } => {
                    block.stmts.push(BStmt::Reduce {
                        lhs: *lhs,
                        op: *op,
                        region: *region,
                        arg: arg.clone(),
                    });
                }
                Stmt::Scalar { lhs, rhs } => {
                    block.stmts.push(BStmt::Scalar {
                        lhs: *lhs,
                        rhs: rhs.clone(),
                    });
                }
                Stmt::For {
                    var,
                    lo,
                    hi,
                    down,
                    body,
                } => {
                    flush(&mut self.blocks, &mut block, &mut out);
                    let body = self.lower(body);
                    out.push(NStmt::For {
                        var: *var,
                        lo: lo.clone(),
                        hi: hi.clone(),
                        down: *down,
                        body,
                    });
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    flush(&mut self.blocks, &mut block, &mut out);
                    let then_body = self.lower(then_body);
                    let else_body = self.lower(else_body);
                    out.push(NStmt::If {
                        cond: cond.clone(),
                        then_body,
                        else_body,
                    });
                }
            }
        }
        flush(&mut self.blocks, &mut block, &mut out);
        out
    }
}

/// Normalizes a program: inserts compiler temporaries and builds the basic
/// block structure.
pub fn normalize(program: &Program) -> NormProgram {
    let mut n = Normalizer {
        program: program.clone(),
        blocks: Vec::new(),
    };
    let body = n.lower(&program.body);
    NormProgram {
        program: n.program,
        blocks: n.blocks,
        body,
    }
}

/// Per-array contraction candidacy: an array is a *candidate* iff all of
/// its references occur in exactly one basic block, the first reference in
/// that block is a write, and the array is read at least once (an array
/// that is written but never read is treated as a program output and kept).
///
/// Compiler temporaries always satisfy these conditions by construction.
/// Returns, per array, `Some(block_index)` when the array is a candidate.
pub fn contraction_candidates(np: &NormProgram) -> Vec<Option<usize>> {
    #[derive(Default, Clone)]
    struct Info {
        blocks: Vec<usize>,
        first_is_write: bool,
        seen: bool,
        read_anywhere: bool,
    }
    let mut info = vec![Info::default(); np.program.arrays.len()];
    for (bi, block) in np.blocks.iter().enumerate() {
        for s in &block.stmts {
            // Reads first: a statement's RHS is evaluated before its write.
            for (a, _) in s.reads() {
                let inf = &mut info[a.0 as usize];
                if !inf.blocks.contains(&bi) {
                    inf.blocks.push(bi);
                }
                if !inf.seen {
                    inf.seen = true;
                    inf.first_is_write = false;
                }
                inf.read_anywhere = true;
            }
            if let Some(a) = s.lhs_array() {
                let inf = &mut info[a.0 as usize];
                if !inf.blocks.contains(&bi) {
                    inf.blocks.push(bi);
                }
                if !inf.seen {
                    inf.seen = true;
                    inf.first_is_write = true;
                }
            }
        }
    }
    info.iter()
        .map(|inf| {
            if inf.seen && inf.blocks.len() == 1 && inf.first_is_write && inf.read_anywhere {
                Some(inf.blocks[0])
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(src: &str) -> NormProgram {
        normalize(&zlang::compile(src).unwrap())
    }

    const P: &str = "program p; config n : int = 8; region R = [1..n, 1..n]; \
                     direction w = [0, -1]; var A, B, C : [R] float; var s : float; var k : int; ";

    #[test]
    fn no_temp_for_clean_statement() {
        let np = norm(&format!("{P} begin [R] B := A + A; end"));
        assert_eq!(np.compiler_temps(), 0);
        assert_eq!(np.blocks.len(), 1);
        assert_eq!(np.blocks[0].stmts.len(), 1);
    }

    #[test]
    fn temp_inserted_for_read_write_conflict() {
        // Fragment (5) of Figure 5: A := A@w + A@w.
        let np = norm(&format!("{P} begin [R] A := A@w + A@w; end"));
        assert_eq!(np.compiler_temps(), 1);
        let b = &np.blocks[0];
        assert_eq!(b.stmts.len(), 2);
        // First statement writes the temp, second copies it into A.
        let BStmt::Array(s0) = &b.stmts[0] else {
            panic!()
        };
        let BStmt::Array(s1) = &b.stmts[1] else {
            panic!()
        };
        assert!(np.program.array(s0.lhs).compiler_temp);
        assert_eq!(np.program.array(s1.lhs).name, "A");
        assert_eq!(
            s1.rhs.reads(),
            vec![(s0.lhs, zlang::ir::Offset(vec![0, 0]))]
        );
    }

    #[test]
    fn temp_inserted_even_for_aligned_self_reference() {
        // Fragment (4): A := A + A (aligned) — still split; contraction
        // is what removes it later.
        let np = norm(&format!("{P} begin [R] A := A + A; end"));
        assert_eq!(np.compiler_temps(), 1);
    }

    #[test]
    fn blocks_split_at_control_flow() {
        let np = norm(&format!(
            "{P} begin [R] A := 1.0; for k := 1 to 2 do [R] B := A; end; [R] C := B; end"
        ));
        assert_eq!(np.blocks.len(), 3);
        assert_eq!(np.body.len(), 3);
        assert!(matches!(np.body[1], NStmt::For { .. }));
    }

    #[test]
    fn scalar_and_reduce_stay_in_block() {
        let np = norm(&format!(
            "{P} begin [R] A := 1.0; s := 1.0 + +<< [R] A; [R] B := A + s; end"
        ));
        assert_eq!(np.blocks.len(), 1);
        let b = &np.blocks[0];
        assert_eq!(b.stmts.len(), 4); // array, hoisted reduce, scalar, array
        assert!(matches!(b.stmts[1], BStmt::Reduce { .. }));
        assert!(matches!(b.stmts[2], BStmt::Scalar { .. }));
    }

    #[test]
    fn direct_reduction_needs_no_hidden_scalar() {
        let np = norm(&format!("{P} begin [R] A := 1.0; s := +<< [R] A; end"));
        let b = &np.blocks[0];
        assert_eq!(b.stmts.len(), 2); // array, reduce — no copy statement
        let BStmt::Reduce { lhs, .. } = &b.stmts[1] else {
            panic!()
        };
        assert_eq!(np.program.scalar(*lhs).name, "s");
    }

    #[test]
    fn candidates_user_temp() {
        // B is written then read, only in one block; A is live-in; C is
        // written but never read (output).
        let np = norm(&format!("{P} begin [R] B := A + A; [R] C := B * B; end"));
        let cand = contraction_candidates(&np);
        let names = np.program.array_names();
        assert_eq!(cand[names["A"].0 as usize], None);
        assert_eq!(cand[names["B"].0 as usize], Some(0));
        assert_eq!(cand[names["C"].0 as usize], None);
    }

    #[test]
    fn candidates_cross_block_array_rejected() {
        let np = norm(&format!(
            "{P} begin [R] B := A; for k := 1 to 2 do [R] C := B; s := +<< [R] C; end; end"
        ));
        let cand = contraction_candidates(&np);
        let names = np.program.array_names();
        assert_eq!(
            cand[names["B"].0 as usize], None,
            "B is read in another block"
        );
        assert_eq!(
            cand[names["C"].0 as usize],
            Some(1),
            "C lives within the loop body block"
        );
    }

    #[test]
    fn candidates_read_before_write_rejected() {
        // Fragment (3)-style: C is read (stale value) before being written.
        let np = norm(&format!(
            "{P} begin [R] B := A + C@w; [R] C := A * A; s := +<< [R] B; end"
        ));
        let cand = contraction_candidates(&np);
        let names = np.program.array_names();
        assert_eq!(cand[names["C"].0 as usize], None);
        assert_eq!(cand[names["B"].0 as usize], Some(0));
    }

    #[test]
    fn compiler_temps_are_candidates() {
        let np = norm(&format!("{P} begin [R] A := A + A; end"));
        let cand = contraction_candidates(&np);
        let tid = np.program.array_by_name("_t0").unwrap();
        assert_eq!(cand[tid.0 as usize], Some(0));
    }

    #[test]
    fn empty_then_else_blocks() {
        let np = norm(&format!("{P} begin if s > 0.0 then [R] A := 1.0; end; end"));
        assert_eq!(np.blocks.len(), 1);
        let NStmt::If {
            then_body,
            else_body,
            ..
        } = &np.body[0]
        else {
            panic!()
        };
        assert_eq!(then_body.len(), 1);
        assert!(else_body.is_empty());
    }
}
