//! Fusion partitions (Definition 5), contractibility (Definition 6),
//! `GROW`, and the fusion algorithms of Section 4.1:
//! `FUSION-FOR-CONTRACTION` (Figure 3), fusion for locality (the same
//! algorithm without the `CONTRACTIBLE?` test), and greedy pairwise fusion
//! (the paper's `f4` transformation).

use crate::asdg::{Asdg, DefId, VarLabel};
use crate::depvec::DepKind;
use crate::loopstruct::find_loop_structure;
use crate::normal::Block;
use crate::verify::{Diagnostic, Stage};
use std::collections::BTreeSet;
use zlang::ir::Program;

/// A fusion partition of a block's statements into fusible clusters.
///
/// Cluster ids are stable small integers; merged clusters keep the smallest
/// id involved (Figure 3, lines 8–9) and vacated ids become empty.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    cluster_of: Vec<usize>,
    clusters: Vec<Vec<usize>>,
}

impl Partition {
    /// The trivial partition: one statement per cluster.
    pub fn trivial(n: usize) -> Self {
        Partition {
            cluster_of: (0..n).collect(),
            clusters: (0..n).map(|i| vec![i]).collect(),
        }
    }

    /// The cluster containing a statement.
    ///
    /// # Panics
    ///
    /// Panics if `stmt` is out of range.
    pub fn cluster_of(&self, stmt: usize) -> usize {
        self.cluster_of[stmt]
    }

    /// The statements of a cluster, in program order.
    pub fn cluster(&self, id: usize) -> &[usize] {
        &self.clusters[id]
    }

    /// Ids of non-empty clusters, ascending.
    pub fn live_clusters(&self) -> Vec<usize> {
        (0..self.clusters.len())
            .filter(|&i| !self.clusters[i].is_empty())
            .collect()
    }

    /// Number of non-empty clusters (the paper's `l`).
    pub fn len(&self) -> usize {
        self.clusters.iter().filter(|c| !c.is_empty()).count()
    }

    /// True if there are no clusters (empty block).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Merges a set of cluster ids into the smallest id in the set.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or contains an empty cluster.
    pub fn merge(&mut self, ids: &BTreeSet<usize>) -> usize {
        let &target = ids
            .first()
            .expect("invariant: merge callers pass at least one cluster id");
        let mut stmts = Vec::new();
        for &id in ids {
            assert!(!self.clusters[id].is_empty(), "merging a dead cluster");
            stmts.append(&mut self.clusters[id]);
        }
        stmts.sort_unstable();
        for &s in &stmts {
            self.cluster_of[s] = target;
        }
        self.clusters[target] = stmts;
        target
    }

    /// The statement set covered by a set of cluster ids.
    fn stmts_of(&self, ids: &BTreeSet<usize>) -> Vec<usize> {
        let mut out: Vec<usize> = ids
            .iter()
            .flat_map(|&i| self.clusters[i].iter().copied())
            .collect();
        out.sort_unstable();
        out
    }
}

/// Options controlling fusion.
#[derive(Debug, Clone, Default)]
pub struct FusionOpts {
    /// Pairs of statements that must not share a cluster. Used by the
    /// simulated runtime's *favor communication* policy (Section 5.5):
    /// fusing would consume the independent computation that communication
    /// pipelining needs to hide latency.
    pub forbidden_pairs: Vec<(usize, usize)>,
    /// Reject any fusion whose merged cluster would carry a non-null anti
    /// or output dependence. This models the limitation the paper observes
    /// in the APR and Cray compilers (Section 5.1): they "cannot fuse loops
    /// that carry anti-dependences". Our algorithm never needs this — it
    /// legalizes such fusions with loop reversal/interchange.
    pub forbid_loop_carried_anti: bool,
}

/// Fusion context for one basic block.
pub struct FusionCtx<'a> {
    /// Program declarations.
    pub program: &'a Program,
    /// The block being fused.
    pub block: &'a Block,
    /// The block's dependence graph.
    pub asdg: &'a Asdg,
    /// Options.
    pub opts: FusionOpts,
}

impl<'a> FusionCtx<'a> {
    /// Creates a context with default options.
    pub fn new(program: &'a Program, block: &'a Block, asdg: &'a Asdg) -> Self {
        FusionCtx {
            program,
            block,
            asdg,
            opts: FusionOpts::default(),
        }
    }

    /// `GROW(c, G)` (Section 4.1): the clusters outside `c` that lie on a
    /// dependence path from `c` back to `c` — exactly the clusters that
    /// would end up inside an inter-cluster cycle if `c` fused without
    /// them.
    pub fn grow(&self, part: &Partition, c: &BTreeSet<usize>) -> BTreeSet<usize> {
        // Chaos-testing hook: lets the supervisor suite prove that a panic
        // deep inside fusion degrades cleanly instead of taking the
        // process down. A no-op unless a fault plan is installed.
        testkit::faults::maybe_panic(testkit::faults::FaultSite::FuseGrow);
        let nclusters = part.clusters.len();
        // Cluster-level adjacency.
        let mut fwd = vec![Vec::new(); nclusters];
        let mut bwd = vec![Vec::new(); nclusters];
        for e in &self.asdg.edges {
            let (cs, cd) = (part.cluster_of(e.src), part.cluster_of(e.dst));
            if cs != cd {
                fwd[cs].push(cd);
                bwd[cd].push(cs);
            }
        }
        let reach = |adj: &Vec<Vec<usize>>| -> Vec<bool> {
            let mut seen = vec![false; nclusters];
            let mut stack: Vec<usize> = c.iter().copied().collect();
            while let Some(v) = stack.pop() {
                for &w in &adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            seen
        };
        let f = reach(&fwd);
        let b = reach(&bwd);
        (0..nclusters)
            .filter(|&v| f[v] && b[v] && !c.contains(&v))
            .collect()
    }

    /// `FUSION-PARTITION?` (Definition 5) for the hypothetical merge of the
    /// clusters in `c`. On success returns the loop structure vector that
    /// legalizes the merged cluster (condition (iv), via
    /// `FIND-LOOP-STRUCTURE`).
    ///
    /// Returns `None` if any statement is unfusable, regions differ, an
    /// intra-cluster flow dependence has a non-null UDV (condition (ii)),
    /// a scalar or cross-region dependence would become intra-cluster, a
    /// forbidden pair would co-locate, or no legal loop structure exists.
    pub fn merged_ok(&self, part: &Partition, c: &BTreeSet<usize>) -> Option<Vec<i8>> {
        let stmts = part.stmts_of(c);
        debug_assert!(!stmts.is_empty());
        // (fusability + condition (i): common region)
        let mut region = None;
        for &s in &stmts {
            let st = &self.block.stmts[s];
            if stmts.len() > 1 && !st.is_fusable() {
                return None;
            }
            if let Some(r) = st.region() {
                match region {
                    None => region = Some(r),
                    Some(r0) if r0 != r => return None,
                    _ => {}
                }
            }
        }
        let Some(region) = region else {
            // A lone scalar statement: trivially a valid singleton cluster
            // with no loops.
            return Some(Vec::new());
        };
        let rank = self.program.region(region).rank();
        // Favor-communication policy: forbidden pairs must stay apart.
        let in_set = |s: usize| stmts.binary_search(&s).is_ok();
        if stmts.len() > 1 {
            for &(a, b) in &self.opts.forbidden_pairs {
                if in_set(a) && in_set(b) {
                    return None;
                }
            }
        }
        // Conditions (ii) and (iv) over intra-cluster dependences.
        let mut deps = Vec::new();
        for e in &self.asdg.edges {
            if !(in_set(e.src) && in_set(e.dst)) {
                continue;
            }
            for l in &e.labels {
                match (&l.var, &l.udv) {
                    (VarLabel::Scalar(_), _) => return None,
                    (VarLabel::Array(_), None) => return None,
                    (VarLabel::Array(_), Some(u)) => {
                        if l.kind == DepKind::Flow && !u.is_null() {
                            return None; // condition (ii)
                        }
                        if self.opts.forbid_loop_carried_anti
                            && stmts.len() > 1
                            && l.kind != DepKind::Flow
                            && !u.is_null()
                        {
                            return None; // commercial-compiler limitation model
                        }
                        deps.push(u.clone());
                    }
                }
            }
        }
        find_loop_structure(&deps, rank)
    }

    /// `CONTRACTIBLE?` (Definition 6) for definition `x`, assuming the
    /// clusters in `c` fuse: every flow dependence due to `x` must have
    /// both endpoints inside `c` and a null unconstrained distance vector.
    ///
    /// (Anti/output dependences between *different* live ranges of `x`'s
    /// array are ordering constraints, not contraction blockers — the
    /// paper's footnote 2 splits ranges for exactly this reason.)
    pub fn contractible_given(&self, x: DefId, part: &Partition, c: &BTreeSet<usize>) -> bool {
        for &s in &self.asdg.stmts_of_def(x) {
            if !c.contains(&part.cluster_of(s)) {
                return false;
            }
        }
        for (src, dst, l) in self.asdg.labels_of_def(x) {
            if l.kind != DepKind::Flow {
                continue;
            }
            if !c.contains(&part.cluster_of(src)) || !c.contains(&part.cluster_of(dst)) {
                return false;
            }
            match &l.udv {
                Some(u) if u.is_null() => {}
                _ => return false,
            }
        }
        true
    }

    /// `FUSION-FOR-CONTRACTION` (Figure 3). `candidates` must be sorted by
    /// decreasing reference weight (see [`crate::weights::sort_by_weight`]).
    pub fn fusion_for_contraction(&self, part: &mut Partition, candidates: &[DefId]) {
        for &x in candidates {
            let mut c: BTreeSet<usize> = self
                .asdg
                .stmts_of_def(x)
                .iter()
                .map(|&s| part.cluster_of(s))
                .collect();
            if c.is_empty() {
                continue;
            }
            c.extend(self.grow(part, &c));
            if self.contractible_given(x, part, &c) && self.merged_ok(part, &c).is_some() {
                part.merge(&c);
            }
        }
    }

    /// Fusion for locality: identical to `FUSION-FOR-CONTRACTION` but
    /// without the `CONTRACTIBLE?` predicate (Section 4.1) — statements
    /// sharing references to heavy arrays are fused to exploit temporal
    /// reuse.
    pub fn fusion_for_locality(&self, part: &mut Partition, candidates: &[DefId]) {
        for &x in candidates {
            let mut c: BTreeSet<usize> = self
                .asdg
                .stmts_of_def(x)
                .iter()
                .map(|&s| part.cluster_of(s))
                .collect();
            if c.len() < 2 {
                continue;
            }
            c.extend(self.grow(part, &c));
            if self.merged_ok(part, &c).is_some() {
                part.merge(&c);
            }
        }
    }

    /// Greedy pairwise fusion (the paper's `f4`): repeatedly merge any two
    /// clusters whose union (plus `GROW`) forms a valid fusion partition,
    /// until a fixpoint.
    pub fn pairwise_fusion(&self, part: &mut Partition) {
        loop {
            let live = part.live_clusters();
            let mut merged = false;
            'pairs: for (i, &ci) in live.iter().enumerate() {
                for &cj in &live[i + 1..] {
                    let mut c: BTreeSet<usize> = [ci, cj].into_iter().collect();
                    c.extend(self.grow(part, &c));
                    if self.merged_ok(part, &c).is_some() {
                        part.merge(&c);
                        merged = true;
                        break 'pairs;
                    }
                }
            }
            if !merged {
                return;
            }
        }
    }

    /// Distinct arrays referenced (read or written) by a set of statements
    /// — a proxy for the number of concurrent memory streams in the fused
    /// loop.
    pub fn distinct_arrays(&self, stmts: &[usize]) -> usize {
        let mut arrays = BTreeSet::new();
        for &s in stmts {
            let st = &self.block.stmts[s];
            for (a, _) in st.reads() {
                arrays.insert(a);
            }
            if let Some(a) = st.lhs_array() {
                arrays.insert(a);
            }
        }
        arrays.len()
    }

    /// Greedy pairwise fusion bounded by spatial-locality sensitivity: a
    /// merge is performed only if the merged cluster references at most
    /// `max_arrays` distinct arrays. This implements the extension the
    /// paper leaves as future work after observing that arbitrary fusion
    /// (`f4`) "increases capacity and conflict misses" (Section 5.4) — a
    /// fused loop streaming more arrays than the cache has room for evicts
    /// its own reuse.
    pub fn pairwise_fusion_bounded(&self, part: &mut Partition, max_arrays: usize) {
        loop {
            let live = part.live_clusters();
            let mut merged = false;
            'pairs: for (i, &ci) in live.iter().enumerate() {
                for &cj in &live[i + 1..] {
                    let mut c: BTreeSet<usize> = [ci, cj].into_iter().collect();
                    c.extend(self.grow(part, &c));
                    let stmts = part.stmts_of(&c);
                    if self.distinct_arrays(&stmts) > max_arrays {
                        continue;
                    }
                    if self.merged_ok(part, &c).is_some() {
                        part.merge(&c);
                        merged = true;
                        break 'pairs;
                    }
                }
            }
            if !merged {
                return;
            }
        }
    }

    /// Applies Definition 6 against a *final* partition: which of the given
    /// candidate definitions are contractible.
    pub fn contracted_defs(&self, part: &Partition, candidates: &[DefId]) -> Vec<DefId> {
        candidates
            .iter()
            .copied()
            .filter(|&x| {
                let c: BTreeSet<usize> = self
                    .asdg
                    .stmts_of_def(x)
                    .iter()
                    .map(|&s| part.cluster_of(s))
                    .collect();
                c.len() <= 1 && self.contractible_given(x, part, &c)
            })
            .collect()
    }

    /// Validates a partition against Definition 5, independently of the
    /// incremental checks the fusion methods perform:
    ///
    /// 1. every cluster's statements iterate one common region and every
    ///    multi-statement cluster contains only fusable statements;
    /// 2. intra-cluster flow dependences have null UDVs and no scalar or
    ///    cross-region dependence is intra-cluster;
    /// 3. the inter-cluster dependence graph is acyclic;
    /// 4. a legal loop structure vector exists per cluster.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] describing the first violated condition.
    pub fn validate(&self, part: &Partition) -> Result<(), Diagnostic> {
        for cluster in part.live_clusters() {
            let stmts = part.cluster(cluster);
            // Condition (i), checked explicitly so a region-spanning
            // cluster is named as such rather than surfacing indirectly
            // through a missing UDV.
            let mut regions: Vec<_> = stmts
                .iter()
                .filter_map(|&s| self.block.stmts[s].region())
                .collect();
            regions.sort_unstable();
            regions.dedup();
            if regions.len() > 1 {
                let names: Vec<&str> = regions
                    .iter()
                    .map(|&r| self.program.region(r).name.as_str())
                    .collect();
                return Err(Diagnostic::error(
                    Stage::VerifyPartition,
                    format!(
                        "cluster {cluster} (stmts {stmts:?}) violates Definition 5 \
                         condition (i): its statements span regions {}",
                        names.join(", ")
                    ),
                ));
            }
            let c: BTreeSet<usize> = [cluster].into_iter().collect();
            if self.merged_ok(part, &c).is_none() {
                return Err(Diagnostic::error(
                    Stage::VerifyPartition,
                    format!("cluster {cluster} (stmts {stmts:?}) violates Definition 5"),
                ));
            }
        }
        // Acyclicity: program order is a topological witness unless an
        // inter-cluster edge pair forms a cycle; check with Kahn's
        // algorithm over cluster ids.
        let live = part.live_clusters();
        let idx: std::collections::HashMap<usize, usize> =
            live.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let mut indeg = vec![0usize; live.len()];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); live.len()];
        let mut seen = BTreeSet::new();
        for e in &self.asdg.edges {
            let (a, b) = (part.cluster_of(e.src), part.cluster_of(e.dst));
            if a != b && seen.insert((a, b)) {
                succ[idx[&a]].push(idx[&b]);
                indeg[idx[&b]] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..live.len()).filter(|&i| indeg[i] == 0).collect();
        let mut done = 0;
        while let Some(i) = ready.pop() {
            done += 1;
            for &j in &succ[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    ready.push(j);
                }
            }
        }
        if done != live.len() {
            return Err(Diagnostic::error(
                Stage::VerifyPartition,
                "inter-cluster dependence cycle",
            ));
        }
        Ok(())
    }

    /// Computes the loop structure for one (final) cluster.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is not a valid fusible cluster — `merged_ok`
    /// is an invariant maintained by the fusion methods.
    pub fn cluster_structure(&self, part: &Partition, cluster: usize) -> Vec<i8> {
        let c: BTreeSet<usize> = [cluster].into_iter().collect();
        self.merged_ok(part, &c)
            .expect("cluster produced by fusion must have a legal loop structure")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asdg::build;
    use crate::normal::normalize;
    use crate::weights::sort_by_weight;

    struct Setup {
        np: crate::normal::NormProgram,
        asdg: Asdg,
    }

    fn setup(src: &str) -> Setup {
        let np = normalize(&zlang::compile(src).unwrap());
        assert_eq!(np.blocks.len(), 1);
        let asdg = build(&np.program, &np.blocks[0]);
        Setup { np, asdg }
    }

    fn candidates(s: &Setup) -> Vec<DefId> {
        let cand = crate::normal::contraction_candidates(&s.np);
        let mut defs = Vec::new();
        for (i, c) in cand.iter().enumerate() {
            if c.is_some() {
                defs.extend(s.asdg.defs_of(zlang::ir::ArrayId(i as u32)));
            }
        }
        sort_by_weight(
            &s.np.program,
            &s.np.blocks[0],
            &s.asdg,
            defs,
            &s.np.default_binding(),
        )
    }

    fn run_contraction(s: &Setup) -> (Partition, Vec<DefId>) {
        let ctx = FusionCtx::new(&s.np.program, &s.np.blocks[0], &s.asdg);
        let mut part = Partition::trivial(s.asdg.n);
        let cands = candidates(s);
        ctx.fusion_for_contraction(&mut part, &cands);
        let contracted = ctx.contracted_defs(&part, &cands);
        (part, contracted)
    }

    const P: &str = "program p; config n : int = 8; region R = [1..n, 1..n]; \
                     direction w = [0, -1]; var A, B, C : [R] float; var s : float; ";

    #[test]
    fn fuses_and_contracts_user_temp() {
        // Fragment (6): B := A+A; C := B — B contracts, both stmts fuse.
        let s = setup(&format!(
            "{P} begin [R] B := A + A; [R] C := B; s := +<< [R] C; end"
        ));
        let (part, contracted) = run_contraction(&s);
        assert_eq!(part.cluster_of(0), part.cluster_of(1));
        assert_eq!(
            contracted.len(),
            2,
            "B and C contract (C feeds the reduce in-cluster)"
        );
    }

    #[test]
    fn contraction_blocked_by_nonnull_flow() {
        // C := A; B := C@w — C's read has offset, flow UDV non-null.
        let s = setup(&format!(
            "{P} begin [R] C := A; [R] B := C@w; s := +<< [R] B; end"
        ));
        let (part, contracted) = run_contraction(&s);
        let names = s.np.program.array_names();
        let c_def = s.asdg.defs_of(names["C"])[0];
        assert!(!contracted.contains(&c_def));
        // And the statements were NOT fused for contraction's sake.
        assert_ne!(part.cluster_of(0), part.cluster_of(1));
    }

    #[test]
    fn grow_pulls_in_intermediate_cluster() {
        // B := A; C := B@w; D... use: B read by stmt1 (offset) and stmt2
        // (aligned). Fusing stmts {0, 2} for B would create a cycle through
        // stmt 1 unless GROW pulls it in.
        let s = setup(&format!(
            "{P} begin [R] B := A; [R] C := B@w; [R] A := B + C; s := +<< [R] A; end"
        ));
        let ctx = FusionCtx::new(&s.np.program, &s.np.blocks[0], &s.asdg);
        let part = Partition::trivial(s.asdg.n);
        let c: BTreeSet<usize> = [0usize, 2].into_iter().collect();
        let grown = ctx.grow(&part, &c);
        assert!(grown.contains(&1), "stmt 1 lies on the path 0 -> 1 -> 2");
    }

    #[test]
    fn anti_dependence_fused_via_loop_reversal() {
        // Fragment (7) shape: B := A + C@w; C := B.
        // Fusing both statements carries an anti dependence on C with
        // u = (0,-1); FIND-LOOP-STRUCTURE must reverse dimension 2.
        let s = setup(&format!("{P} begin [R] B := A + C@w; [R] C := B; end"));
        let ctx = FusionCtx::new(&s.np.program, &s.np.blocks[0], &s.asdg);
        let mut part = Partition::trivial(s.asdg.n);
        let cands = candidates(&s);
        ctx.fusion_for_contraction(&mut part, &cands);
        assert_eq!(
            part.cluster_of(0),
            part.cluster_of(1),
            "fusion must succeed via reversal"
        );
        let p = ctx.cluster_structure(&part, part.cluster_of(0));
        assert_eq!(p, vec![1, -2]);
        let contracted = ctx.contracted_defs(&part, &cands);
        let names = s.np.program.array_names();
        assert!(contracted.contains(&s.asdg.defs_of(names["B"])[0]));
    }

    #[test]
    fn scalar_statement_blocks_cluster_membership() {
        let s = setup(&format!(
            "{P} begin [R] B := A; s := 2.0; [R] C := B * s; s := +<< [R] C; end"
        ));
        let ctx = FusionCtx::new(&s.np.program, &s.np.blocks[0], &s.asdg);
        let part = Partition::trivial(s.asdg.n);
        // Try to merge the scalar statement with an array statement.
        let c: BTreeSet<usize> = [0usize, 1].into_iter().collect();
        assert!(ctx.merged_ok(&part, &c).is_none());
    }

    #[test]
    fn reduce_can_join_cluster_and_enable_contraction() {
        let s = setup(&format!("{P} begin [R] B := A * A; s := +<< [R] B; end"));
        let (part, contracted) = run_contraction(&s);
        assert_eq!(part.cluster_of(0), part.cluster_of(1));
        assert_eq!(contracted.len(), 1);
    }

    #[test]
    fn forbidden_pairs_block_fusion() {
        let s = setup(&format!(
            "{P} begin [R] B := A + A; [R] C := B; s := +<< [R] C; end"
        ));
        let mut ctx = FusionCtx::new(&s.np.program, &s.np.blocks[0], &s.asdg);
        ctx.opts.forbidden_pairs = vec![(0, 1)];
        let mut part = Partition::trivial(s.asdg.n);
        let cands = candidates(&s);
        ctx.fusion_for_contraction(&mut part, &cands);
        assert_ne!(part.cluster_of(0), part.cluster_of(1));
    }

    #[test]
    fn pairwise_fuses_independent_statements() {
        // Fragment (1): B := A+A; C := A*A — no dependences; pairwise
        // fusion merges them (and contraction fusion would not, since
        // neither B nor C is contractible: both feed later reduces... make
        // them dead-ish by reducing both).
        let s = setup(&format!("{P} begin [R] B := A + A; [R] C := A * A; end"));
        let ctx = FusionCtx::new(&s.np.program, &s.np.blocks[0], &s.asdg);
        let mut part = Partition::trivial(s.asdg.n);
        ctx.pairwise_fusion(&mut part);
        assert_eq!(part.len(), 1);
    }

    #[test]
    fn pairwise_respects_illegal_merges() {
        // Statements over different regions can never fuse.
        let s = setup(
            "program p; config n : int = 8; region R1 = [1..n]; region R2 = [2..n]; \
             var A, B, C : [R1] float; begin [R1] B := A; [R2] C := A@[-1]; end",
        );
        let ctx = FusionCtx::new(&s.np.program, &s.np.blocks[0], &s.asdg);
        let mut part = Partition::trivial(s.asdg.n);
        ctx.pairwise_fusion(&mut part);
        assert_eq!(part.len(), 2);
    }

    #[test]
    fn locality_fusion_merges_readers_of_shared_array() {
        // Fragment (1): fusion for locality merges the two readers of A
        // even though nothing contracts.
        let s = setup(&format!("{P} begin [R] B := A + A; [R] C := A * A; end"));
        let ctx = FusionCtx::new(&s.np.program, &s.np.blocks[0], &s.asdg);
        let mut part = Partition::trivial(s.asdg.n);
        // All defs sorted by weight — A's live-in def is the heavy one.
        let all: Vec<DefId> = (0..s.asdg.defs.len() as u32).map(DefId).collect();
        let sorted = sort_by_weight(
            &s.np.program,
            &s.np.blocks[0],
            &s.asdg,
            all,
            &s.np.default_binding(),
        );
        ctx.fusion_for_locality(&mut part, &sorted);
        assert_eq!(part.cluster_of(0), part.cluster_of(1));
    }

    #[test]
    fn fragment3_fuses_despite_loop_carried_anti_dependence() {
        // Fragment (3): B := A@w + C@w; C := A*A. The commercial compilers
        // that cannot fuse across loop-carried anti-dependences fail here;
        // our algorithm reverses the loop.
        let s = setup(&format!(
            "{P} begin [R] B := A@w + C@w; [R] C := A * A; end"
        ));
        let ctx = FusionCtx::new(&s.np.program, &s.np.blocks[0], &s.asdg);
        let mut part = Partition::trivial(s.asdg.n);
        let c: BTreeSet<usize> = [0usize, 1].into_iter().collect();
        let p = ctx.merged_ok(&part, &c).expect("fusable via reversal");
        assert_eq!(p, vec![1, -2]);
        ctx.pairwise_fusion(&mut part);
        assert_eq!(part.len(), 1);
    }

    #[test]
    fn bounded_pairwise_respects_the_cap() {
        // Four independent statements reading distinct arrays: unbounded
        // pairwise fuses all; a cap of 3 distinct arrays stops early.
        let s = setup(
            "program p; config n : int = 8; region R = [1..n, 1..n]; \
             var A, B, C, D, E, F, G, H : [R] float; begin \
             [R] B := A; [R] D := C; [R] F := E; [R] H := G; end",
        );
        let ctx = FusionCtx::new(&s.np.program, &s.np.blocks[0], &s.asdg);
        let mut unbounded = Partition::trivial(s.asdg.n);
        ctx.pairwise_fusion(&mut unbounded);
        assert_eq!(unbounded.len(), 1);
        let mut bounded = Partition::trivial(s.asdg.n);
        ctx.pairwise_fusion_bounded(&mut bounded, 4);
        assert_eq!(bounded.len(), 2, "pairs of statements (4 arrays each) only");
        for cluster in bounded.live_clusters() {
            assert!(ctx.distinct_arrays(bounded.cluster(cluster)) <= 4);
        }
    }

    #[test]
    fn distinct_arrays_counts_reads_and_writes_once() {
        let s = setup(&format!("{P} begin [R] B := A + A; [R] C := B; end"));
        let ctx = FusionCtx::new(&s.np.program, &s.np.blocks[0], &s.asdg);
        assert_eq!(ctx.distinct_arrays(&[0]), 2); // A, B
        assert_eq!(ctx.distinct_arrays(&[0, 1]), 3); // A, B, C
    }

    #[test]
    fn greedy_loop_structure_is_complete_on_small_space() {
        // Exhaustively compare FIND-LOOP-STRUCTURE against brute force over
        // all signed permutations for every dependence pair with components
        // in {-1,0,1}^2: the greedy must find a structure whenever one
        // exists.
        use crate::loopstruct::find_loop_structure;
        let vals = [-1i64, 0, 1];
        let all_structures: [[i8; 2]; 8] = [
            [1, 2],
            [1, -2],
            [-1, 2],
            [-1, -2],
            [2, 1],
            [2, -1],
            [-2, 1],
            [-2, -1],
        ];
        let mut udvs = Vec::new();
        for a in vals {
            for b in vals {
                udvs.push(crate::depvec::Udv(vec![a, b]));
            }
        }
        for u1 in &udvs {
            for u2 in &udvs {
                let deps = vec![u1.clone(), u2.clone()];
                let brute = all_structures
                    .iter()
                    .find(|p| deps.iter().all(|u| u.preserved_by(&p[..])));
                let greedy = find_loop_structure(&deps, 2);
                assert_eq!(
                    greedy.is_some(),
                    brute.is_some(),
                    "deps {u1} {u2}: greedy {greedy:?}, brute {brute:?}"
                );
            }
        }
    }

    #[test]
    fn validate_accepts_fused_and_rejects_corrupt_partitions() {
        let s = setup(&format!(
            "{P} begin [R] B := A + A; [R] C := B; s := +<< [R] C; end"
        ));
        let ctx = FusionCtx::new(&s.np.program, &s.np.blocks[0], &s.asdg);
        let mut part = Partition::trivial(s.asdg.n);
        assert!(
            ctx.validate(&part).is_ok(),
            "trivial partition is always valid"
        );
        let cands = candidates(&s);
        ctx.fusion_for_contraction(&mut part, &cands);
        assert!(ctx.validate(&part).is_ok());
        // Hand-corrupt: force a cross-region-style violation by merging a
        // scalar-dependent pair... here: merge everything including a
        // would-be-illegal shape from a different program.
        let s2 = setup(
            "program p; config n : int = 8; region R1 = [1..n]; region R2 = [2..n]; \
             var A, B, C : [R1] float; begin [R1] B := A; [R2] C := A@[-1]; end",
        );
        let ctx2 = FusionCtx::new(&s2.np.program, &s2.np.blocks[0], &s2.asdg);
        let mut bad = Partition::trivial(s2.asdg.n);
        bad.merge(&[0usize, 1].into_iter().collect());
        let err = ctx2.validate(&bad).unwrap_err();
        assert!(err.message.contains("Definition 5"), "{err}");
        assert!(err.message.contains("span regions"), "{err}");
    }

    #[test]
    fn merge_keeps_smallest_cluster_id() {
        let mut part = Partition::trivial(4);
        let id = part.merge(&[1usize, 3].into_iter().collect());
        assert_eq!(id, 1);
        assert_eq!(part.cluster(1), &[1, 3]);
        assert_eq!(part.cluster_of(3), 1);
        assert_eq!(part.len(), 3);
        assert_eq!(part.live_clusters(), vec![0, 1, 2]);
    }
}
