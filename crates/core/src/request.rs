//! One run configuration to rule them all: [`RunRequest`].
//!
//! Before this module existed, three callers each threaded their own
//! copy of "how should this program be compiled and executed": `zlc`
//! plumbed a dozen individual flags, the [`Supervisor`] had its own
//! builder knobs, and the simulated runtime's `ExecConfig` repeated the
//! engine/threads/limits triple a third time. `RunRequest` is the single
//! builder-style value all of them now consume — the level (with the
//! `+dse`/`+rce`/`+rce2` cleanup suffixes), the engine, the worker-thread count,
//! verification, resource budgets, and config-variable overrides — with
//! adapters producing whichever downstream form a caller needs:
//! [`RunRequest::pipeline`], [`RunRequest::supervisor`],
//! [`RunRequest::exec_opts`], [`RunRequest::limits`], and
//! [`RunRequest::binding_for`]. The serving path
//! ([`mod@crate::serve`], [`crate::cache`]) keys its compile cache on the
//! request's `(level, dse, rce, rce2, engine, simd)` coordinates.
//!
//! ```
//! use fusion_core::request::RunRequest;
//! use fusion_core::Level;
//! use loopir::Engine;
//!
//! let req = RunRequest::new()
//!     .with_level_spec("c2+f3+dse")
//!     .unwrap()
//!     .with_engine(Engine::VmVerified)
//!     .with_set("n", 32);
//! assert_eq!(req.level, Level::C2F3);
//! assert!(req.dse && !req.rce);
//! assert_eq!(req.level_spec(), "c2+f3+dse");
//! ```

use crate::pipeline::{Level, Pipeline};
use crate::supervisor::{Budgets, Supervisor};
use crate::verify::VerifyLevel;
use loopir::{Engine, ExecLimits, ExecOpts};
use std::fmt;
use std::time::Duration;
use zlang::ir::{ConfigBinding, Program};

/// A complete, self-describing run configuration: what to compile
/// (level + cleanup passes), how to execute it (engine, threads,
/// budgets), and under which config bindings. Built fluently, consumed
/// by `zlc`, the [`Supervisor`], the compile cache, and the serve path.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// Optimization level (default [`Level::C2`], matching `zlc`).
    pub level: Level,
    /// Run the dead-statement-elimination cleanup pass (`+dse`).
    pub dse: bool,
    /// Run the redundant-computation-elimination cleanup pass (`+rce`).
    pub rce: bool,
    /// Run the stencil-aware, availability-driven redundancy pass
    /// (`+rce2`), with its rewrites independently re-verified.
    pub rce2: bool,
    /// Execution engine (default [`Engine::Vm`]).
    pub engine: Engine,
    /// Worker threads for [`Engine::VmPar`]; `0` = auto.
    pub threads: usize,
    /// Unrolled f64 lanes for [`Engine::VmSimd`] / [`Engine::VmPar`]
    /// innermost-loop dispatch; `0` = the engine default (4), `1` =
    /// scalar dispatch over the same superinstruction bytecode.
    pub lanes: usize,
    /// Run the translation validator and bytecode verifier, reporting
    /// diagnostics (`zlc --verify`). Does not change generated code, so
    /// the compile cache deliberately ignores it.
    pub verify: bool,
    /// Resource budgets (deadline, fuel, allocation cap).
    pub budgets: Budgets,
    /// Config-variable overrides, applied in order (`--set n=64`).
    pub sets: Vec<(String, i64)>,
}

impl Default for RunRequest {
    fn default() -> Self {
        RunRequest {
            level: Level::C2,
            dse: false,
            rce: false,
            rce2: false,
            engine: Engine::default(),
            threads: 0,
            lanes: 0,
            verify: false,
            budgets: Budgets::none(),
            sets: Vec::new(),
        }
    }
}

impl RunRequest {
    /// The default request: level `c2` on the bytecode VM, no budgets.
    pub fn new() -> Self {
        RunRequest::default()
    }

    /// Sets the optimization level (keeping any `+dse`/`+rce`/`+rce2`
    /// choices).
    pub fn with_level(mut self, level: Level) -> Self {
        self.level = level;
        self
    }

    /// Parses a level *spec*: a paper level name optionally followed by
    /// `+dse` / `+rce` / `+rce2` suffixes in any order
    /// (`"c2+f3+dse+rce2"`), the `zlc --level` grammar.
    ///
    /// # Errors
    ///
    /// Returns a rustc-style message naming the valid levels when the
    /// base level is unknown.
    pub fn with_level_spec(mut self, spec: &str) -> Result<Self, String> {
        let (mut base, mut dse, mut rce, mut rce2) = (spec, false, false, false);
        loop {
            // `+rce2` must be tried before `+rce`, which is its suffix.
            if let Some(rest) = base.strip_suffix("+dse") {
                base = rest;
                dse = true;
            } else if let Some(rest) = base.strip_suffix("+rce2") {
                base = rest;
                rce2 = true;
            } else if let Some(rest) = base.strip_suffix("+rce") {
                base = rest;
                rce = true;
            } else {
                break;
            }
        }
        let level = Level::all()
            .into_iter()
            .find(|l| l.name() == base)
            .ok_or_else(|| {
                format!(
                    "unknown level `{spec}` (expected one of: {}; append `+dse`/`+rce`/`+rce2` \
                     for the cleanup passes)",
                    Level::all().map(|l| l.name()).join(", ")
                )
            })?;
        self.level = level;
        self.dse = dse;
        self.rce = rce;
        self.rce2 = rce2;
        Ok(self)
    }

    /// The level spec string this request round-trips to
    /// (`"c2+f3+dse"`-style).
    pub fn level_spec(&self) -> String {
        format!(
            "{}{}{}{}",
            self.level.name(),
            if self.dse { "+dse" } else { "" },
            if self.rce { "+rce" } else { "" },
            if self.rce2 { "+rce2" } else { "" },
        )
    }

    /// Sets the execution engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Parses and sets the engine from its flag name, accepting the same
    /// aliases as `Engine::from_str` (`interp`, `vm`, `vm-verified`,
    /// `vm-par`, ...).
    ///
    /// # Errors
    ///
    /// Returns the shared `FromStr` message naming every valid engine.
    pub fn with_engine_name(mut self, name: &str) -> Result<Self, String> {
        self.engine = name.parse()?;
        Ok(self)
    }

    /// Sets the worker-thread count for [`Engine::VmPar`] (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the lane width for [`Engine::VmSimd`] / [`Engine::VmPar`]
    /// (`0` = default, `1` = scalar dispatch).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Enables (or disables) verification.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Sets all resource budgets at once.
    pub fn with_budgets(mut self, budgets: Budgets) -> Self {
        self.budgets = budgets;
        self
    }

    /// Sets a wall-clock budget per attempt.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.budgets.deadline = Some(deadline);
        self
    }

    /// Sets an instruction-fuel budget per attempt.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.budgets.fuel = Some(fuel);
        self
    }

    /// Adds a config-variable override.
    pub fn with_set(mut self, name: &str, value: i64) -> Self {
        self.sets.push((name.to_string(), value));
        self
    }

    /// The compile pipeline this request describes (level, cleanup
    /// passes, verification). Callers with pipeline-only concerns (e.g.
    /// `zlc --emit`, `--dimension-contraction`) extend the returned
    /// builder further.
    pub fn pipeline(&self) -> Pipeline<'static> {
        let mut p = Pipeline::new(self.level);
        if self.dse {
            p = p.with_dse();
        }
        if self.rce {
            p = p.with_rce();
        }
        if self.rce2 {
            p = p.with_rce2();
        }
        if self.verify {
            p = p.with_verify(VerifyLevel::Always);
        }
        p
    }

    /// A fault-tolerant [`Supervisor`] at this request's level, engine,
    /// budgets, threads, and bindings.
    pub fn supervisor(&self) -> Supervisor<'static> {
        let mut sup = Supervisor::new(self.level, self.engine)
            .with_budgets(self.budgets)
            .with_threads(self.threads)
            .with_lanes(self.lanes);
        for (name, value) in &self.sets {
            sup = sup.with_binding(name, *value);
        }
        sup
    }

    /// The per-execution engine options.
    pub fn exec_opts(&self) -> ExecOpts {
        ExecOpts {
            threads: self.threads,
            lanes: self.lanes,
        }
    }

    /// The engine limits the budgets imply (the deadline is measured
    /// from the moment of this call).
    pub fn limits(&self) -> ExecLimits {
        self.budgets.limits()
    }

    /// The concrete config binding for a program: defaults overridden by
    /// this request's `--set` pairs, in order.
    ///
    /// # Errors
    ///
    /// Names the first override that matches no config variable.
    pub fn binding_for(&self, program: &Program) -> Result<ConfigBinding, String> {
        let mut binding = ConfigBinding::defaults(program);
        for (name, value) in &self.sets {
            if !binding.set_by_name(program, name, *value) {
                return Err(format!("no config named `{name}`"));
            }
        }
        Ok(binding)
    }
}

impl fmt::Display for RunRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}", self.level_spec(), self.engine)?;
        if self.threads != 0 {
            write!(f, " x{}", self.threads)?;
        }
        for (name, value) in &self.sets {
            write!(f, " {name}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_spec_round_trips() {
        for spec in [
            "baseline",
            "c2+f3",
            "c2+f4+dse+rce",
            "f1+rce",
            "c2+f3+rce2",
            "c2+dse+rce+rce2",
        ] {
            let req = RunRequest::new().with_level_spec(spec).unwrap();
            assert_eq!(req.level_spec(), spec, "{spec}");
        }
        // Suffixes parse in any order but render canonically.
        let req = RunRequest::new().with_level_spec("c2+rce+dse").unwrap();
        assert_eq!(req.level_spec(), "c2+dse+rce");
        // `+rce2` is not mistaken for `+rce`.
        let req = RunRequest::new().with_level_spec("c2+rce2").unwrap();
        assert!(req.rce2 && !req.rce);
    }

    #[test]
    fn bad_level_names_the_valid_ones() {
        let err = RunRequest::new().with_level_spec("o3").unwrap_err();
        assert!(err.contains("unknown level `o3`"), "{err}");
        assert!(err.contains("c2+f3"), "{err}");
    }

    #[test]
    fn bad_engine_names_the_valid_ones() {
        let err = RunRequest::new().with_engine_name("jit").unwrap_err();
        assert!(err.contains("unknown engine `jit`"), "{err}");
        assert!(err.contains("vm-par"), "{err}");
    }

    #[test]
    fn binding_applies_sets_in_order() {
        let p = zlang::compile(
            "program t; config n : int = 4; region R = [1..n]; \
             var A : [R] float; begin end",
        )
        .unwrap();
        let req = RunRequest::new().with_set("n", 9).with_set("n", 7);
        let b = req.binding_for(&p).unwrap();
        assert_eq!(b.get(zlang::ir::ConfigId(0)), 7);
        let err = RunRequest::new()
            .with_set("missing", 1)
            .binding_for(&p)
            .unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn display_is_compact() {
        let req = RunRequest::new()
            .with_level_spec("c2+f3")
            .unwrap()
            .with_engine(Engine::VmPar)
            .with_threads(4)
            .with_set("n", 64);
        assert_eq!(req.to_string(), "c2+f3 on vm-par x4 n=64");
    }

    #[test]
    fn supervisor_and_pipeline_adapters_run() {
        let src = "program t; config n : int = 4; region R = [1..n]; \
             var A : [R] float; var s : float; \
             begin [R] A := 2.0; s := +<< [R] A; end";
        let req = RunRequest::new()
            .with_level_spec("c2+f3")
            .unwrap()
            .with_engine(Engine::VmVerified)
            .with_set("n", 3);
        let run = req.supervisor().run_source(src).unwrap();
        assert_eq!(run.outcome.checksum(), 6.0);
        let opt = req.pipeline().optimize(&zlang::compile(src).unwrap());
        assert_eq!(opt.level, Level::C2F3);
    }
}
