//! The paper's primary contribution: array-level statement fusion and array
//! contraction.
//!
//! This crate implements, faithfully to *Lewis, Lin & Snyder (PLDI 1998)*:
//!
//! * **Normalized array statements** (`[R] f(A1@d1, ..., As@ds)`) and the
//!   normalization pass that inserts compiler temporaries when a statement
//!   reads and writes the same array ([`normal`]).
//! * **Unconstrained distance vectors** (Definition 2) and loop structure
//!   vectors (Definition 4) ([`depvec`]).
//! * The **array statement dependence graph** (Definition 3) with
//!   per-definition live ranges (the paper's footnote 2) ([`asdg`]).
//! * **Reference weights** and the contraction benefit ([`weights`]).
//! * **`FIND-LOOP-STRUCTURE`** (Figure 4) ([`loopstruct`]).
//! * **Fusion partitions** (Definition 5), **contractibility**
//!   (Definition 6), `GROW`, and **`FUSION-FOR-CONTRACTION`** (Figure 3),
//!   plus the fusion-for-locality variant and greedy pairwise fusion
//!   ([`fusion`]).
//! * **Scalarization** of a fusion partition into the `loopir` loop-nest IR
//!   with contracted arrays demoted to loop-local scalars ([`scalarize`]).
//! * The paper's **optimization levels** (`baseline`, `f1`, `c1`, `f2`,
//!   `f3`, `c2`, `c2+f3`, `c2+f4`; Section 5.4) ([`pipeline`]).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use fusion_core::pipeline::{Level, Pipeline};
//!
//! // Figure 5, fragment (6): B is a user temporary.
//! let p = zlang::compile(r#"
//!     program frag6;
//!     config n : int = 16;
//!     region R = [1..n, 1..n];
//!     var A, B, C : [R] float;
//!     begin
//!       [R] B := A + A;
//!       [R] C := B;
//!     end
//! "#)?;
//! let out = Pipeline::new(Level::C2).optimize(&p);
//! assert_eq!(out.contracted_names(), vec!["B"]);
//! assert_eq!(out.scalarized.nest_count(), 1); // both statements fused
//! # Ok(())
//! # }
//! ```

pub mod asdg;
pub mod avail;
pub mod breaker;
pub mod cache;
pub mod depvec;
pub mod explain;
pub mod ext;
pub mod fusion;
pub mod hash;
pub mod loopstruct;
pub mod normal;
pub mod pass;
pub mod pipeline;
pub mod rce2;
pub mod request;
pub mod scalarize;
pub mod serve;
pub mod supervisor;
pub mod verify;
pub mod weights;

pub use breaker::{Admission, BreakerConfig, BreakerState, BreakerStats, CircuitBreakers};
pub use cache::{CacheKey, CacheStats, CachedProgram, ClaimGuard, CompileCache, Lookup};
pub use depvec::Udv;
pub use pass::{CompileSession, Pass, PassId, PassManager, PassResult, PassTrace};
pub use pipeline::{Level, Optimized, Pipeline};
pub use request::RunRequest;
pub use serve::{
    serve, serve_with, Disposition, RequestRecord, RetryPolicy, ServeOptions, ServeReport,
    ServeRequest, ShedCause, ShedPolicy,
};
pub use supervisor::{Budgets, Supervised, Supervisor, SupervisorError, SupervisorReport};
pub use verify::{Diagnostic, VerifyLevel};
