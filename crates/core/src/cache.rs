//! The sharded, content-addressed compile cache behind the serving path.
//!
//! Every request that reaches the server is "compile this program at
//! this level for this engine under this binding, then run it". The
//! compile half is deterministic and expensive (normalize → ASDG →
//! FUSION-FOR-CONTRACTION → scalarize → bytecode → verify); the run half
//! is cheap per-request state. [`CompileCache`] memoizes the compile
//! half: keys are [`CacheKey`] — the structural digest of the program
//! *and* its concrete config binding ([`crate::hash::key_hash`]) plus
//! the explicit `(level, dse, rce, rce2, engine, simd)` coordinates — and values are
//! [`CachedProgram`] — the `Arc`-shared scalarized program plus, for the
//! VM engines, the compiled-and-verified
//! [`SharedProgram`] handle. A hit skips the
//! `PassManager`, the bytecode compiler, and the verifier entirely: it
//! is one lookup plus one `Arc` bump plus run-state allocation.
//!
//! Concurrency model: the map is split into shards, each behind its own
//! `Mutex`, selected by key hash — worker threads hitting different
//! programs rarely contend. Compilation is *single-flight*: the first
//! thread to miss a key claims it ([`CompileCache::claim`] returns a
//! [`ClaimGuard`]); threads missing the same key meanwhile block on the
//! shard's condvar until the claimant publishes (they then count as
//! hits) or abandons — the guard abandons on drop, so a panicking or
//! erroring compile wakes the waiters and the next one claims. No lock
//! is held across compilation, each distinct key compiles exactly once,
//! and the hit/miss counters are deterministic even under concurrency.
//! Eviction is per-shard LRU; hits, misses, insertions, and evictions
//! are counted with atomics ([`CacheStats`]).

use crate::hash;
use crate::pipeline::Level;
use crate::request::RunRequest;
use loopir::{Engine, ExecError, ExecOpts, Executor, Interp, ScalarProgram, SharedProgram};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use zlang::ir::{ConfigBinding, Program};

/// The content address of one compiled artifact.
///
/// The `content` digest covers the program structure and the concrete
/// config binding (see [`crate::hash`]); the remaining fields are
/// carried explicitly so that two compilations that *must* differ —
/// different level, cleanup passes, or engine — can never collide even
/// if the 64-bit digest did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`crate::hash::key_hash`] of (program, binding).
    pub content: u64,
    /// Optimization level the artifact was compiled at.
    pub level: Level,
    /// Whether dead-statement elimination ran.
    pub dse: bool,
    /// Whether redundant-computation elimination ran.
    pub rce: bool,
    /// Whether the stencil-aware availability-driven redundancy pass ran.
    pub rce2: bool,
    /// The engine the artifact was compiled for (decides whether a
    /// [`SharedProgram`] exists and whether it was verified).
    pub engine: Engine,
    /// Whether the superinstruction peephole ran over the bytecode —
    /// derived from the engine (`vm-simd`/`vm-par`), carried explicitly
    /// so the superfused and plain compilations of one program can never
    /// collide.
    pub simd: bool,
}

impl CacheKey {
    /// Computes the key for a program under a binding at explicit
    /// coordinates.
    pub fn compute(
        program: &Program,
        binding: &ConfigBinding,
        level: Level,
        dse: bool,
        rce: bool,
        rce2: bool,
        engine: Engine,
    ) -> Self {
        CacheKey {
            content: hash::key_hash(program, binding),
            level,
            dse,
            rce,
            rce2,
            engine,
            simd: matches!(engine, Engine::VmSimd | Engine::VmPar),
        }
    }

    /// Computes the key a [`RunRequest`] addresses for a program under a
    /// binding.
    pub fn for_request(program: &Program, binding: &ConfigBinding, req: &RunRequest) -> Self {
        CacheKey::compute(
            program, binding, req.level, req.dse, req.rce, req.rce2, req.engine,
        )
    }
}

/// One compiled artifact: everything needed to build an executor
/// without touching the pipeline again.
#[derive(Debug, Clone)]
pub struct CachedProgram {
    /// The scalarized program, shared — the [`Interp`] engine and the
    /// simulated runtime execute this directly.
    pub scalarized: Arc<ScalarProgram>,
    /// The compiled (and, for `vm-verified`/`vm-par`, verified) bytecode
    /// handle; `None` for [`Engine::Interp`].
    pub shared: Option<SharedProgram>,
    /// The binding the artifact was compiled under.
    pub binding: ConfigBinding,
    /// The engine the artifact serves.
    pub engine: Engine,
}

impl CachedProgram {
    /// Builds a fresh executor from the cached artifact: `Vm`
    /// re-instantiation from the shared bytecode for the VM engines
    /// (no recompile, no re-verify), or a new [`Interp`] over the shared
    /// scalarized program.
    pub fn executor(&self, opts: ExecOpts) -> Box<dyn Executor + '_> {
        match &self.shared {
            Some(shared) => self.engine.shared_executor(shared, opts),
            None => Box::new(Interp::new(&self.scalarized, self.binding.clone())),
        }
    }
}

/// Monotonic cache counters, snapshotted by [`CompileCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries published (including re-publications after a race).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries evicted because their circuit breaker tripped
    /// ([`CompileCache::quarantine`]); not counted in `evictions`.
    pub quarantines: u64,
}

impl CacheStats {
    /// Hits over lookups, in `[0, 1]`; `0` before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    value: Arc<CachedProgram>,
    last_used: u64,
    /// Execution-time faults attributed to this artifact since it was
    /// published (see [`CompileCache::note_fault`]). Republishing the key
    /// resets the count: a fresh compile is a fresh artifact.
    faults: u64,
}

struct Shard {
    map: HashMap<CacheKey, Entry>,
    /// Keys some thread is currently compiling; misses on these block on
    /// the shard condvar instead of compiling a duplicate.
    in_flight: HashSet<CacheKey>,
    clock: u64,
}

struct ShardCell {
    state: Mutex<Shard>,
    ready: Condvar,
}

/// The result of [`CompileCache::claim`]: either the cached artifact, or
/// an exclusive license to compile the key.
pub enum Lookup<'a> {
    /// The artifact was cached (possibly after waiting out another
    /// thread's in-flight compile).
    Hit(Arc<CachedProgram>),
    /// Nothing cached and nobody compiling: the caller holds the claim
    /// and must [`ClaimGuard::publish`] or drop it (abandon).
    Miss(ClaimGuard<'a>),
}

/// An exclusive in-flight claim on one [`CacheKey`]. While the guard
/// lives, other threads missing the same key wait instead of compiling.
/// [`publish`](ClaimGuard::publish) fulfils the claim; dropping the
/// guard without publishing (compile error, panic unwind) abandons it,
/// waking the waiters so the next one can claim.
pub struct ClaimGuard<'a> {
    cache: &'a CompileCache,
    key: CacheKey,
    done: bool,
}

impl ClaimGuard<'_> {
    /// The key this claim covers.
    pub fn key(&self) -> CacheKey {
        self.key
    }

    /// Publishes the compiled artifact under the claimed key and wakes
    /// every thread waiting on it.
    pub fn publish(mut self, value: Arc<CachedProgram>) {
        self.done = true;
        self.cache.insert(self.key, value);
    }
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.cache.abandon(&self.key);
        }
    }
}

/// The sharded in-memory compile cache. See the module docs for the
/// concurrency model; construction knobs exist mainly so tests can force
/// eviction deterministically.
pub struct CompileCache {
    shards: Vec<ShardCell>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    quarantines: AtomicU64,
}

impl Default for CompileCache {
    fn default() -> Self {
        CompileCache::with_shards(8, 32)
    }
}

impl CompileCache {
    /// A cache with the default geometry (8 shards × 32 entries).
    pub fn new() -> Self {
        CompileCache::default()
    }

    /// A cache with explicit geometry. `shards` and `per_shard_capacity`
    /// are clamped to at least 1; total capacity is their product.
    pub fn with_shards(shards: usize, per_shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        CompileCache {
            shards: (0..shards)
                .map(|_| ShardCell {
                    state: Mutex::new(Shard {
                        map: HashMap::new(),
                        in_flight: HashSet::new(),
                        clock: 0,
                    }),
                    ready: Condvar::new(),
                })
                .collect(),
            per_shard_capacity: per_shard_capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
        }
    }

    /// Total entries the cache can hold.
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.per_shard_capacity
    }

    /// Entries currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().expect("cache shard lock poisoned").map.len())
            .sum()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: &CacheKey) -> &ShardCell {
        // The content digest is already well-mixed; fold the high half in
        // so shard choice is not the digest's low bits alone.
        let h = key.content ^ (key.content >> 32);
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Looks a key up without claiming, counting a hit or a miss and
    /// refreshing LRU recency on hit. Does not wait for an in-flight
    /// compile — serving paths should prefer [`claim`](Self::claim).
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<CachedProgram>> {
        let mut shard = self
            .shard(key)
            .state
            .lock()
            .expect("cache shard lock poisoned");
        shard.clock += 1;
        let clock = shard.clock;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks a key up, claiming it exclusively on a miss. If another
    /// thread already holds the claim, blocks until that thread
    /// publishes (returning the published artifact as a hit) or abandons
    /// (taking over the claim). Exactly one [`Lookup::Miss`] is handed
    /// out per published entry, so each distinct key compiles once no
    /// matter how many threads race for it.
    pub fn claim(&self, key: CacheKey) -> Lookup<'_> {
        let cell = self.shard(&key);
        let mut shard = cell.state.lock().expect("cache shard lock poisoned");
        loop {
            shard.clock += 1;
            let clock = shard.clock;
            if let Some(entry) = shard.map.get_mut(&key) {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Lookup::Hit(entry.value.clone());
            }
            if shard.in_flight.insert(key) {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Lookup::Miss(ClaimGuard {
                    cache: self,
                    key,
                    done: false,
                });
            }
            shard = cell.ready.wait(shard).expect("cache shard lock poisoned");
        }
    }

    /// Releases an unfulfilled claim and wakes its waiters.
    fn abandon(&self, key: &CacheKey) {
        let cell = self.shard(key);
        let mut shard = cell.state.lock().expect("cache shard lock poisoned");
        shard.in_flight.remove(key);
        drop(shard);
        cell.ready.notify_all();
    }

    /// Publishes an artifact, evicting the shard's least-recently-used
    /// entry if the shard is full, releasing any in-flight claim on the
    /// key, and waking threads waiting on it.
    pub fn insert(&self, key: CacheKey, value: Arc<CachedProgram>) {
        let cell = self.shard(&key);
        let mut shard = cell.state.lock().expect("cache shard lock poisoned");
        shard.clock += 1;
        let clock = shard.clock;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: clock,
                faults: 0,
            },
        );
        shard.in_flight.remove(&key);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        drop(shard);
        cell.ready.notify_all();
    }

    /// The one-call serving primitive: look the request's key up and, on
    /// a miss, compile under the request's pipeline (a fresh
    /// `CompileSession` inside [`crate::pipeline::Pipeline::optimize`]),
    /// lower to shared bytecode for the VM engines, publish, and return.
    /// The boolean is `true` on a hit.
    ///
    /// # Errors
    ///
    /// Lowering failures and verifier rejections from
    /// [`Engine::compile_shared`], plus a
    /// [`Lower`](loopir::ErrorKind::Lower)-kind error for a `--set` name
    /// that matches no config variable. Pipeline panics propagate —
    /// serving callers run under the [`Supervisor`](crate::Supervisor)'s
    /// fault boundary, which catches them — and abandon the in-flight
    /// claim on unwind, as do errors, so waiters never hang.
    pub fn get_or_compile(
        &self,
        program: &Program,
        req: &RunRequest,
    ) -> Result<(Arc<CachedProgram>, bool), ExecError> {
        let binding = req.binding_for(program).map_err(ExecError::lower)?;
        let key = CacheKey::for_request(program, &binding, req);
        let guard = match self.claim(key) {
            Lookup::Hit(hit) => return Ok((hit, true)),
            Lookup::Miss(guard) => guard,
        };
        let opt = req.pipeline().optimize(program);
        let scalarized = Arc::new(opt.scalarized);
        let shared = req.engine.compile_shared(&scalarized, binding.clone())?;
        let value = Arc::new(CachedProgram {
            scalarized,
            shared,
            binding,
            engine: req.engine,
        });
        guard.publish(value.clone());
        Ok((value, false))
    }

    /// Records one execution-time fault against the cached artifact for
    /// `key`, returning the artifact's total fault count (`0` if the key
    /// is not cached — a fault in a freshly compiled artifact is the
    /// compile's problem, not the cache's).
    pub fn note_fault(&self, key: &CacheKey) -> u64 {
        let mut shard = self
            .shard(key)
            .state
            .lock()
            .expect("cache shard lock poisoned");
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.faults += 1;
                entry.faults
            }
            None => 0,
        }
    }

    /// Execution-time faults recorded against the cached artifact for
    /// `key` (`0` if not cached).
    pub fn fault_count(&self, key: &CacheKey) -> u64 {
        let shard = self
            .shard(key)
            .state
            .lock()
            .expect("cache shard lock poisoned");
        shard.map.get(key).map(|e| e.faults).unwrap_or(0)
    }

    /// Evicts the entry for `key` because its circuit breaker tripped:
    /// the artifact is suspected poisoned and must never be re-served.
    /// Returns `true` if an entry was actually removed. The next compile
    /// of the key republishes a fresh artifact with a zero fault count.
    pub fn quarantine(&self, key: &CacheKey) -> bool {
        let cell = self.shard(key);
        let mut shard = cell.state.lock().expect("cache shard lock poisoned");
        let removed = shard.map.remove(key).is_some();
        if removed {
            self.quarantines.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// A consistent-enough snapshot of the counters (each counter is
    /// individually exact; the set is read without a global lock).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::NoopObserver;

    fn src(k: usize) -> String {
        format!(
            "program p{k}; config n : int = 6; region R = [1..n]; \
             var A, B : [R] float; var s : float; \
             begin [R] A := {k}.0; [R] B := A + 1.0; s := +<< [R] B; end"
        )
    }

    #[test]
    fn hit_miss_and_insert_accounting_is_exact() {
        let cache = CompileCache::new();
        let p = zlang::compile(&src(1)).unwrap();
        let req = RunRequest::new();
        let (_, hit) = cache.get_or_compile(&p, &req).unwrap();
        assert!(!hit);
        let (_, hit) = cache.get_or_compile(&p, &req).unwrap();
        assert!(hit);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 1, 1, 0));
        assert_eq!(s.hit_rate(), 0.5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_coordinates_are_distinct_entries() {
        let cache = CompileCache::new();
        let p = zlang::compile(&src(1)).unwrap();
        for req in [
            RunRequest::new(),
            RunRequest::new().with_level(Level::Baseline),
            RunRequest::new().with_engine(Engine::Interp),
            RunRequest::new().with_set("n", 4),
        ] {
            let (_, hit) = cache.get_or_compile(&p, &req).unwrap();
            assert!(!hit, "{req}");
        }
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn lru_eviction_is_counted_and_bounded() {
        let cache = CompileCache::with_shards(1, 2);
        let req = RunRequest::new();
        let programs: Vec<_> = (0..4).map(|k| zlang::compile(&src(k)).unwrap()).collect();
        for p in &programs {
            cache.get_or_compile(p, &req).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 2);
        // The most recent two survive; the oldest were evicted.
        let (_, hit) = cache.get_or_compile(&programs[3], &req).unwrap();
        assert!(hit);
        let (_, hit) = cache.get_or_compile(&programs[0], &req).unwrap();
        assert!(!hit, "oldest entry was evicted");
    }

    #[test]
    fn lru_refreshes_on_hit() {
        let cache = CompileCache::with_shards(1, 2);
        let req = RunRequest::new();
        let a = zlang::compile(&src(0)).unwrap();
        let b = zlang::compile(&src(1)).unwrap();
        let c = zlang::compile(&src(2)).unwrap();
        cache.get_or_compile(&a, &req).unwrap();
        cache.get_or_compile(&b, &req).unwrap();
        cache.get_or_compile(&a, &req).unwrap(); // refresh a
        cache.get_or_compile(&c, &req).unwrap(); // evicts b, not a
        let (_, hit) = cache.get_or_compile(&a, &req).unwrap();
        assert!(hit, "refreshed entry must survive eviction");
    }

    #[test]
    fn cached_executors_reproduce_the_cold_result() {
        let p = zlang::compile(&src(3)).unwrap();
        for engine in Engine::all() {
            let cache = CompileCache::new();
            let req = RunRequest::new().with_engine(engine);
            let (cold, _) = cache.get_or_compile(&p, &req).unwrap();
            let a = cold
                .executor(req.exec_opts())
                .execute(&mut NoopObserver)
                .unwrap();
            let (hot, hit) = cache.get_or_compile(&p, &req).unwrap();
            assert!(hit);
            let b = hot
                .executor(req.exec_opts())
                .execute(&mut NoopObserver)
                .unwrap();
            assert_eq!(a, b, "{engine}");
            assert_eq!(
                a.checksum().to_bits(),
                b.checksum().to_bits(),
                "{engine}: hit must be bit-identical"
            );
            assert_eq!(engine != Engine::Interp, hot.shared.is_some());
            if let Some(shared) = &hot.shared {
                assert_eq!(shared.is_verified(), engine != Engine::Vm);
            }
        }
    }

    #[test]
    fn publish_wakes_waiters_as_hits() {
        let cache = Arc::new(CompileCache::new());
        let p = zlang::compile(&src(2)).unwrap();
        let req = RunRequest::new();
        let binding = req.binding_for(&p).unwrap();
        let key = CacheKey::for_request(&p, &binding, &req);
        let guard = match cache.claim(key) {
            Lookup::Miss(g) => g,
            Lookup::Hit(_) => panic!("cache is empty"),
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let cache = cache.clone();
                std::thread::spawn(move || matches!(cache.claim(key), Lookup::Hit(_)))
            })
            .collect();
        let (value, _) = CompileCache::new().get_or_compile(&p, &req).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        guard.publish(value);
        for w in waiters {
            assert!(
                w.join().unwrap(),
                "waiter sees the published artifact as a hit"
            );
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (4, 1, 1));
    }

    #[test]
    fn abandoned_claims_hand_over_to_waiters() {
        let cache = Arc::new(CompileCache::new());
        let p = zlang::compile(&src(1)).unwrap();
        let req = RunRequest::new();
        let binding = req.binding_for(&p).unwrap();
        let key = CacheKey::for_request(&p, &binding, &req);
        let guard = match cache.claim(key) {
            Lookup::Miss(g) => g,
            Lookup::Hit(_) => panic!("cache is empty"),
        };
        let waiter = {
            let cache = cache.clone();
            std::thread::spawn(move || match cache.claim(key) {
                Lookup::Miss(g) => {
                    drop(g);
                    false
                }
                Lookup::Hit(_) => true,
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(guard); // abandon without publishing
        assert!(
            !waiter.join().unwrap(),
            "waiter takes over the abandoned claim as a fresh miss"
        );
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (0, 2, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn quarantine_evicts_and_recompile_resets_fault_count() {
        let cache = CompileCache::new();
        let p = zlang::compile(&src(1)).unwrap();
        let req = RunRequest::new();
        let binding = req.binding_for(&p).unwrap();
        let key = CacheKey::for_request(&p, &binding, &req);
        assert_eq!(
            cache.note_fault(&key),
            0,
            "uncached keys have no artifact to blame"
        );
        cache.get_or_compile(&p, &req).unwrap();
        assert_eq!(cache.note_fault(&key), 1);
        assert_eq!(cache.note_fault(&key), 2);
        assert_eq!(cache.fault_count(&key), 2);
        assert!(cache.quarantine(&key));
        assert!(!cache.quarantine(&key), "already gone");
        assert!(cache.is_empty());
        let s = cache.stats();
        assert_eq!((s.evictions, s.quarantines), (0, 1));
        // Recompiling publishes a fresh artifact with a clean record.
        let (_, hit) = cache.get_or_compile(&p, &req).unwrap();
        assert!(!hit);
        assert_eq!(cache.fault_count(&key), 0);
    }

    #[test]
    fn unknown_set_name_is_a_lower_error() {
        let cache = CompileCache::new();
        let p = zlang::compile(&src(1)).unwrap();
        let err = cache
            .get_or_compile(&p, &RunRequest::new().with_set("zz", 1))
            .unwrap_err();
        assert!(err.message.contains("zz"), "{}", err.message);
    }
}
