//! Unconstrained distance vectors (Definition 2 of the paper) and their
//! interaction with loop structure vectors (Definition 4).
//!
//! An unconstrained distance vector (UDV) describes an array-level data
//! dependence between two normalized statements *per array dimension*,
//! independent of any loop structure: `u = d_source − d_target`, where `d`
//! are the statements' constant reference offsets. Only once a loop
//! structure vector `p` is chosen does a UDV become a conventional
//! (constrained) distance vector `d_i = sign(p_i) · u_{|p_i|}`, whose
//! lexicographic nonnegativity decides legality.

use std::fmt;
use zlang::ir::Offset;

/// An unconstrained distance vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Udv(pub Vec<i64>);

impl Udv {
    /// The null vector of a rank.
    pub fn null(rank: usize) -> Self {
        Udv(vec![0; rank])
    }

    /// Builds the UDV for a dependence whose source references offset
    /// `source` and whose target references offset `target`:
    /// `u = source − target` (the paper's Section 2.2 worked example).
    ///
    /// # Panics
    ///
    /// Panics if the offsets have different ranks.
    pub fn between(source: &Offset, target: &Offset) -> Self {
        assert_eq!(source.rank(), target.rank(), "offset ranks must match");
        Udv(source.0.iter().zip(&target.0).map(|(s, t)| s - t).collect())
    }

    /// True if every component is zero.
    pub fn is_null(&self) -> bool {
        self.0.iter().all(|&u| u == 0)
    }

    /// The rank of the vector.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Constrains the UDV by a loop structure vector, producing a
    /// conventional distance vector: `d_i = sign(p_i) · u_{|p_i|}`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a signed permutation of `1..=rank`.
    pub fn constrain(&self, p: &[i8]) -> Vec<i64> {
        assert!(
            loopir::ir::is_valid_structure(p, self.rank()),
            "invalid loop structure vector {p:?} for rank {}",
            self.rank()
        );
        p.iter()
            .map(|&pi| {
                let dim = (pi.unsigned_abs() as usize) - 1;
                let sign = if pi > 0 { 1 } else { -1 };
                sign * self.0[dim]
            })
            .collect()
    }

    /// True if the constrained vector under `p` is lexicographically
    /// nonnegative (the dependence is *preserved* by that loop structure).
    pub fn preserved_by(&self, p: &[i8]) -> bool {
        lex_nonneg(&self.constrain(p))
    }
}

impl fmt::Display for Udv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, u) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{u}")?;
        }
        write!(f, ")")
    }
}

/// True if `d` is the null vector or its leftmost nonzero element is
/// positive (Definition 1's legality criterion).
pub fn lex_nonneg(d: &[i64]) -> bool {
    for &x in d {
        if x > 0 {
            return true;
        }
        if x < 0 {
            return false;
        }
    }
    true
}

/// The kind of a data dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Write-before-read.
    Flow,
    /// Read-before-write.
    Anti,
    /// Write-before-write.
    Output,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepKind::Flow => write!(f, "flow"),
            DepKind::Anti => write!(f, "anti"),
            DepKind::Output => write!(f, "output"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example_figure2() {
        // Statement 1 writes A@(0,0); statement 2 reads A@(0,-1):
        // u = (0,0) - (0,-1) = (0,1).
        let u = Udv::between(&Offset(vec![0, 0]), &Offset(vec![0, -1]));
        assert_eq!(u, Udv(vec![0, 1]));
        // Statement 3 reads A@(-1,1): u = (0,0) - (-1,1) = (1,-1).
        let u2 = Udv::between(&Offset(vec![0, 0]), &Offset(vec![-1, 1]));
        assert_eq!(u2, Udv(vec![1, -1]));
        // Statement 1 reads B@(-1,0), statement 3 writes B@(0,0):
        // u = (-1,0) - (0,0) = (-1,0).
        let u3 = Udv::between(&Offset(vec![-1, 0]), &Offset(vec![0, 0]));
        assert_eq!(u3, Udv(vec![-1, 0]));

        // The paper: with p = (-2,-1), (-1,0) and (1,-1) become (0,1) and
        // (1,-1)... wait — constrain((-1,0), (-2,-1)) = (sign(-2)*u_2, sign(-1)*u_1)
        // = (0, 1) and constrain((1,-1)) = (1, -1). Both lex nonnegative.
        let p = vec![-2i8, -1];
        assert_eq!(u3.constrain(&p), vec![0, 1]);
        assert_eq!(u2.constrain(&p), vec![1, -1]);
        assert!(u3.preserved_by(&p));
        assert!(u2.preserved_by(&p));
    }

    #[test]
    fn constrain_identity() {
        let u = Udv(vec![2, -3]);
        assert_eq!(u.constrain(&[1, 2]), vec![2, -3]);
        assert_eq!(u.constrain(&[2, 1]), vec![-3, 2]);
        assert_eq!(u.constrain(&[-1, 2]), vec![-2, -3]);
    }

    #[test]
    fn lex_nonneg_cases() {
        assert!(lex_nonneg(&[0, 0]));
        assert!(lex_nonneg(&[0, 1]));
        assert!(lex_nonneg(&[1, -5]));
        assert!(!lex_nonneg(&[0, -1]));
        assert!(!lex_nonneg(&[-1, 100]));
    }

    #[test]
    fn null_udv_preserved_by_everything() {
        let u = Udv::null(2);
        for p in [[1i8, 2], [2, 1], [-1, 2], [1, -2], [-2, -1]] {
            assert!(u.preserved_by(&p));
        }
    }

    #[test]
    fn reversal_legalizes_negative_distance() {
        // Anti-dependence with u = (-1, 0): illegal increasing, legal after
        // reversing the loop over dimension 1.
        let u = Udv(vec![-1, 0]);
        assert!(!u.preserved_by(&[1, 2]));
        assert!(u.preserved_by(&[-1, 2]));
    }

    #[test]
    #[should_panic(expected = "invalid loop structure")]
    fn constrain_rejects_bad_structure() {
        Udv(vec![1, 2]).constrain(&[1, 1]);
    }
}
