//! Offset-lattice availability analysis for stencil redundancy.
//!
//! The `+rce` pass ([`crate::pass::PassId::Rce`]) only matches a whole
//! RHS that is one uniform shift of an earlier statement's RHS. Stencil
//! codes (Tomcatv, Simple, SP) leave most of their redundancy on the
//! table at that granularity: the same *subexpression* recurs at several
//! neighboring offsets inside one statement (flux pairs like
//! `RHO@[1,0]*U@[1,0] - RHO@[-1,0]*U@[-1,0]`), across statements, and
//! across iterations of the sequential time loop. Finding those requires
//! a genuine forward dataflow analysis, which this module provides and
//! [`crate::rce2`] consumes.
//!
//! # The lattice
//!
//! Subexpressions are *canonicalized*: every compound subtree that reads
//! at least one array is rebased so its first read sits at offset zero.
//! A subtree `e` with first-read offset `b` becomes the pair
//! `(canon(e), b)` where `e = shift(canon(e), b)` and
//! `shift(c, δ)[p] = c[p + δ]` adds `δ` to every read offset. Canonical
//! forms are bucketed by their structural FNV digest
//! ([`crate::hash::expr_hash`]).
//!
//! An analysis *fact* says: array `provider`, over `region`, currently
//! holds the canonical expression at shift `base` —
//! `provider[p] = canon[p + base]` for all `p ∈ region`. The abstract
//! state at a program point is a set of facts: for each canonical key, a
//! finite subset of the (ℤ^rank) offset lattice of shifts at which the
//! value is materialized. The ordering is set inclusion; **join over
//! predecessors is intersection** (availability is a must-analysis: a
//! reuse is legal only if the fact holds on every path).
//!
//! # Transfer function
//!
//! Per statement, kills before gens:
//!
//! * writing array `A` kills every fact provided by `A` *and* every fact
//!   whose canonical form reads `A` (its stored value goes stale);
//! * writing scalar `s` kills facts whose canonical form references `s`;
//! * an array statement `[R] A := rhs` generates the fact
//!   `(canon(rhs), base(rhs))` with provider `A` over `R`;
//! * a *copy* statement `[R] A := B@d` additionally **composes** shifts:
//!   every live fact `B[p] = c[p + b]` spawns `A[p] = c[p + (b + d)]` —
//!   provided `R + d` lies inside the fact's region, so no stale-halo
//!   value is laundered through the copy.
//!
//! # Widening
//!
//! Shift composition along copy chains can grow offsets without bound
//! (the analog of interval growth in `loopir::verifier`, which widens to
//! unbounded after `WIDEN_AFTER = 8` steps). Two caps keep the lattice
//! finite, both deliberately mirroring that verifier's scheme:
//!
//! * at most [`WIDEN_FACTS_PER_KEY`] (= 8) distinct shifts are tracked
//!   per canonical key — further gens widen to "unknown" (dropped);
//! * any shift component with magnitude above [`WIDEN_SHIFT_MAG`] widens
//!   to unknown (no realistic stencil reaches past a 64-cell halo).
//!
//! Dropping facts is always sound for a must-analysis: it can only
//! suppress a rewrite, never enable an illegal one.
//!
//! For loops, one join suffices: the kill set of a loop body does not
//! depend on the abstract state, so `entry ⊓ transfer(body, entry)` is
//! already the fixpoint of the back edge (facts only ever shrink).
//! [`report`] exposes the whole analysis as text via `zlc --print avail`.

use crate::hash::expr_hash;
use crate::normal::{BStmt, Block, NStmt, NormProgram};
use std::fmt::Write as _;
use zlang::ir::{ArrayExpr, ArrayId, LinExpr, Offset, Program, RegionId, ScalarId};

/// Maximum distinct shifts tracked per canonical key before widening
/// (mirrors `loopir::verifier`'s `WIDEN_AFTER = 8` interval cap).
pub const WIDEN_FACTS_PER_KEY: usize = 8;

/// Maximum shift-component magnitude before a composed offset widens to
/// unknown.
pub const WIDEN_SHIFT_MAG: i64 = 64;

// ---------------------------------------------------------------------------
// Canonicalization and shift algebra
// ---------------------------------------------------------------------------

/// A canonicalized subexpression: `expr = shift(canon, base)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Canon {
    /// The rebased expression (first read at offset zero).
    pub expr: ArrayExpr,
    /// The shift that was factored out.
    pub base: Vec<i64>,
    /// Whether the expression contains an `index` term (which shifts
    /// cannot move: `index` evaluates to the write point).
    pub has_index: bool,
    /// Structural digest of `expr` — the lattice bucket key.
    pub key: u64,
}

/// Canonicalizes an expression by factoring out its first read's offset.
/// Returns `None` for read-free expressions (nothing to shift) and for
/// mixed-rank reads (no single shift vector applies).
pub fn canonicalize(e: &ArrayExpr) -> Option<Canon> {
    let mut first: Option<Vec<i64>> = None;
    let mut rank_ok = true;
    e.for_each_read(&mut |_, o| match &first {
        None => first = Some(o.0.clone()),
        Some(b) => rank_ok &= o.0.len() == b.len(),
    });
    let base = first?;
    if !rank_ok {
        return None;
    }
    let neg: Vec<i64> = base.iter().map(|d| -d).collect();
    let expr = shift_reads(e, &neg);
    let has_index = contains_index(e);
    let key = expr_hash(&expr);
    Some(Canon {
        expr,
        base,
        has_index,
        key,
    })
}

/// `shift(e, δ)`: adds `δ` to every read offset. `index` terms are left
/// alone — callers must reject nonzero shifts of index-bearing
/// expressions themselves (see [`Canon::has_index`]).
///
/// Every read's rank must equal `delta.len()`.
pub fn shift_reads(e: &ArrayExpr, delta: &[i64]) -> ArrayExpr {
    e.map_reads(&mut |a, o| {
        debug_assert_eq!(o.0.len(), delta.len(), "rank mismatch in shift");
        ArrayExpr::Read(
            a,
            Offset(o.0.iter().zip(delta).map(|(x, d)| x + d).collect()),
        )
    })
}

/// Whether the expression contains an `index` term anywhere.
pub fn contains_index(e: &ArrayExpr) -> bool {
    match e {
        ArrayExpr::Index(_) => true,
        ArrayExpr::Unary(_, i) => contains_index(i),
        ArrayExpr::Binary(_, l, r) => contains_index(l) || contains_index(r),
        ArrayExpr::Call(_, args) => args.iter().any(contains_index),
        _ => false,
    }
}

/// Whether the expression reads the given array.
pub fn reads_array(e: &ArrayExpr, a: ArrayId) -> bool {
    let mut found = false;
    e.for_each_read(&mut |x, _| found |= x == a);
    found
}

/// Whether the expression references the given scalar.
pub fn reads_scalar(e: &ArrayExpr, s: ScalarId) -> bool {
    match e {
        ArrayExpr::ScalarRef(x) => *x == s,
        ArrayExpr::Unary(_, i) => reads_scalar(i, s),
        ArrayExpr::Binary(_, l, r) => reads_scalar(l, s) || reads_scalar(r, s),
        ArrayExpr::Call(_, args) => args.iter().any(|a| reads_scalar(a, s)),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Subexpression paths
// ---------------------------------------------------------------------------

/// A compound subexpression with its tree path (child indices from the
/// root; `Unary`/`Binary` children are 0/1, `Call` arguments by
/// position).
#[derive(Debug, Clone)]
pub struct SubExpr<'a> {
    /// Child-index path from the RHS root to this node.
    pub path: Vec<u32>,
    /// The node itself.
    pub expr: &'a ArrayExpr,
}

/// Every *interesting* subexpression, in preorder (outermost first): a
/// node qualifies if it performs at least one floating-point operation
/// and reads at least one array. Leaves and read-free arithmetic can
/// never pay for a materialized reuse.
pub fn compound_subexprs(e: &ArrayExpr) -> Vec<SubExpr<'_>> {
    fn walk<'a>(e: &'a ArrayExpr, path: &mut Vec<u32>, out: &mut Vec<SubExpr<'a>>) {
        if e.flops() >= 1 && e.read_count() >= 1 {
            out.push(SubExpr {
                path: path.clone(),
                expr: e,
            });
        }
        match e {
            ArrayExpr::Unary(_, i) => {
                path.push(0);
                walk(i, path, out);
                path.pop();
            }
            ArrayExpr::Binary(_, l, r) => {
                path.push(0);
                walk(l, path, out);
                path.pop();
                path.push(1);
                walk(r, path, out);
                path.pop();
            }
            ArrayExpr::Call(_, args) => {
                for (i, a) in args.iter().enumerate() {
                    path.push(i as u32);
                    walk(a, path, out);
                    path.pop();
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(e, &mut Vec::new(), &mut out);
    out
}

/// The node at a child-index path, if the path is valid.
pub fn node_at<'a>(e: &'a ArrayExpr, path: &[u32]) -> Option<&'a ArrayExpr> {
    let Some((&head, rest)) = path.split_first() else {
        return Some(e);
    };
    match e {
        ArrayExpr::Unary(_, i) if head == 0 => node_at(i, rest),
        ArrayExpr::Binary(_, l, _) if head == 0 => node_at(l, rest),
        ArrayExpr::Binary(_, _, r) if head == 1 => node_at(r, rest),
        ArrayExpr::Call(_, args) => args.get(head as usize).and_then(|a| node_at(a, rest)),
        _ => None,
    }
}

/// Replaces the node at a path, returning whether the path was valid.
pub fn replace_at(e: &mut ArrayExpr, path: &[u32], new: ArrayExpr) -> bool {
    let Some((&head, rest)) = path.split_first() else {
        *e = new;
        return true;
    };
    match e {
        ArrayExpr::Unary(_, i) if head == 0 => replace_at(i, rest, new),
        ArrayExpr::Binary(_, l, _) if head == 0 => replace_at(l, rest, new),
        ArrayExpr::Binary(_, _, r) if head == 1 => replace_at(r, rest, new),
        ArrayExpr::Call(_, args) => match args.get_mut(head as usize) {
            Some(a) => replace_at(a, rest, new),
            None => false,
        },
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Symbolic region predicates (shared with RCE and the rce2 verifier)
// ---------------------------------------------------------------------------

/// `a <= b` provable symbolically: identical config terms, constant
/// comparison on the bases. (Terms are kept sorted and zero-free by
/// [`LinExpr`]'s constructors.)
pub fn lin_le(a: &LinExpr, b: &LinExpr) -> bool {
    a.terms == b.terms && a.base <= b.base
}

/// `a < b` provable symbolically.
pub fn lin_lt(a: &LinExpr, b: &LinExpr) -> bool {
    a.terms == b.terms && a.base < b.base
}

/// Whether `inner + delta ⊆ outer` holds for every symbolic binding.
pub fn region_contains_shifted(
    program: &Program,
    outer: RegionId,
    inner: RegionId,
    delta: &[i64],
) -> bool {
    let ro = program.region(outer);
    let ri = program.region(inner);
    if ro.rank() != ri.rank() || ro.rank() != delta.len() {
        return false;
    }
    ro.extents
        .iter()
        .zip(&ri.extents)
        .zip(delta)
        .all(|((o, i), &d)| lin_le(&o.lo, &i.lo.offset(d)) && lin_le(&i.hi.offset(d), &o.hi))
}

/// Whether `a ∩ (b + delta) = ∅` holds for every symbolic binding: some
/// dimension's extents are provably ordered with a gap.
pub fn regions_disjoint_shifted(
    program: &Program,
    a: RegionId,
    b: RegionId,
    delta: &[i64],
) -> bool {
    let ra = program.region(a);
    let rb = program.region(b);
    if ra.rank() != rb.rank() || ra.rank() != delta.len() {
        return false;
    }
    ra.extents
        .iter()
        .zip(&rb.extents)
        .zip(delta)
        .any(|((ea, eb), &d)| lin_lt(&ea.hi, &eb.lo.offset(d)) || lin_lt(&eb.hi.offset(d), &ea.lo))
}

// ---------------------------------------------------------------------------
// Facts and abstract state
// ---------------------------------------------------------------------------

/// One availability fact: `provider[p] = canon[p + base]` for all
/// `p ∈ region`, established by statement `stmt` of block `block`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fact {
    /// Structural digest of the canonical expression.
    pub key: u64,
    /// The canonical expression itself (digest collisions are resolved
    /// by structural comparison before any reuse).
    pub canon: ArrayExpr,
    /// Whether the canonical expression contains an `index` term.
    pub has_index: bool,
    /// The array holding the value.
    pub provider: ArrayId,
    /// The shift at which the provider materializes the canonical form.
    pub base: Vec<i64>,
    /// The region over which the fact holds.
    pub region: RegionId,
    /// Block of the establishing statement.
    pub block: usize,
    /// Statement index (within the block) of the establishing statement.
    pub stmt: usize,
}

/// The abstract state at a program point: the set of facts that hold on
/// every path reaching it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AvailState {
    /// Live facts (small sets; linear scans throughout).
    pub facts: Vec<Fact>,
}

impl AvailState {
    /// Kills facts invalidated by a write to array `a`: those `a`
    /// provides and those whose canonical form reads `a`.
    pub fn kill_array(&mut self, a: ArrayId) {
        self.facts
            .retain(|f| f.provider != a && !reads_array(&f.canon, a));
    }

    /// Kills facts whose canonical form references scalar `s`.
    pub fn kill_scalar(&mut self, s: ScalarId) {
        self.facts.retain(|f| !reads_scalar(&f.canon, s));
    }

    /// Adds a fact, widening instead of growing without bound: oversized
    /// shifts and over-full key buckets are dropped (sound for a
    /// must-analysis). A same-key same-provider fact is replaced.
    pub fn gen(&mut self, f: Fact) {
        if f.base.iter().any(|d| d.abs() > WIDEN_SHIFT_MAG) {
            return;
        }
        self.facts
            .retain(|g| !(g.key == f.key && g.provider == f.provider));
        if self.facts.iter().filter(|g| g.key == f.key).count() >= WIDEN_FACTS_PER_KEY {
            return;
        }
        self.facts.push(f);
    }

    /// The lattice join: must-availability intersects over predecessors.
    pub fn meet(&self, other: &AvailState) -> AvailState {
        AvailState {
            facts: self
                .facts
                .iter()
                .filter(|f| other.facts.iter().any(|g| g == *f))
                .cloned()
                .collect(),
        }
    }
}

/// Applies one statement's transfer function (kills, then gens).
/// `block`/`idx` locate the statement for the facts it establishes.
pub fn transfer(program: &Program, state: &mut AvailState, stmt: &BStmt, block: usize, idx: usize) {
    if let Some(a) = stmt.lhs_array() {
        state.kill_array(a);
    }
    if let Some(s) = stmt.lhs_scalar() {
        state.kill_scalar(s);
    }
    let BStmt::Array(st) = stmt else { return };
    // Shift composition through a copy: `[R] A := B@d` republishes every
    // fact B provides, rebased by d, as long as every element the copy
    // read was covered by the fact's region (otherwise the copy could
    // launder a stale halo value into the new fact).
    if let ArrayExpr::Read(b, d) = &st.rhs {
        let composed: Vec<Fact> = state
            .facts
            .iter()
            .filter(|f| {
                f.provider == *b
                    && f.base.len() == d.0.len()
                    && region_contains_shifted(program, f.region, st.region, &d.0)
            })
            .cloned()
            .collect();
        for mut f in composed {
            f.base = f.base.iter().zip(&d.0).map(|(x, y)| x + y).collect();
            f.provider = st.lhs;
            f.region = st.region;
            f.block = block;
            f.stmt = idx;
            state.gen(f);
        }
    }
    if let Some(c) = canonicalize(&st.rhs) {
        state.gen(Fact {
            key: c.key,
            canon: c.expr,
            has_index: c.has_index,
            provider: st.lhs,
            base: c.base,
            region: st.region,
            block,
            stmt: idx,
        });
    }
}

/// Per-statement input states for one block starting from `entry`:
/// `states[i]` holds before `stmts[i]`; `states[len]` is the exit state.
pub fn block_states(np: &NormProgram, bi: usize, entry: &AvailState) -> Vec<AvailState> {
    let block = &np.blocks[bi];
    let mut states = Vec::with_capacity(block.stmts.len() + 1);
    let mut cur = entry.clone();
    for (i, s) in block.stmts.iter().enumerate() {
        states.push(cur.clone());
        transfer(&np.program, &mut cur, s, bi, i);
    }
    states.push(cur);
    states
}

// ---------------------------------------------------------------------------
// Whole-program flow and the `--print avail` report
// ---------------------------------------------------------------------------

/// Collects every array and scalar written anywhere under a skeleton
/// subtree, including loop variables of `for` nodes. Writes are pushed
/// once per writing statement (callers may count multiplicities).
pub fn written_under(
    blocks: &[Block],
    body: &[NStmt],
    arrays: &mut Vec<ArrayId>,
    scalars: &mut Vec<ScalarId>,
) {
    for n in body {
        match n {
            NStmt::Block(b) => {
                for s in &blocks[*b].stmts {
                    if let Some(a) = s.lhs_array() {
                        arrays.push(a);
                    }
                    if let Some(sc) = s.lhs_scalar() {
                        scalars.push(sc);
                    }
                }
            }
            NStmt::For { var, body, .. } => {
                scalars.push(*var);
                written_under(blocks, body, arrays, scalars);
            }
            NStmt::If {
                then_body,
                else_body,
                ..
            } => {
                written_under(blocks, then_body, arrays, scalars);
                written_under(blocks, else_body, arrays, scalars);
            }
        }
    }
}

fn kill_written(state: &mut AvailState, np: &NormProgram, body: &[NStmt]) {
    let mut arrays = Vec::new();
    let mut scalars = Vec::new();
    written_under(&np.blocks, body, &mut arrays, &mut scalars);
    for a in arrays {
        state.kill_array(a);
    }
    for s in scalars {
        state.kill_scalar(s);
    }
}

fn flow(
    np: &NormProgram,
    body: &[NStmt],
    state: &mut AvailState,
    out: &mut Option<&mut String>,
    depth: usize,
) {
    let indent = "  ".repeat(depth);
    for n in body {
        match n {
            NStmt::Block(bi) => {
                if let Some(o) = out {
                    let _ = writeln!(o, "{indent}// block {bi}");
                }
                for (i, s) in np.blocks[*bi].stmts.iter().enumerate() {
                    let before_facts = state.facts.clone();
                    transfer(&np.program, state, s, *bi, i);
                    if let Some(o) = out {
                        let _ = writeln!(o, "{indent}{}", crate::pass::print_bstmt(&np.program, s));
                        for f in &state.facts {
                            if !before_facts.contains(f) {
                                let _ = writeln!(o, "{indent}//   + {}", render_fact(np, f));
                            }
                        }
                    }
                }
            }
            NStmt::For { var, body, .. } => {
                // One join reaches the back-edge fixpoint: the body's kill
                // set is state-independent, so facts surviving the body's
                // kills once survive every iteration.
                kill_written(state, np, body);
                if let Some(o) = out {
                    let _ = writeln!(
                        o,
                        "{indent}// for {}: {} loop-invariant fact(s) enter the loop",
                        np.program.scalar(*var).name,
                        state.facts.len()
                    );
                }
                flow(np, body, state, out, depth + 1);
                // Facts generated inside the body hold after the last
                // iteration; trip-count 0 would skip the body entirely, so
                // keep only facts that also held at entry... which is
                // exactly what another body-kill application computes for
                // entry facts; conservatively drop body-generated facts
                // unless the loop provably runs (callers re-derive them).
                kill_written(state, np, body);
            }
            NStmt::If {
                then_body,
                else_body,
                ..
            } => {
                let mut t = state.clone();
                let mut e = state.clone();
                flow(np, then_body, &mut t, &mut None, depth + 1);
                flow(np, else_body, &mut e, &mut None, depth + 1);
                if let Some(o) = out {
                    let _ = writeln!(o, "{indent}// if: join of branch states");
                }
                *state = t.meet(&e);
            }
        }
    }
}

fn render_fact(np: &NormProgram, f: &Fact) -> String {
    format!(
        "{}[p] = ({})[p + {:?}] over {}",
        np.program.array(f.provider).name,
        zlang::pretty::array_expr(&np.program, &f.canon),
        f.base,
        np.program.region(f.region).name,
    )
}

/// Renders the availability analysis over the whole program — the
/// `zlc --print avail` output. Each statement is followed by the facts
/// it establishes; loop headers report how many facts survive the
/// back-edge join (the loop-invariant set).
pub fn report(np: &NormProgram) -> String {
    let mut out =
        String::from("// offset-lattice availability (must-facts; + marks facts established)\n");
    let mut state = AvailState::default();
    {
        let mut sink = Some(&mut out);
        flow(np, &np.body, &mut state, &mut sink, 0);
    }
    let _ = writeln!(out, "// exit: {} fact(s) live", state.facts.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zlang::ast::BinOp;

    fn read(a: u32, off: Vec<i64>) -> ArrayExpr {
        ArrayExpr::Read(ArrayId(a), Offset(off))
    }

    fn add(l: ArrayExpr, r: ArrayExpr) -> ArrayExpr {
        ArrayExpr::Binary(BinOp::Add, Box::new(l), Box::new(r))
    }

    #[test]
    fn canonicalize_rebases_first_read_to_zero() {
        let e = add(read(0, vec![1, 0]), read(1, vec![1, 1]));
        let c = canonicalize(&e).unwrap();
        assert_eq!(c.base, vec![1, 0]);
        assert_eq!(c.expr, add(read(0, vec![0, 0]), read(1, vec![0, 1])));
        assert_eq!(shift_reads(&c.expr, &c.base), e);
        // Shifted copies share the canonical key.
        let shifted = add(read(0, vec![-1, 2]), read(1, vec![-1, 3]));
        let c2 = canonicalize(&shifted).unwrap();
        assert_eq!(c.key, c2.key);
        assert_eq!(c2.base, vec![-1, 2]);
    }

    #[test]
    fn canonicalize_rejects_read_free_and_mixed_rank() {
        assert!(canonicalize(&ArrayExpr::Const(1.0)).is_none());
        let mixed = add(read(0, vec![0]), read(1, vec![0, 0]));
        assert!(canonicalize(&mixed).is_none());
    }

    #[test]
    fn paths_round_trip() {
        let e = add(
            read(0, vec![0]),
            add(read(1, vec![1]), ArrayExpr::Const(2.0)),
        );
        let subs = compound_subexprs(&e);
        // Preorder: the whole expr first, then the inner add.
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].path, Vec::<u32>::new());
        assert_eq!(subs[1].path, vec![1]);
        for s in &subs {
            assert_eq!(node_at(&e, &s.path), Some(s.expr));
        }
        let mut m = e.clone();
        assert!(replace_at(&mut m, &[1], read(9, vec![0])));
        assert_eq!(m, add(read(0, vec![0]), read(9, vec![0])));
        assert!(!replace_at(&mut m, &[1, 0, 0], ArrayExpr::Const(0.0)));
    }

    #[test]
    fn widening_caps_apply() {
        let mut s = AvailState::default();
        let fact = |provider: u32, base: Vec<i64>| Fact {
            key: 7,
            canon: read(0, vec![0]),
            has_index: false,
            provider: ArrayId(provider),
            base,
            region: RegionId(0),
            block: 0,
            stmt: 0,
        };
        for i in 0..20 {
            s.gen(fact(i + 1, vec![i as i64]));
        }
        assert_eq!(s.facts.len(), WIDEN_FACTS_PER_KEY);
        // Oversized shifts widen away entirely.
        let mut t = AvailState::default();
        t.gen(fact(1, vec![WIDEN_SHIFT_MAG + 1]));
        assert!(t.facts.is_empty());
    }

    #[test]
    fn meet_is_intersection() {
        let f = Fact {
            key: 1,
            canon: read(0, vec![0]),
            has_index: false,
            provider: ArrayId(1),
            base: vec![0],
            region: RegionId(0),
            block: 0,
            stmt: 0,
        };
        let mut g = f.clone();
        g.base = vec![1];
        let a = AvailState {
            facts: vec![f.clone(), g.clone()],
        };
        let b = AvailState {
            facts: vec![f.clone()],
        };
        assert_eq!(a.meet(&b).facts, vec![f]);
    }

    #[test]
    fn disjointness_needs_a_provable_gap() {
        let p = zlang::compile(
            "program t; config n : int = 8; \
             region A = [1..n]; region B = [n+1..n+1]; region C = [n..n]; \
             var X : [A] float; begin [A] X := 1.0; end",
        )
        .unwrap();
        let a = RegionId(0);
        let b = RegionId(1);
        let c = RegionId(2);
        assert!(regions_disjoint_shifted(&p, a, b, &[0]));
        assert!(regions_disjoint_shifted(&p, b, a, &[0]));
        // [n..n] overlaps [1..n].
        assert!(!regions_disjoint_shifted(&p, a, c, &[0]));
        // ... but not once shifted past the end.
        assert!(regions_disjoint_shifted(&p, a, c, &[1]));
    }
}
