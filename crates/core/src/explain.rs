//! Contraction diagnostics: *why* each array did or did not contract.
//!
//! A production optimizer needs to tell its user which temporaries it could
//! not remove and what in the program blocked them — especially for the
//! paper's algorithm, where a heavier candidate's fusion can legitimately
//! sacrifice a lighter one ("a more favorable contraction is performed that
//! prevents it", Section 5.1).

use crate::asdg::DefId;
use crate::depvec::{DepKind, Udv};
use crate::fusion::FusionCtx;
use crate::normal::contraction_candidates;
use crate::pipeline::Optimized;
use std::collections::BTreeSet;
use std::fmt;
use zlang::ir::ArrayId;

/// Why an array (or one of its definitions) was not contracted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Blocker {
    /// References span more than one basic block, or the array's first
    /// reference in its block is a read (a live-in value), so it is not a
    /// candidate at all.
    NotBlockLocal,
    /// The array is written but never read: treated as a program output.
    NeverRead,
    /// The level in effect does not contract this class of array (e.g.
    /// user arrays at `c1`).
    LevelExcludes,
    /// A flow dependence due to the definition has a non-null
    /// unconstrained distance vector: consumers need neighboring elements,
    /// which a scalar cannot provide.
    CarriedFlow(Udv),
    /// The definition's references sit under different regions, so its
    /// statements can never share a loop nest.
    CrossRegion,
    /// Fusing the referencing statements is illegal (no legal loop
    /// structure, an unfusable statement in the way, or a forbidden pair
    /// from the favor-communication policy).
    FusionIllegal,
    /// Fusion of the references would have been legal, but the weighted
    /// greedy committed the statements to other clusters first — the
    /// paper's "more favorable contraction" case.
    SacrificedByWeight,
}

impl fmt::Display for Blocker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Blocker::NotBlockLocal => write!(f, "live across basic blocks"),
            Blocker::NeverRead => write!(f, "written but never read (program output)"),
            Blocker::LevelExcludes => write!(f, "array class not contracted at this level"),
            Blocker::CarriedFlow(u) => write!(f, "flow dependence carried at distance {u}"),
            Blocker::CrossRegion => write!(f, "references span different regions"),
            Blocker::FusionIllegal => write!(f, "references cannot legally share a loop nest"),
            Blocker::SacrificedByWeight => {
                write!(
                    f,
                    "a heavier candidate's fusion claimed these statements first"
                )
            }
        }
    }
}

/// The outcome for one array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every definition contracted; the array is gone.
    Contracted,
    /// The array was contracted to a lower dimension (extent 1 in the
    /// listed dimensions) by the [`crate::ext`] extension.
    DimensionContracted(Vec<u8>),
    /// Some definitions contracted, some did not.
    Partial(Vec<Blocker>),
    /// Nothing contracted.
    Kept(Vec<Blocker>),
    /// The array is never referenced.
    Unreferenced,
}

/// Diagnosis for one array.
#[derive(Debug, Clone)]
pub struct ArrayDiagnosis {
    /// The array.
    pub array: ArrayId,
    /// Its source name.
    pub name: String,
    /// Whether it is a compiler temporary.
    pub compiler_temp: bool,
    /// What happened and why.
    pub outcome: Outcome,
}

fn diagnose_def(ctx: &FusionCtx<'_>, detail: &crate::pipeline::BlockDetail, def: DefId) -> Blocker {
    // Examine the definition's flow labels first: they are hard blockers.
    for (_, _, l) in detail.asdg.labels_of_def(def) {
        if l.kind != DepKind::Flow {
            continue;
        }
        match &l.udv {
            None => return Blocker::CrossRegion,
            Some(u) if !u.is_null() => return Blocker::CarriedFlow(u.clone()),
            _ => {}
        }
    }
    // Null flow deps everywhere: fusion is what failed. Would it have been
    // legal in isolation?
    let part = &detail.partition;
    let mut c: BTreeSet<usize> = detail
        .asdg
        .stmts_of_def(def)
        .iter()
        .map(|&s| part.cluster_of(s))
        .collect();
    c.extend(ctx.grow(part, &c));
    if ctx.merged_ok(part, &c).is_some() {
        Blocker::SacrificedByWeight
    } else {
        Blocker::FusionIllegal
    }
}

/// Diagnoses every user and compiler array of an optimized program.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use fusion_core::explain::{diagnose, Outcome};
/// use fusion_core::pipeline::{Level, Pipeline};
/// let p = zlang::compile(
///     "program p; config n : int = 8; region R = [1..n]; \
///      var A, B, C : [R] float; var s : float; begin \
///      [R] B := A; [R] C := B@[1]; s := +<< [R] C; end")?;
/// let opt = Pipeline::new(Level::C2).optimize(&p);
/// let d = diagnose(&opt);
/// let b = d.iter().find(|d| d.name == "B").unwrap();
/// // B is read at an offset: a scalar cannot hold a neighbor's value.
/// assert!(matches!(
///     &b.outcome,
///     Outcome::Kept(blockers)
///         if matches!(blockers[0], fusion_core::explain::Blocker::CarriedFlow(_))
/// ));
/// # Ok(())
/// # }
/// ```
pub fn diagnose(opt: &Optimized) -> Vec<ArrayDiagnosis> {
    let np = &opt.norm;
    let candidates = contraction_candidates(np);
    let contracted: BTreeSet<ArrayId> = opt.contracted.iter().copied().collect();
    let mut out = Vec::new();

    for (ai, decl) in np.program.arrays.iter().enumerate() {
        let array = ArrayId(ai as u32);
        // Gather reference info across blocks.
        let mut ref_blocks = BTreeSet::new();
        let mut read_anywhere = false;
        for (bi, block) in np.blocks.iter().enumerate() {
            for s in &block.stmts {
                if s.reads().iter().any(|(a, _)| *a == array) {
                    ref_blocks.insert(bi);
                    read_anywhere = true;
                }
                if s.lhs_array() == Some(array) {
                    ref_blocks.insert(bi);
                }
            }
        }
        let outcome = if ref_blocks.is_empty() {
            Outcome::Unreferenced
        } else if contracted.contains(&array) {
            Outcome::Contracted
        } else if !decl.collapsed.is_empty() {
            Outcome::DimensionContracted(decl.collapsed.clone())
        } else {
            match candidates[ai] {
                None => {
                    let blocker = if !read_anywhere {
                        Blocker::NeverRead
                    } else {
                        Blocker::NotBlockLocal
                    };
                    Outcome::Kept(vec![blocker])
                }
                Some(bi) => {
                    let detail = &opt.details[bi];
                    let block = &np.blocks[bi];
                    let mut ctx = FusionCtx::new(&np.program, block, &detail.asdg);
                    ctx.opts = detail.opts.clone();
                    let class_contracted = if decl.compiler_temp {
                        opt.level.contracts_compiler()
                    } else {
                        opt.level.contracts_user()
                    };
                    if !class_contracted {
                        Outcome::Kept(vec![Blocker::LevelExcludes])
                    } else {
                        let contracted_defs: BTreeSet<DefId> =
                            detail.contracted.iter().copied().collect();
                        let mut blockers = Vec::new();
                        let mut any_contracted = false;
                        for def in detail.asdg.defs_of(array) {
                            if contracted_defs.contains(&def) {
                                any_contracted = true;
                            } else {
                                blockers.push(diagnose_def(&ctx, detail, def));
                            }
                        }
                        if blockers.is_empty() {
                            Outcome::Contracted
                        } else if any_contracted {
                            Outcome::Partial(blockers)
                        } else {
                            Outcome::Kept(blockers)
                        }
                    }
                }
            }
        };
        out.push(ArrayDiagnosis {
            array,
            name: decl.name.clone(),
            compiler_temp: decl.compiler_temp,
            outcome,
        });
    }
    out
}

/// Renders diagnoses as a human-readable report.
pub fn report(opt: &Optimized) -> String {
    let mut out = format!("contraction report at {}:\n", opt.level);
    for d in diagnose(opt) {
        let class = if d.compiler_temp {
            "compiler temp"
        } else {
            "user array"
        };
        match &d.outcome {
            Outcome::Unreferenced => {}
            Outcome::Contracted => {
                out.push_str(&format!("  {:<12} {class:<14} contracted\n", d.name));
            }
            Outcome::DimensionContracted(dims) => {
                let dims: Vec<String> = dims.iter().map(|d| (d + 1).to_string()).collect();
                out.push_str(&format!(
                    "  {:<12} {class:<14} contracted to a slice (dimension {})\n",
                    d.name,
                    dims.join(", ")
                ));
            }
            Outcome::Partial(blockers) => {
                out.push_str(&format!(
                    "  {:<12} {class:<14} partially contracted; kept ranges: {}\n",
                    d.name,
                    blockers
                        .iter()
                        .map(|b| b.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                ));
            }
            Outcome::Kept(blockers) => {
                out.push_str(&format!(
                    "  {:<12} {class:<14} kept: {}\n",
                    d.name,
                    blockers
                        .iter()
                        .map(|b| b.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Level, Pipeline};

    const P: &str = "program p; config n : int = 8; region R = [1..n, 1..n]; \
                     direction w = [0, -1]; var A, B, C, D : [R] float; var s : float; ";

    fn diag(src: &str, level: Level) -> Vec<ArrayDiagnosis> {
        diagnose(&Pipeline::new(level).optimize(&zlang::compile(src).unwrap()))
    }

    fn outcome_of<'a>(d: &'a [ArrayDiagnosis], name: &str) -> &'a Outcome {
        &d.iter().find(|x| x.name == name).unwrap().outcome
    }

    #[test]
    fn contracted_and_live_in_and_output() {
        let d = diag(
            &format!("{P} begin [R] B := A; [R] C := B; s := +<< [R] C; end"),
            Level::C2,
        );
        assert_eq!(outcome_of(&d, "B"), &Outcome::Contracted);
        assert_eq!(outcome_of(&d, "C"), &Outcome::Contracted);
        assert!(matches!(outcome_of(&d, "A"), Outcome::Kept(b) if b == &[Blocker::NotBlockLocal]));
        assert_eq!(outcome_of(&d, "D"), &Outcome::Unreferenced);
    }

    #[test]
    fn never_read_is_an_output() {
        let d = diag(&format!("{P} begin [R] B := A; end"), Level::C2);
        assert!(matches!(outcome_of(&d, "B"), Outcome::Kept(b) if b == &[Blocker::NeverRead]));
    }

    #[test]
    fn carried_flow_blocks_with_distance() {
        let d = diag(
            &format!("{P} begin [R] B := A; [R] C := B@w; s := +<< [R] C; end"),
            Level::C2,
        );
        let Outcome::Kept(blockers) = outcome_of(&d, "B") else {
            panic!()
        };
        assert_eq!(blockers, &[Blocker::CarriedFlow(Udv(vec![0, 1]))]);
    }

    #[test]
    fn level_exclusion_reported_for_user_arrays_at_c1() {
        let d = diag(
            &format!("{P} begin [R] B := A; [R] C := B; s := +<< [R] C; end"),
            Level::C1,
        );
        assert!(matches!(outcome_of(&d, "B"), Outcome::Kept(b) if b == &[Blocker::LevelExcludes]));
    }

    #[test]
    fn cross_region_blocks() {
        let d = diag(
            "program p; config n : int = 8; region R = [1..n]; region RI = [2..n]; \
             var A, B, C : [R] float; var s : float; begin \
             [R] B := A; [RI] C := B; s := +<< [RI] C; end",
            Level::C2,
        );
        assert!(matches!(outcome_of(&d, "B"), Outcome::Kept(b) if b == &[Blocker::CrossRegion]));
    }

    #[test]
    fn weight_sacrifice_reported_on_tomcatv_update_temps() {
        // The known case from the tomcatv benchmark shape: the update temp
        // loses its statements to a heavier cluster.
        let src = "program p; config n : int = 8; region RH = [0..n+1, 0..n+1]; \
             region R = [1..n, 1..n]; var X : [RH] float; var PXX, RX : [R] float; \
             var s : float; begin \
             [RH] X := 1.0; \
             [R] PXX := X@[0,1] - 2.0 * X + X@[0,-1]; \
             [R] RX := PXX * 2.0; \
             s := max<< [R] abs(RX); \
             [R] X := X + RX; \
             end";
        let d = diag(src, Level::C2);
        let t = d
            .iter()
            .find(|x| x.compiler_temp)
            .expect("X's self-update temp");
        match &t.outcome {
            Outcome::Contracted => {} // acceptable: greedy found it first
            Outcome::Kept(b) | Outcome::Partial(b) => {
                assert!(
                    b.iter()
                        .all(|x| matches!(x, Blocker::SacrificedByWeight | Blocker::FusionIllegal)),
                    "{b:?}"
                );
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn dimension_contracted_arrays_reported_as_slices() {
        let src = "program p; config n : int = 8; \
             region GH = [0..n+1, 0..n+1]; region R = [1..n, 1..n]; \
             var A, T : [GH] float; var OUT : [R] float; var s : float; \
             begin [R] T := A@[0,-1] + A@[0,1]; \
             [R] OUT := T@[0,-1] + T@[0,1]; s := +<< [R] OUT; end";
        let opt = Pipeline::new(Level::C2)
            .with_dimension_contraction()
            .optimize(&zlang::compile(src).unwrap());
        let d = diagnose(&opt);
        let t = &d.iter().find(|x| x.name == "T").unwrap().outcome;
        assert_eq!(t, &Outcome::DimensionContracted(vec![0]));
        let r = report(&opt);
        assert!(r.contains("slice (dimension 1)"), "{r}");
    }

    #[test]
    fn report_renders_names_and_reasons() {
        let opt = Pipeline::new(Level::C2).optimize(
            &zlang::compile(&format!(
                "{P} begin [R] B := A; [R] C := B@w; s := +<< [R] C; end"
            ))
            .unwrap(),
        );
        let r = report(&opt);
        assert!(r.contains("B"), "{r}");
        assert!(r.contains("carried at distance"), "{r}");
    }
}
