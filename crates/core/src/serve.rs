//! The overload-resilient serving path: replay a stream of mixed
//! compile-and-run requests across worker threads, sharing one
//! [`CompileCache`] and one per-key circuit-breaker registry.
//!
//! This is the driver behind `zlc serve` and the `serve`/`overload`
//! benchmarks. Each request is a `(source, RunRequest)` pair, optionally
//! carrying a total deadline. The calling thread *admits* requests into a
//! bounded queue while workers drain it; each admitted request runs under
//! a fault-isolating [`Supervisor`](crate::supervisor::Supervisor)
//! attached to the shared cache and breakers, so a panicking or
//! budget-violating request degrades or fails *alone* without taking down
//! the batch, while repeated programs hit the content-addressed cache and
//! skip the whole pass pipeline.
//!
//! The serving fault model stacks four defenses on top of the
//! supervisor's degradation ladder:
//!
//! * **Admission control** ([`ShedPolicy`]): when the queue is at
//!   capacity, either the incoming request is rejected, the oldest queued
//!   request is dropped to make room, or the producer blocks. Shed
//!   requests never compile; they are accounted with a typed
//!   [`ShedCause`].
//! * **Deadline propagation**: a request's deadline is measured from
//!   *admission*. Queue wait is charged against it — a request that
//!   expires while queued is shed without compiling, and one that reaches
//!   a worker hands the supervisor only the time it has left
//!   ([`Supervisor::with_remaining`](crate::supervisor::Supervisor::with_remaining)).
//! * **Retries** ([`RetryPolicy`]): a request whose every ladder rung
//!   faulted is retried only when the final cause is plausibly transient
//!   ([`CauseKind::is_transient`]) — communication failures and
//!   execution-stage faults — with seeded deterministic exponential
//!   backoff and jitter (testkit's [`Rng`], no `rand`), capped by the
//!   remaining deadline. Parse errors and verifier rejections fail fast.
//! * **Circuit breaking with cache quarantine**
//!   ([`crate::breaker::CircuitBreakers`]): an artifact that faults
//!   repeatedly at execution trips its key open, evicts the cached entry,
//!   and routes subsequent requests for the key to the reference rung
//!   without consulting the cache until half-open probes re-admit it.
//!
//! A shutdown signal ([`ServeOptions::shutdown`]) stops admission and
//! drains in-flight work; every request in the batch comes back accounted
//! as completed, shed, or failed ([`Disposition`]) with a typed cause —
//! including requests whose worker died, which become attributed failures
//! rather than panics in report assembly.
//!
//! The report records per-request queue wait, service latency, attempt
//! count, and result bits (for bit-identical differential checks), and
//! rolls up service-time and end-to-end p50/p99, per-engine throughput,
//! shed/failure cause breakdowns, and the cache and breaker counters.

use crate::breaker::{BreakerConfig, BreakerStats, CircuitBreakers};
use crate::cache::{CacheStats, CompileCache};
use crate::pipeline::Level;
use crate::request::RunRequest;
use crate::supervisor::{quiet_catch, Cause, CauseKind, Stage};
use loopir::Engine;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use testkit::faults::{self, FaultPlan, FaultSite};
use testkit::Rng;

/// How long an injected [`FaultSite::ServeStall`] wedges a worker. Long
/// against the microseconds admission takes, so overload tests shed
/// deterministically; short against test budgets.
const STALL: Duration = Duration::from_millis(30);

/// One unit of serving work: a named program source plus the complete
/// run configuration to execute it under, and optionally a total
/// deadline measured from the moment the request is admitted.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Display name (for per-program roll-ups; not required unique).
    pub name: String,
    /// zlang source text of the program to compile and run.
    pub source: String,
    /// How to compile and execute it.
    pub request: RunRequest,
    /// Total admission-to-completion deadline. Queue wait counts against
    /// it: a request that expires while queued is shed without
    /// compiling, and one that reaches a worker gives the supervisor
    /// only the remainder as its wall-clock budget.
    pub deadline: Option<Duration>,
}

impl ServeRequest {
    /// A serve request for `source` under `request`, with no deadline.
    pub fn new(name: &str, source: &str, request: RunRequest) -> Self {
        ServeRequest {
            name: name.to_string(),
            source: source.to_string(),
            request,
            deadline: None,
        }
    }

    /// Sets the total (admission-to-completion) deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// What to do with an incoming request when the admission queue is at
/// capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Shed the incoming request ([`ShedCause::QueueFull`]).
    RejectNewest,
    /// Shed the oldest queued request to make room
    /// ([`ShedCause::QueueDropped`]).
    DropOldest,
    /// Block admission until a worker frees a slot. Nothing is shed for
    /// capacity; the default, and the pre-overload-control behavior.
    #[default]
    Block,
}

impl ShedPolicy {
    /// The policy's spelling on the `zlc serve --shed` flag.
    pub fn name(self) -> &'static str {
        match self {
            ShedPolicy::RejectNewest => "reject-newest",
            ShedPolicy::DropOldest => "drop-oldest",
            ShedPolicy::Block => "block",
        }
    }
}

impl fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ShedPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reject" | "reject-newest" => Ok(ShedPolicy::RejectNewest),
            "drop" | "drop-oldest" => Ok(ShedPolicy::DropOldest),
            "block" => Ok(ShedPolicy::Block),
            _ => Err(format!(
                "unknown shed policy `{s}` (expected reject-newest, drop-oldest, or block)"
            )),
        }
    }
}

/// Why a request was shed without being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The queue was at capacity under [`ShedPolicy::RejectNewest`].
    QueueFull,
    /// Displaced from the queue by a newer request under
    /// [`ShedPolicy::DropOldest`].
    QueueDropped,
    /// The request's deadline passed while it waited in the queue.
    DeadlineExpired,
    /// Admission had already stopped (shutdown signal or admission cap)
    /// when the request's turn came.
    Shutdown,
}

impl ShedCause {
    /// A stable label for reports.
    pub fn name(self) -> &'static str {
        match self {
            ShedCause::QueueFull => "queue-full",
            ShedCause::QueueDropped => "queue-dropped",
            ShedCause::DeadlineExpired => "deadline-expired",
            ShedCause::Shutdown => "shutdown",
        }
    }
}

impl fmt::Display for ShedCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The accounted outcome of one request. Every submitted request ends in
/// exactly one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// The request produced a result (possibly degraded, possibly after
    /// retries).
    Completed,
    /// The request was never served; the cause says why.
    Shed(ShedCause),
    /// Every ladder rung faulted on every attempt; the structured cause
    /// of the last attempt's last fault (stage = faulting
    /// [`crate::pass::PassId`], kind = [`CauseKind`]).
    Failed(Cause),
}

/// What happened to one request: identity, timing, attempts, and the
/// result bits.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Index of the request in the submitted batch.
    pub index: usize,
    /// The request's display name.
    pub name: String,
    /// Engine the request asked for.
    pub engine: Engine,
    /// Level the request asked for.
    pub level: Level,
    /// Time from admission until a worker started serving the request
    /// (for shed requests: until the shed decision).
    pub queue_wait: Duration,
    /// Service latency: first attempt start to final outcome, including
    /// retry backoffs. Excludes queue wait; zero for shed requests.
    pub latency: Duration,
    /// Supervised attempts made (0 for shed requests, 1 for a request
    /// served without retries).
    pub attempts: u32,
    /// `f64::to_bits` of the checksum scalar, for exact comparison.
    pub checksum_bits: u64,
    /// Bit patterns of every final scalar, for exact comparison.
    pub scalars_bits: Vec<u64>,
    /// Whether the supervisor degraded below the requested rung.
    pub degraded: bool,
    /// Whether the request was routed to the reference rung by an open
    /// circuit breaker (cache bypassed).
    pub breaker_routed: bool,
    /// How the request was accounted.
    pub disposition: Disposition,
}

impl RequestRecord {
    fn base(index: usize, req: &ServeRequest) -> Self {
        RequestRecord {
            index,
            name: req.name.clone(),
            engine: req.request.engine,
            level: req.request.level,
            queue_wait: Duration::ZERO,
            latency: Duration::ZERO,
            attempts: 0,
            checksum_bits: 0,
            scalars_bits: Vec::new(),
            degraded: false,
            breaker_routed: false,
            disposition: Disposition::Completed,
        }
    }

    fn shed(index: usize, req: &ServeRequest, queue_wait: Duration, cause: ShedCause) -> Self {
        RequestRecord {
            queue_wait,
            disposition: Disposition::Shed(cause),
            ..RequestRecord::base(index, req)
        }
    }

    fn dead_worker(
        index: usize,
        req: &ServeRequest,
        queue_wait: Duration,
        message: String,
    ) -> Self {
        RequestRecord {
            queue_wait,
            disposition: Disposition::Failed(Cause {
                stage: Stage::Execute,
                kind: CauseKind::Panic,
                message,
            }),
            ..RequestRecord::base(index, req)
        }
    }

    /// Did the request produce a result (possibly degraded)?
    pub fn completed(&self) -> bool {
        self.disposition == Disposition::Completed
    }

    /// Was the request shed without being served?
    pub fn is_shed(&self) -> bool {
        matches!(self.disposition, Disposition::Shed(_))
    }

    /// The structured failure cause, if the request failed.
    pub fn cause(&self) -> Option<&Cause> {
        match &self.disposition {
            Disposition::Failed(cause) => Some(cause),
            _ => None,
        }
    }

    /// End-to-end time from admission to outcome.
    pub fn end_to_end(&self) -> Duration {
        self.queue_wait + self.latency
    }
}

/// Deterministic retry schedule for transient failures. The backoff for
/// attempt `n` is `backoff * 2^(n-1)` capped at `max_backoff`, jittered
/// into `[0.5, 1.0)` of itself by a seeded [`Rng`] — no wall-clock or OS
/// entropy anywhere, so a batch's retry timing is a pure function of
/// `(seed, request index)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail on first full-ladder
    /// fault, the default).
    pub max_retries: u32,
    /// Base backoff before the first retry.
    pub backoff: Duration,
    /// Cap on the exponential backoff.
    pub max_backoff: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_retries` retries with the default backoff.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// The jittered pause before retrying after failed attempt `attempt`
    /// (1-based).
    pub fn backoff_for(&self, attempt: u32, rng: &mut Rng) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let exp = self.backoff.saturating_mul(1u32 << shift);
        exp.min(self.max_backoff).mul_f64(rng.f64(0.5, 1.0))
    }
}

/// Configuration for one [`serve_with`] batch.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Worker threads (clamped to at least 1, at most the batch size).
    pub workers: usize,
    /// Admission-queue capacity; 0 means unbounded (nothing sheds for
    /// capacity).
    pub queue_cap: usize,
    /// What to do when the queue is full.
    pub shed: ShedPolicy,
    /// Retry schedule for transient full-ladder failures.
    pub retry: RetryPolicy,
    /// Thresholds for the per-key circuit breakers.
    pub breaker: BreakerConfig,
    /// Fault plan for chaos testing. Plans are thread-local, so each
    /// worker installs a copy re-seeded from the plan's seed and its
    /// worker index; the schedule is deterministic per (plan, worker).
    pub faults: Option<FaultPlan>,
    /// Externally triggered graceful drain: once set, admission stops
    /// (remaining requests are shed as [`ShedCause::Shutdown`]) and
    /// in-flight work drains.
    pub shutdown: Option<Arc<AtomicBool>>,
    /// Deterministic drain for tests: stop admission after exactly this
    /// many requests have been admitted.
    pub shutdown_after: Option<usize>,
}

impl ServeOptions {
    /// Defaults: 1 worker, unbounded queue, block on full, no retries,
    /// default breaker thresholds, no faults, no shutdown.
    pub fn new() -> Self {
        ServeOptions::default()
    }

    /// Sets the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Bounds the admission queue (0 = unbounded).
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Sets the shed policy for a full queue.
    pub fn with_shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = shed;
        self
    }

    /// Sets the retry schedule.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the circuit-breaker thresholds.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Installs a fault plan on every worker (re-seeded per worker).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attaches an external shutdown signal.
    pub fn with_shutdown(mut self, signal: Arc<AtomicBool>) -> Self {
        self.shutdown = Some(signal);
        self
    }

    /// Stops admission after exactly `n` admitted requests.
    pub fn with_shutdown_after(mut self, n: usize) -> Self {
        self.shutdown_after = Some(n);
        self
    }
}

/// Per-engine latency roll-up.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineSummary {
    /// Completed requests on this engine.
    pub completed: usize,
    /// Failed requests on this engine.
    pub failed: usize,
    /// Shed requests on this engine.
    pub shed: usize,
    /// Sum of completed-request service latencies.
    pub total_latency: Duration,
}

impl EngineSummary {
    /// Completed requests per second of cumulative engine time.
    pub fn throughput(&self) -> f64 {
        let secs = self.total_latency.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }
}

/// The outcome of one [`serve_with`] batch.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// One record per submitted request, in submission order.
    pub records: Vec<RequestRecord>,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Cache counters at the end of the batch.
    pub cache: CacheStats,
    /// Circuit-breaker counters at the end of the batch.
    pub breaker: BreakerStats,
}

impl ServeReport {
    /// Requests that produced a result.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.completed()).count()
    }

    /// Requests where every rung of every attempt faulted.
    pub fn failed(&self) -> usize {
        self.records.iter().filter(|r| r.cause().is_some()).count()
    }

    /// Requests shed without being served.
    pub fn shed(&self) -> usize {
        self.records.iter().filter(|r| r.is_shed()).count()
    }

    /// Requests that completed below their requested rung.
    pub fn degraded(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.completed() && r.degraded)
            .count()
    }

    /// Requests that needed more than one supervised attempt.
    pub fn retried(&self) -> usize {
        self.records.iter().filter(|r| r.attempts > 1).count()
    }

    /// The `p`-th *service-time* latency percentile over completed
    /// requests, in microseconds (nearest-rank; 0 when nothing
    /// completed). Excludes queue wait.
    pub fn percentile_us(&self, p: f64) -> u128 {
        Self::nearest_rank(
            self.records
                .iter()
                .filter(|r| r.completed())
                .map(|r| r.latency.as_micros())
                .collect(),
            p,
        )
    }

    /// The `p`-th *end-to-end* (admission → completion) latency
    /// percentile over completed requests, in microseconds.
    pub fn e2e_percentile_us(&self, p: f64) -> u128 {
        Self::nearest_rank(
            self.records
                .iter()
                .filter(|r| r.completed())
                .map(|r| r.end_to_end().as_micros())
                .collect(),
            p,
        )
    }

    fn nearest_rank(mut lat: Vec<u128>, p: f64) -> u128 {
        if lat.is_empty() {
            return 0;
        }
        lat.sort_unstable();
        let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
        lat[rank.clamp(1, lat.len()) - 1]
    }

    /// Latency and throughput rolled up per engine (sorted by flag name).
    pub fn per_engine(&self) -> BTreeMap<String, EngineSummary> {
        let mut map: BTreeMap<String, EngineSummary> = BTreeMap::new();
        for r in &self.records {
            let e = map.entry(r.engine.to_string()).or_default();
            match &r.disposition {
                Disposition::Completed => {
                    e.completed += 1;
                    e.total_latency += r.latency;
                }
                Disposition::Shed(_) => e.shed += 1,
                Disposition::Failed(_) => e.failed += 1,
            }
        }
        map
    }

    /// Failed requests bucketed by cause class (kind label, sorted).
    pub fn failures_by_cause(&self) -> BTreeMap<&'static str, usize> {
        let mut map = BTreeMap::new();
        for r in &self.records {
            if let Some(cause) = r.cause() {
                *map.entry(cause.kind.label()).or_insert(0) += 1;
            }
        }
        map
    }

    /// Shed requests bucketed by shed cause (sorted).
    pub fn sheds_by_cause(&self) -> BTreeMap<&'static str, usize> {
        let mut map = BTreeMap::new();
        for r in &self.records {
            if let Disposition::Shed(cause) = r.disposition {
                *map.entry(cause.name()).or_insert(0) += 1;
            }
        }
        map
    }

    /// A human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "served {} requests on {} workers in {:.1?} ({} ok, {} degraded, {} retried, {} shed, {} failed)",
            self.records.len(),
            self.workers,
            self.wall,
            self.completed(),
            self.degraded(),
            self.retried(),
            self.shed(),
            self.failed(),
        );
        let _ = writeln!(
            out,
            "latency service p50 {} us, p99 {} us; end-to-end p50 {} us, p99 {} us",
            self.percentile_us(50.0),
            self.percentile_us(99.0),
            self.e2e_percentile_us(50.0),
            self.e2e_percentile_us(99.0),
        );
        let _ = writeln!(
            out,
            "cache: {} hits, {} misses, {} insertions, {} evictions, {} quarantined ({:.1}% hit rate)",
            self.cache.hits,
            self.cache.misses,
            self.cache.insertions,
            self.cache.evictions,
            self.cache.quarantines,
            self.cache.hit_rate() * 100.0,
        );
        if self.breaker.trips + self.breaker.rejected + self.breaker.probes > 0 {
            let _ = writeln!(
                out,
                "breaker: {} trips, {} reopens, {} closes, {} probes, {} routed-to-reference",
                self.breaker.trips,
                self.breaker.reopens,
                self.breaker.closes,
                self.breaker.probes,
                self.breaker.rejected,
            );
        }
        for (cause, n) in self.sheds_by_cause() {
            let _ = writeln!(out, "  shed/{cause:<18} {n:>6}");
        }
        for (cause, n) in self.failures_by_cause() {
            let _ = writeln!(out, "  failed/{cause:<16} {n:>6}");
        }
        for (engine, s) in self.per_engine() {
            let _ = writeln!(
                out,
                "  {engine:<12} {:>6} ok {:>4} shed {:>4} failed  {:>10.0} req/s",
                s.completed,
                s.shed,
                s.failed,
                s.throughput(),
            );
        }
        out
    }
}

struct QueueItem {
    index: usize,
    admitted: Instant,
}

struct QueueState {
    items: VecDeque<QueueItem>,
    closed: bool,
}

/// The bounded admission queue: producer pushes under a shed policy,
/// workers pop until the queue is closed *and* drained.
struct Queue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

enum Admitted {
    Ok,
    RejectedNewest,
    DroppedOldest { victim: usize, waited: Duration },
}

impl Queue {
    fn new(cap: usize) -> Self {
        Queue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        }
    }

    fn push(&self, index: usize, shed: ShedPolicy) -> Admitted {
        let mut st = self.state.lock().expect("serve queue lock poisoned");
        if self.cap > 0 && st.items.len() >= self.cap {
            match shed {
                ShedPolicy::Block => {
                    while st.items.len() >= self.cap {
                        st = self.not_full.wait(st).expect("serve queue lock poisoned");
                    }
                }
                ShedPolicy::RejectNewest => return Admitted::RejectedNewest,
                ShedPolicy::DropOldest => {
                    let victim = st.items.pop_front().expect("queue is at capacity > 0");
                    st.items.push_back(QueueItem {
                        index,
                        admitted: Instant::now(),
                    });
                    drop(st);
                    self.not_empty.notify_one();
                    return Admitted::DroppedOldest {
                        victim: victim.index,
                        waited: victim.admitted.elapsed(),
                    };
                }
            }
        }
        st.items.push_back(QueueItem {
            index,
            admitted: Instant::now(),
        });
        drop(st);
        self.not_empty.notify_one();
        Admitted::Ok
    }

    fn pop(&self) -> Option<QueueItem> {
        let mut st = self.state.lock().expect("serve queue lock poisoned");
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("serve queue lock poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("serve queue lock poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

/// Replays `requests` across `workers` threads with the default options:
/// unbounded queue, no deadlines enforced beyond each request's own, no
/// retries, default breaker thresholds. Kept as the simple entry point
/// for benchmarks and tests; [`serve_with`] is the full-featured one.
pub fn serve(requests: &[ServeRequest], workers: usize, cache: &Arc<CompileCache>) -> ServeReport {
    serve_with(requests, &ServeOptions::new().with_workers(workers), cache)
}

/// Replays `requests` under `opts`: the calling thread admits requests
/// into the bounded queue (shedding per policy) while workers drain it,
/// each request running under a supervisor attached to `cache` and the
/// batch's circuit breakers. Blocks until the whole batch has drained;
/// records come back in submission order regardless of which worker
/// served them, and every submitted request is accounted exactly once.
pub fn serve_with(
    requests: &[ServeRequest],
    opts: &ServeOptions,
    cache: &Arc<CompileCache>,
) -> ServeReport {
    let workers = opts.workers.max(1).min(requests.len().max(1));
    let breakers = Arc::new(CircuitBreakers::new(opts.breaker));
    let records: Mutex<Vec<Option<RequestRecord>>> = Mutex::new(vec![None; requests.len()]);
    let queue = Queue::new(opts.queue_cap);
    let started = Instant::now();

    std::thread::scope(|scope| {
        for wi in 0..workers {
            let queue = &queue;
            let records = &records;
            let breakers = &breakers;
            scope.spawn(move || {
                // Fault plans are thread-local: each worker gets its own
                // deterministic schedule derived from the batch plan.
                let _guard = opts.faults.as_ref().map(|plan| {
                    let seed = plan
                        .seed()
                        .wrapping_add((wi as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    faults::install(plan.clone().with_seed(seed))
                });
                while let Some(item) = queue.pop() {
                    let req = &requests[item.index];
                    // The boundary around everything per-request that
                    // runs outside the supervisor (injection, deadline
                    // math, retries): an injected worker panic becomes an
                    // attributed failure and the worker lives on.
                    let record = quiet_catch(|| {
                        serve_one(item.index, req, item.admitted, opts, cache, breakers)
                    })
                    .unwrap_or_else(|msg| {
                        RequestRecord::dead_worker(item.index, req, item.admitted.elapsed(), msg)
                    });
                    records.lock().expect("serve records lock poisoned")[item.index] = Some(record);
                }
            });
        }

        // Admission runs on the calling thread while workers drain.
        let mut admitted = 0usize;
        for (index, req) in requests.iter().enumerate() {
            let draining = opts
                .shutdown
                .as_ref()
                .is_some_and(|s| s.load(Ordering::Relaxed))
                || opts.shutdown_after.is_some_and(|n| admitted >= n);
            if draining {
                let mut recs = records.lock().expect("serve records lock poisoned");
                for (i, r) in requests.iter().enumerate().skip(index) {
                    recs[i] = Some(RequestRecord::shed(
                        i,
                        r,
                        Duration::ZERO,
                        ShedCause::Shutdown,
                    ));
                }
                break;
            }
            match queue.push(index, opts.shed) {
                Admitted::Ok => admitted += 1,
                Admitted::RejectedNewest => {
                    records.lock().expect("serve records lock poisoned")[index] = Some(
                        RequestRecord::shed(index, req, Duration::ZERO, ShedCause::QueueFull),
                    );
                }
                Admitted::DroppedOldest { victim, waited } => {
                    admitted += 1;
                    records.lock().expect("serve records lock poisoned")[victim] =
                        Some(RequestRecord::shed(
                            victim,
                            &requests[victim],
                            waited,
                            ShedCause::QueueDropped,
                        ));
                }
            }
        }
        queue.close();
    });

    ServeReport {
        records: records
            .into_inner()
            .expect("serve records lock poisoned")
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                // A worker that died outside every boundary (e.g. the OS
                // killed the thread) leaves its slot empty; account it as
                // an attributed failure rather than panicking assembly.
                r.unwrap_or_else(|| {
                    RequestRecord::dead_worker(
                        i,
                        &requests[i],
                        Duration::ZERO,
                        "worker died before completing this request".to_string(),
                    )
                })
            })
            .collect(),
        wall: started.elapsed(),
        workers,
        cache: cache.stats(),
        breaker: breakers.stats(),
    }
}

/// Serves one admitted request: injected stall/panic sites, the
/// queued-deadline check, then supervised attempts under the retry
/// policy, each handing the supervisor only the deadline time remaining.
fn serve_one(
    index: usize,
    req: &ServeRequest,
    admitted: Instant,
    opts: &ServeOptions,
    cache: &Arc<CompileCache>,
    breakers: &Arc<CircuitBreakers>,
) -> RequestRecord {
    // An injected stall wedges the worker *before* it looks at the
    // clock, so the stall is charged as queue wait — exactly how a
    // wedged worker looks from outside.
    if faults::fire(FaultSite::ServeStall) {
        std::thread::sleep(STALL);
    }
    let queue_wait = admitted.elapsed();
    faults::maybe_panic(FaultSite::WorkerPanic);

    let mut record = RequestRecord {
        queue_wait,
        ..RequestRecord::base(index, req)
    };
    if let Some(deadline) = req.deadline {
        if queue_wait >= deadline {
            record.disposition = Disposition::Shed(ShedCause::DeadlineExpired);
            return record;
        }
    }

    let mut rng = Rng::new(
        opts.retry
            .seed
            .wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    let service_started = Instant::now();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let mut sup = req
            .request
            .supervisor()
            .with_cache(cache.clone())
            .with_breaker(breakers.clone());
        if let Some(deadline) = req.deadline {
            sup = sup.with_remaining(deadline.saturating_sub(admitted.elapsed()));
        }
        match sup.run_source(&req.source) {
            Ok(done) => {
                record.checksum_bits = done.outcome.checksum().to_bits();
                record.scalars_bits = done.outcome.scalars.iter().map(|s| s.to_bits()).collect();
                record.degraded = done.report.degraded();
                record.breaker_routed = done.report.breaker_open;
                record.disposition = Disposition::Completed;
                break;
            }
            Err(e) => {
                record.breaker_routed = e.report.breaker_open;
                if e.cause.kind.is_transient() && attempts <= opts.retry.max_retries {
                    let mut pause = opts.retry.backoff_for(attempts, &mut rng);
                    if let Some(deadline) = req.deadline {
                        let remaining = deadline.saturating_sub(admitted.elapsed());
                        if remaining.is_zero() {
                            record.disposition = Disposition::Failed(e.cause);
                            break;
                        }
                        pause = pause.min(remaining);
                    }
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                    continue;
                }
                record.disposition = Disposition::Failed(e.cause);
                break;
            }
        }
    }
    record.attempts = attempts;
    record.latency = service_started.elapsed();
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "program t; config n : int = 8; region R = [1..n]; \
        var A, B : [R] float; var s : float; \
        begin [R] A := 2.0; [R] B := A * A + 1.5; s := +<< [R] B; end";

    fn batch(copies: usize) -> Vec<ServeRequest> {
        let engines = [
            Engine::Interp,
            Engine::Vm,
            Engine::VmVerified,
            Engine::VmPar,
        ];
        (0..copies)
            .map(|i| {
                ServeRequest::new(
                    "t",
                    SRC,
                    RunRequest::new().with_engine(engines[i % engines.len()]),
                )
            })
            .collect()
    }

    #[test]
    fn serves_a_batch_with_cache_hits() {
        let cache = Arc::new(CompileCache::new());
        let report = serve(&batch(32), 4, &cache);
        assert_eq!(report.completed(), 32);
        assert_eq!(report.failed(), 0);
        assert_eq!(report.shed(), 0);
        // 4 distinct (engine) keys; everything after the first misses hits.
        assert!(report.cache.hits >= 24, "{:?}", report.cache);
        assert!(report.cache.hit_rate() > 0.5, "{:?}", report.cache);
    }

    #[test]
    fn results_are_bit_identical_across_workers_and_engines() {
        let cache = Arc::new(CompileCache::new());
        let report = serve(&batch(24), 6, &cache);
        let first = report.records[0].scalars_bits.clone();
        assert!(!first.is_empty());
        for r in &report.records {
            assert_eq!(r.scalars_bits, first, "request {} diverged", r.index);
        }
    }

    #[test]
    fn bad_source_fails_alone_with_a_typed_cause() {
        let cache = Arc::new(CompileCache::new());
        let mut reqs = batch(3);
        reqs.push(ServeRequest::new("bad", "program ???", RunRequest::new()));
        let report = serve(&reqs, 2, &cache);
        assert_eq!(report.completed(), 3);
        assert_eq!(report.failed(), 1);
        let bad = report.records.last().unwrap();
        let cause = bad.cause().expect("parse failure carries its cause");
        assert_eq!(cause.kind, CauseKind::Parse);
        assert_eq!(cause.stage, Stage::Parse);
        assert_eq!(report.failures_by_cause().get("parse error"), Some(&1));
        assert!(report.render().contains("1 failed"), "{}", report.render());
    }

    #[test]
    fn percentiles_and_rollups_are_sane() {
        let cache = Arc::new(CompileCache::new());
        let report = serve(&batch(16), 1, &cache);
        assert!(report.percentile_us(50.0) <= report.percentile_us(99.0));
        assert!(report.e2e_percentile_us(50.0) >= report.percentile_us(50.0));
        let per = report.per_engine();
        assert_eq!(per.len(), 4);
        assert!(per.values().all(|s| s.completed == 4 && s.failed == 0));
        // Every completed record accounts its queue wait and one attempt.
        assert!(report.records.iter().all(|r| r.attempts == 1));
    }

    #[test]
    fn reject_newest_sheds_under_stalled_workers() {
        let cache = Arc::new(CompileCache::new());
        let opts = ServeOptions::new()
            .with_workers(1)
            .with_queue_cap(1)
            .with_shed(ShedPolicy::RejectNewest)
            .with_faults(FaultPlan::new(11).with(FaultSite::ServeStall, 1.0));
        let reqs = batch(8);
        let report = serve_with(&reqs, &opts, &cache);
        assert_eq!(report.completed() + report.shed(), 8);
        assert!(report.shed() >= 1, "{}", report.render());
        for r in &report.records {
            match &r.disposition {
                Disposition::Shed(cause) => assert_eq!(*cause, ShedCause::QueueFull),
                Disposition::Completed => {}
                Disposition::Failed(c) => panic!("unexpected failure: {c}"),
            }
        }
        assert!(report.render().contains("shed/queue-full"));
    }

    #[test]
    fn drop_oldest_sheds_the_displaced_request() {
        let cache = Arc::new(CompileCache::new());
        let opts = ServeOptions::new()
            .with_workers(1)
            .with_queue_cap(1)
            .with_shed(ShedPolicy::DropOldest)
            .with_faults(FaultPlan::new(12).with(FaultSite::ServeStall, 1.0));
        let reqs = batch(8);
        let report = serve_with(&reqs, &opts, &cache);
        assert_eq!(report.completed() + report.shed(), 8);
        assert!(report.shed() >= 1, "{}", report.render());
        assert!(report
            .records
            .iter()
            .all(|r| !matches!(r.disposition, Disposition::Shed(ShedCause::QueueFull))));
        // The newest request is never the one dropped.
        assert!(report.records.last().unwrap().completed());
    }

    #[test]
    fn shutdown_after_sheds_the_rest_as_shutdown() {
        let cache = Arc::new(CompileCache::new());
        let opts = ServeOptions::new().with_workers(2).with_shutdown_after(3);
        let reqs = batch(8);
        let report = serve_with(&reqs, &opts, &cache);
        assert_eq!(report.completed(), 3);
        assert_eq!(report.shed(), 5);
        for r in &report.records[3..] {
            assert_eq!(r.disposition, Disposition::Shed(ShedCause::Shutdown));
        }
    }

    #[test]
    fn shutdown_signal_pre_set_sheds_everything() {
        let cache = Arc::new(CompileCache::new());
        let signal = Arc::new(AtomicBool::new(true));
        let opts = ServeOptions::new()
            .with_workers(2)
            .with_shutdown(signal.clone());
        let report = serve_with(&batch(4), &opts, &cache);
        assert_eq!(report.completed(), 0);
        assert_eq!(report.shed(), 4);
        assert_eq!(cache.stats().misses, 0, "nothing compiles after shutdown");
    }

    #[test]
    fn queued_deadline_expiry_sheds_without_compiling() {
        let cache = Arc::new(CompileCache::new());
        // Every request stalls 30 ms before the clock check, with a 5 ms
        // total deadline: all expire in (effective) queue wait.
        let opts = ServeOptions::new()
            .with_workers(2)
            .with_faults(FaultPlan::new(13).with(FaultSite::ServeStall, 1.0));
        let reqs: Vec<ServeRequest> = batch(6)
            .into_iter()
            .map(|r| r.with_deadline(Duration::from_millis(5)))
            .collect();
        let report = serve_with(&reqs, &opts, &cache);
        assert_eq!(report.completed(), 0);
        assert_eq!(report.shed(), 6);
        for r in &report.records {
            assert_eq!(r.disposition, Disposition::Shed(ShedCause::DeadlineExpired));
            assert!(r.queue_wait >= Duration::from_millis(5));
        }
        assert_eq!(cache.stats().misses, 0, "expired requests never compile");
    }

    #[test]
    fn worker_panic_is_an_attributed_failure_not_a_crash() {
        let cache = Arc::new(CompileCache::new());
        let opts = ServeOptions::new()
            .with_workers(2)
            .with_faults(FaultPlan::new(14).with(FaultSite::WorkerPanic, 1.0));
        let reqs = batch(6);
        let report = serve_with(&reqs, &opts, &cache);
        assert_eq!(report.failed(), 6);
        for r in &report.records {
            let cause = r.cause().expect("worker panic is accounted");
            assert_eq!(cause.kind, CauseKind::Panic);
            assert!(cause.message.contains("worker-panic"), "{}", cause.message);
        }
    }

    #[test]
    fn transient_full_ladder_failures_are_retried() {
        let cache = Arc::new(CompileCache::new());
        // Pre-warm every rung the Vm ladder touches so each one hits the
        // cache, then corrupt exactly the first three hits: attempt 1
        // burns the whole ladder on corrupted hits, attempt 2 runs clean.
        let reqs = vec![ServeRequest::new(
            "t",
            SRC,
            RunRequest::new().with_engine(Engine::Vm),
        )];
        serve(&reqs, 1, &cache); // warm (c2,vm)
        let warm_interp = vec![
            ServeRequest::new("t", SRC, RunRequest::new().with_engine(Engine::Interp)),
            ServeRequest::new(
                "t",
                SRC,
                RunRequest::new()
                    .with_engine(Engine::Interp)
                    .with_level(Level::Baseline),
            ),
        ];
        serve(&warm_interp, 1, &cache);

        let opts = ServeOptions::new()
            .with_workers(1)
            .with_retry(RetryPolicy::retries(2))
            // The breaker must not trip mid-test; raise its threshold.
            .with_breaker(BreakerConfig {
                failure_threshold: 100,
                ..BreakerConfig::default()
            })
            .with_faults(FaultPlan::new(15).with_limited(FaultSite::CacheCorrupt, 1.0, Some(3)));
        let report = serve_with(&reqs, &opts, &cache);
        assert_eq!(report.completed(), 1, "{}", report.render());
        let r = &report.records[0];
        assert_eq!(r.attempts, 2, "one transient failure, one clean retry");
        assert_eq!(report.retried(), 1);
        assert!(report.render().contains("1 retried"));
    }

    #[test]
    fn permanent_failures_are_not_retried() {
        let cache = Arc::new(CompileCache::new());
        let reqs = vec![ServeRequest::new("bad", "program ???", RunRequest::new())];
        let opts = ServeOptions::new().with_retry(RetryPolicy::retries(3));
        let report = serve_with(&reqs, &opts, &cache);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.records[0].attempts, 1, "parse errors fail fast");
    }

    #[test]
    fn shed_policy_parses_its_flag_spellings() {
        assert_eq!("reject".parse(), Ok(ShedPolicy::RejectNewest));
        assert_eq!("reject-newest".parse(), Ok(ShedPolicy::RejectNewest));
        assert_eq!("drop".parse(), Ok(ShedPolicy::DropOldest));
        assert_eq!("drop-oldest".parse(), Ok(ShedPolicy::DropOldest));
        assert_eq!("block".parse(), Ok(ShedPolicy::Block));
        assert!("newest".parse::<ShedPolicy>().is_err());
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            max_retries: 5,
            backoff: Duration::from_millis(4),
            max_backoff: Duration::from_millis(10),
            seed: 9,
        };
        let seq = |seed| {
            let mut rng = Rng::new(seed);
            (1..=4)
                .map(|a| policy.backoff_for(a, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(1), seq(1), "same seed, same schedule");
        for (attempt, d) in seq(2).iter().enumerate() {
            let full = Duration::from_millis(4)
                .saturating_mul(1 << attempt)
                .min(Duration::from_millis(10));
            assert!(*d <= full, "jitter never exceeds the backoff");
            assert!(*d >= full.mul_f64(0.5), "jitter stays above half");
        }
    }
}
