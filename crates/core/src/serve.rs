//! The batch serving path: replay a stream of mixed compile-and-run
//! requests across worker threads, sharing one [`CompileCache`].
//!
//! This is the driver behind `zlc serve` and the `serve` benchmark. Each
//! request is a `(source, RunRequest)` pair; workers pull requests from a
//! shared queue and run each one under a fault-isolating
//! [`Supervisor`](crate::supervisor::Supervisor) attached to the shared
//! cache, so a panicking or budget-violating request degrades or fails
//! *alone* without taking down the batch, while repeated programs hit
//! the content-addressed cache and skip the whole pass pipeline.
//!
//! The report records per-request latency and result bits (for
//! bit-identical differential checks), and rolls up p50/p99 latency,
//! per-engine throughput, and the cache's hit/miss/eviction counters.

use crate::cache::{CacheStats, CompileCache};
use crate::pipeline::Level;
use crate::request::RunRequest;
use loopir::Engine;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One unit of serving work: a named program source plus the complete
/// run configuration to execute it under.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Display name (for per-program roll-ups; not required unique).
    pub name: String,
    /// zlang source text of the program to compile and run.
    pub source: String,
    /// How to compile and execute it.
    pub request: RunRequest,
}

impl ServeRequest {
    /// A serve request for `source` under `request`.
    pub fn new(name: &str, source: &str, request: RunRequest) -> Self {
        ServeRequest {
            name: name.to_string(),
            source: source.to_string(),
            request,
        }
    }
}

/// What happened to one request: identity, latency, and the result bits.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Index of the request in the submitted batch.
    pub index: usize,
    /// The request's display name.
    pub name: String,
    /// Engine the request asked for.
    pub engine: Engine,
    /// Level the request asked for.
    pub level: Level,
    /// End-to-end latency of this request (queue wait excluded).
    pub latency: Duration,
    /// `f64::to_bits` of the checksum scalar, for exact comparison.
    pub checksum_bits: u64,
    /// Bit patterns of every final scalar, for exact comparison.
    pub scalars_bits: Vec<u64>,
    /// Whether the supervisor degraded below the requested rung.
    pub degraded: bool,
    /// The failure message, when every rung faulted.
    pub error: Option<String>,
}

impl RequestRecord {
    /// Did the request produce a result (possibly degraded)?
    pub fn completed(&self) -> bool {
        self.error.is_none()
    }
}

/// Per-engine latency roll-up.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineSummary {
    /// Completed requests on this engine.
    pub completed: usize,
    /// Failed requests on this engine.
    pub failed: usize,
    /// Sum of completed-request latencies.
    pub total_latency: Duration,
}

impl EngineSummary {
    /// Completed requests per second of cumulative engine time.
    pub fn throughput(&self) -> f64 {
        let secs = self.total_latency.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }
}

/// The outcome of one [`serve`] batch.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// One record per submitted request, in submission order.
    pub records: Vec<RequestRecord>,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Cache counters at the end of the batch.
    pub cache: CacheStats,
}

impl ServeReport {
    /// Requests that produced a result.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.completed()).count()
    }

    /// Requests where every ladder rung faulted.
    pub fn failed(&self) -> usize {
        self.records.len() - self.completed()
    }

    /// Requests that completed below their requested rung.
    pub fn degraded(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.completed() && r.degraded)
            .count()
    }

    /// The `p`-th latency percentile over completed requests, in
    /// microseconds (nearest-rank; 0 when nothing completed).
    pub fn percentile_us(&self, p: f64) -> u128 {
        let mut lat: Vec<u128> = self
            .records
            .iter()
            .filter(|r| r.completed())
            .map(|r| r.latency.as_micros())
            .collect();
        if lat.is_empty() {
            return 0;
        }
        lat.sort_unstable();
        let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
        lat[rank.clamp(1, lat.len()) - 1]
    }

    /// Latency and throughput rolled up per engine (sorted by flag name).
    pub fn per_engine(&self) -> BTreeMap<String, EngineSummary> {
        let mut map: BTreeMap<String, EngineSummary> = BTreeMap::new();
        for r in &self.records {
            let e = map.entry(r.engine.to_string()).or_default();
            if r.completed() {
                e.completed += 1;
                e.total_latency += r.latency;
            } else {
                e.failed += 1;
            }
        }
        map
    }

    /// A human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "served {} requests on {} workers in {:.1?} ({} ok, {} degraded, {} failed)",
            self.records.len(),
            self.workers,
            self.wall,
            self.completed(),
            self.degraded(),
            self.failed(),
        );
        let _ = writeln!(
            out,
            "latency p50 {} us, p99 {} us",
            self.percentile_us(50.0),
            self.percentile_us(99.0),
        );
        let _ = writeln!(
            out,
            "cache: {} hits, {} misses, {} insertions, {} evictions ({:.1}% hit rate)",
            self.cache.hits,
            self.cache.misses,
            self.cache.insertions,
            self.cache.evictions,
            self.cache.hit_rate() * 100.0,
        );
        for (engine, s) in self.per_engine() {
            let _ = writeln!(
                out,
                "  {engine:<12} {:>6} ok {:>4} failed  {:>10.0} req/s",
                s.completed,
                s.failed,
                s.throughput(),
            );
        }
        out
    }
}

/// Replays `requests` across `workers` threads (clamped to at least 1),
/// every worker running each request under a supervisor attached to
/// `cache`. Blocks until the whole batch has drained; records come back
/// in submission order regardless of which worker served them.
pub fn serve(requests: &[ServeRequest], workers: usize, cache: &Arc<CompileCache>) -> ServeReport {
    let workers = workers.max(1).min(requests.len().max(1));
    let next = AtomicUsize::new(0);
    let records: Mutex<Vec<Option<RequestRecord>>> = Mutex::new(vec![None; requests.len()]);
    let started = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(req) = requests.get(index) else {
                    break;
                };
                let record = serve_one(index, req, cache);
                records.lock().unwrap()[index] = Some(record);
            });
        }
    });

    ServeReport {
        records: records
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("every request is served exactly once"))
            .collect(),
        wall: started.elapsed(),
        workers,
        cache: cache.stats(),
    }
}

fn serve_one(index: usize, req: &ServeRequest, cache: &Arc<CompileCache>) -> RequestRecord {
    let sup = req.request.supervisor().with_cache(cache.clone());
    let t = Instant::now();
    let run = sup.run_source(&req.source);
    let latency = t.elapsed();
    let mut record = RequestRecord {
        index,
        name: req.name.clone(),
        engine: req.request.engine,
        level: req.request.level,
        latency,
        checksum_bits: 0,
        scalars_bits: Vec::new(),
        degraded: false,
        error: None,
    };
    match run {
        Ok(done) => {
            record.checksum_bits = done.outcome.checksum().to_bits();
            record.scalars_bits = done.outcome.scalars.iter().map(|s| s.to_bits()).collect();
            record.degraded = done.report.degraded();
        }
        Err(e) => record.error = Some(e.to_string()),
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "program t; config n : int = 8; region R = [1..n]; \
        var A, B : [R] float; var s : float; \
        begin [R] A := 2.0; [R] B := A * A + 1.5; s := +<< [R] B; end";

    fn batch(copies: usize) -> Vec<ServeRequest> {
        let engines = [
            Engine::Interp,
            Engine::Vm,
            Engine::VmVerified,
            Engine::VmPar,
        ];
        (0..copies)
            .map(|i| {
                ServeRequest::new(
                    "t",
                    SRC,
                    RunRequest::new().with_engine(engines[i % engines.len()]),
                )
            })
            .collect()
    }

    #[test]
    fn serves_a_batch_with_cache_hits() {
        let cache = Arc::new(CompileCache::new());
        let report = serve(&batch(32), 4, &cache);
        assert_eq!(report.completed(), 32);
        assert_eq!(report.failed(), 0);
        // 4 distinct (engine) keys; everything after the first misses hits.
        assert!(report.cache.hits >= 24, "{:?}", report.cache);
        assert!(report.cache.hit_rate() > 0.5, "{:?}", report.cache);
    }

    #[test]
    fn results_are_bit_identical_across_workers_and_engines() {
        let cache = Arc::new(CompileCache::new());
        let report = serve(&batch(24), 6, &cache);
        let first = report.records[0].scalars_bits.clone();
        assert!(!first.is_empty());
        for r in &report.records {
            assert_eq!(r.scalars_bits, first, "request {} diverged", r.index);
        }
    }

    #[test]
    fn bad_source_fails_alone() {
        let cache = Arc::new(CompileCache::new());
        let mut reqs = batch(3);
        reqs.push(ServeRequest::new("bad", "program ???", RunRequest::new()));
        let report = serve(&reqs, 2, &cache);
        assert_eq!(report.completed(), 3);
        assert_eq!(report.failed(), 1);
        let bad = report.records.last().unwrap();
        assert!(bad.error.is_some());
        assert!(report.render().contains("1 failed"), "{}", report.render());
    }

    #[test]
    fn percentiles_and_rollups_are_sane() {
        let cache = Arc::new(CompileCache::new());
        let report = serve(&batch(16), 1, &cache);
        assert!(report.percentile_us(50.0) <= report.percentile_us(99.0));
        let per = report.per_engine();
        assert_eq!(per.len(), 4);
        assert!(per.values().all(|s| s.completed == 4 && s.failed == 0));
    }
}
