//! The fault-tolerant compile-and-run supervisor.
//!
//! The optimizer is an experiment in aggressive program transformation,
//! and aggressive transformations fail in interesting ways: a panic deep
//! inside `GROW`, a verifier that (correctly or not) rejects the lowered
//! bytecode, a trapped VM instruction, a run that exceeds its time or
//! space budget. None of those should take down a caller that asked a
//! simple question — "what does this program compute?" — because the
//! system always has a slower engine that still knows the answer.
//!
//! [`Supervisor`] wraps the whole pipeline — parse, normalize, fuse,
//! scalarize, verify, execute — in a fault boundary and degrades along a
//! fixed ladder when a stage faults:
//!
//! ```text
//! (level, vm-par)   →  (level, vm-simd)  →  (level, vm-verified)
//!                   →  (level, vm)       →  (level, interp)
//!                   →  (baseline, interp)
//! ```
//!
//! The topmost rung is the parallel tiled VM ([`Engine::VmPar`]); it
//! shares the verified superinstruction bytecode across a thread pool, so
//! a verifier rejection or tile trap degrades it first to the
//! single-threaded lane engine ([`Engine::VmSimd`]), then to the scalar
//! `vm-verified` rung running plain (non-superinstruction) bytecode.
//!
//! The final rung — the unoptimized reference interpreter — is the
//! semantic ground truth for the entire system (every engine is tested
//! bit-identical against it), so degradation never changes the computed
//! answer, only how fast it arrives. Every attempt, fault, and retry is
//! recorded in a [`SupervisorReport`] so callers can see exactly what
//! happened and why.
//!
//! Faults handled:
//!
//! * **Panics** in any stage (caught with `catch_unwind`; the panic-hook
//!   output is suppressed while the supervisor is in charge). A panic
//!   during optimization *poisons the level*: rungs that would re-run the
//!   same deterministic optimization are skipped.
//! * **Verifier rejections** — the `vm-verified` engine refuses to
//!   construct; the plain VM runs the same bytecode with bounds checks.
//! * **Resource budgets** ([`Budgets`]): instruction fuel and a
//!   wall-clock deadline (enforced inside the engines via
//!   [`ExecLimits`]), plus a pre-flight estimate of peak allocation from
//!   the region extents. The reference rung runs unbudgeted by default —
//!   a degraded answer late beats no answer — unless
//!   [`Budgets::enforce_on_reference`] is set.
//! * **Communication failures** from a simulated-runtime backend
//!   (installed with [`Supervisor::with_sim`]): the same rung is retried
//!   once with simulation disabled, since the communication simulation
//!   affects timing models, never computed values.
//!
//! ```
//! use fusion_core::supervisor::Supervisor;
//! use fusion_core::Level;
//! use loopir::Engine;
//!
//! let src = "program t; config n : int = 4; region R = [1..n];
//!            var A : [R] float; var s : float;
//!            begin [R] A := 2.5; s := +<< [R] A; end";
//! let sup = Supervisor::new(Level::C2F3, Engine::VmVerified);
//! let run = sup.run_source(src).unwrap();
//! assert_eq!(run.outcome.checksum(), 10.0);
//! assert!(!run.report.degraded());
//! ```

use crate::breaker::{Admission, CircuitBreakers};
use crate::cache::{CacheKey, CachedProgram, ClaimGuard, CompileCache, Lookup};
use crate::pipeline::{Level, Pipeline};
use loopir::{
    Engine, ErrorKind, ExecError, ExecLimits, ExecOpts, Executor, Interp, NoopObserver, RunOutcome,
    ScalarProgram, SharedProgram,
};
use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};
use testkit::faults::{self, FaultSite};
use zlang::ir::{ConfigBinding, Program};

/// A pipeline stage, for fault attribution — the shared pass identity
/// from [`crate::pass::PassId`]. The pass manager marks each pass as it
/// runs, so a caught panic is attributed to the exact pass (e.g.
/// `fuse-contraction`) rather than a coarse phase; `Parse`,
/// `VerifyBytecode`, and `Execute` cover the stages around the manager.
pub use crate::pass::PassId as Stage;

thread_local! {
    static CURRENT_STAGE: Cell<Stage> = const { Cell::new(Stage::Execute) };
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
}

/// Marks the currently running pipeline stage on this thread, so a panic
/// caught by the supervisor is attributed to the stage that raised it.
/// Called by [`Pipeline::optimize`] as it moves through its phases; a
/// no-op for everyone else.
pub fn enter_stage(stage: Stage) {
    CURRENT_STAGE.with(|s| s.set(stage));
}

/// The stage most recently marked with [`enter_stage`] on this thread.
pub fn current_stage() -> Stage {
    CURRENT_STAGE.with(|s| s.get())
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" report while a supervisor on this thread is inside
/// `catch_unwind`. Panics on other threads report normally.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !CAPTURING.with(|c| c.get()) {
                prev(info);
            }
        }));
    });
}

/// Runs `f`, converting a panic into its message. The default panic
/// report is suppressed for the duration. Shared with the serve layer,
/// whose workers need the same boundary around per-request code that
/// runs *outside* the supervisor (dequeue, fault injection, retries).
pub(crate) fn quiet_catch<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_hook();
    let prev = CAPTURING.with(|c| c.replace(true));
    let r = panic::catch_unwind(AssertUnwindSafe(f));
    CAPTURING.with(|c| c.set(prev));
    r.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        }
    })
}

/// What kind of fault an attempt died of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CauseKind {
    /// A caught panic.
    Panic,
    /// The bytecode verifier rejected the program.
    VerifyReject,
    /// The instruction-fuel budget ran out.
    Fuel,
    /// The wall-clock deadline passed.
    Deadline,
    /// The pre-flight allocation estimate exceeded the budget.
    AllocBudget,
    /// The simulated runtime reported an unrecoverable communication
    /// failure.
    Comm,
    /// Source text failed to parse or typecheck.
    Parse,
    /// Any other execution error (trap, out-of-bounds access, lowering
    /// failure).
    Exec,
}

impl CauseKind {
    fn name(self) -> &'static str {
        match self {
            CauseKind::Panic => "panic",
            CauseKind::VerifyReject => "verifier rejection",
            CauseKind::Fuel => "fuel exhausted",
            CauseKind::Deadline => "deadline exceeded",
            CauseKind::AllocBudget => "allocation budget exceeded",
            CauseKind::Comm => "communication failure",
            CauseKind::Parse => "parse error",
            CauseKind::Exec => "execution error",
        }
    }

    fn from_exec(e: &ExecError) -> CauseKind {
        match e.kind {
            ErrorKind::Verify => CauseKind::VerifyReject,
            ErrorKind::Fuel => CauseKind::Fuel,
            ErrorKind::Deadline => CauseKind::Deadline,
            ErrorKind::Comm => CauseKind::Comm,
            _ => CauseKind::Exec,
        }
    }

    /// True if a fault of this kind is plausibly transient — a retry of
    /// the same request may succeed. Communication failures and
    /// execution-stage faults (vm-traps, poisoned cache artifacts)
    /// qualify; parse errors, verifier rejections, and panics are
    /// deterministic reruns of the same failure, and the budget kinds
    /// (fuel, deadline, allocation) are policy decisions a retry would
    /// only re-spend.
    pub fn is_transient(self) -> bool {
        matches!(self, CauseKind::Comm | CauseKind::Exec)
    }

    /// One human-readable word-or-two per kind, used to bucket failures
    /// in serving reports.
    pub fn label(self) -> &'static str {
        self.name()
    }
}

/// Why an attempt failed: the stage it was in, the kind of fault, and
/// the fault's own message.
#[derive(Debug, Clone, PartialEq)]
pub struct Cause {
    /// The stage that faulted.
    pub stage: Stage,
    /// The fault classification.
    pub kind: CauseKind,
    /// The underlying message (panic payload, error display, ...).
    pub message: String,
}

impl fmt::Display for Cause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {} stage: {}",
            self.kind.name(),
            self.stage,
            self.message
        )
    }
}

/// One rung of the degradation ladder as actually tried.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// Optimization level of this attempt.
    pub level: Level,
    /// Engine of this attempt.
    pub engine: Engine,
    /// Wall-clock time the attempt took (including a failed one).
    pub elapsed: Duration,
    /// `None` if the attempt succeeded; the fault otherwise.
    pub fault: Option<Cause>,
    /// True if this attempt re-ran its rung with the simulated runtime
    /// disabled after a communication failure.
    pub sim_disabled: bool,
}

/// The complete record of a supervised run.
#[derive(Debug, Clone)]
pub struct SupervisorReport {
    /// The level the caller asked for.
    pub requested_level: Level,
    /// The engine the caller asked for.
    pub requested_engine: Engine,
    /// Every attempt, in order; the last one succeeded unless the whole
    /// run failed.
    pub attempts: Vec<Attempt>,
    /// The level that produced the answer (meaningless if the run failed).
    pub final_level: Level,
    /// The engine that produced the answer (meaningless if the run failed).
    pub final_engine: Engine,
    /// True if the requested key's circuit breaker was open and the run
    /// was routed straight to the reference rung, bypassing the cache.
    pub breaker_open: bool,
}

impl SupervisorReport {
    fn new(level: Level, engine: Engine) -> Self {
        SupervisorReport {
            requested_level: level,
            requested_engine: engine,
            attempts: Vec::new(),
            final_level: level,
            final_engine: engine,
            breaker_open: false,
        }
    }

    /// True if the answer did not come from the requested (level, engine).
    pub fn degraded(&self) -> bool {
        self.final_level != self.requested_level || self.final_engine != self.requested_engine
    }

    /// Number of attempts beyond the first.
    pub fn retries(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }

    /// Every fault recorded across the attempts.
    pub fn faults(&self) -> impl Iterator<Item = &Cause> {
        self.attempts.iter().filter_map(|a| a.fault.as_ref())
    }

    /// True if `text` appears anywhere in the rendered report — stage
    /// names, fault kinds, or fault messages. Chaos tests use this to
    /// assert that the report names the injected fault site.
    pub fn mentions(&self, text: &str) -> bool {
        self.render().contains(text)
    }

    /// A human-readable multi-line account of the run.
    pub fn render(&self) -> String {
        let mut out = format!(
            "supervised run: requested {} on {}\n",
            self.requested_level.name(),
            self.requested_engine.name()
        );
        for (i, a) in self.attempts.iter().enumerate() {
            let status = match &a.fault {
                None => "ok".to_string(),
                Some(c) => c.to_string(),
            };
            let sim = if a.sim_disabled { ", sim disabled" } else { "" };
            out.push_str(&format!(
                "  attempt {}: {} on {}{} — {} ({:.3} ms)\n",
                i + 1,
                a.level.name(),
                a.engine.name(),
                sim,
                status,
                a.elapsed.as_secs_f64() * 1e3,
            ));
        }
        out.push_str(&format!(
            "  final: {} on {}{}{}\n",
            self.final_level.name(),
            self.final_engine.name(),
            if self.degraded() { " (degraded)" } else { "" },
            if self.breaker_open {
                " (breaker open)"
            } else {
                ""
            }
        ));
        out
    }
}

/// Resource budgets for a supervised run. All default to unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Budgets {
    /// Wall-clock budget per attempt.
    pub deadline: Option<Duration>,
    /// Abstract-step fuel per attempt (see [`ExecLimits`]).
    pub fuel: Option<u64>,
    /// Cap on the pre-flight estimate of peak array allocation, in bytes.
    pub max_alloc_bytes: Option<u64>,
    /// Apply the budgets to the final reference rung too. Off by default:
    /// the reference interpreter is the rung of last resort, and a slow
    /// correct answer beats none.
    pub enforce_on_reference: bool,
}

impl Budgets {
    /// No budgets.
    pub fn none() -> Self {
        Budgets::default()
    }

    /// The per-attempt engine limits these budgets imply (fuel plus a
    /// deadline measured from now); the allocation cap is enforced by the
    /// supervisor's pre-flight estimate, not the engines.
    pub fn limits(&self) -> ExecLimits {
        let mut l = ExecLimits::none();
        if let Some(f) = self.fuel {
            l = l.with_fuel(f);
        }
        if let Some(d) = self.deadline {
            l = l.with_deadline_in(d);
        }
        l
    }
}

/// A simulated-runtime backend: executes a scalarized program under a
/// binding on an engine with limits, returning the outcome or a
/// (possibly communication-related) failure.
pub type SimFn<'a> = dyn Fn(&ScalarProgram, &ConfigBinding, Engine, ExecLimits) -> Result<RunOutcome, ExecError>
    + 'a;

/// A successful supervised run: the answer plus the account of how it
/// was obtained.
#[derive(Debug, Clone)]
pub struct Supervised {
    /// The program's result (scalars + stats) from the final attempt.
    pub outcome: RunOutcome,
    /// What happened along the way.
    pub report: SupervisorReport,
}

/// Every rung of the ladder faulted.
#[derive(Debug, Clone)]
pub struct SupervisorError {
    /// The fault that killed the last attempt.
    pub cause: Cause,
    /// The full account, for diagnosis.
    pub report: SupervisorReport,
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "all execution strategies failed; last {}", self.cause)
    }
}

impl std::error::Error for SupervisorError {}

/// The fault-boundary wrapper around compile-and-run. See the module
/// docs for the fault model and ladder.
pub struct Supervisor<'a> {
    level: Level,
    engine: Engine,
    budgets: Budgets,
    bindings: Vec<(String, i64)>,
    sim: Option<Box<SimFn<'a>>>,
    threads: usize,
    lanes: usize,
    cache: Option<Arc<CompileCache>>,
    breaker: Option<Arc<CircuitBreakers>>,
}

impl fmt::Debug for Supervisor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supervisor")
            .field("level", &self.level)
            .field("engine", &self.engine)
            .field("budgets", &self.budgets)
            .field("sim", &self.sim.is_some())
            .finish()
    }
}

impl<'a> Supervisor<'a> {
    /// A supervisor targeting a level and engine, with no budgets and
    /// direct (unsimulated) execution.
    pub fn new(level: Level, engine: Engine) -> Self {
        Supervisor {
            level,
            engine,
            budgets: Budgets::none(),
            bindings: Vec::new(),
            sim: None,
            threads: 0,
            lanes: 0,
            cache: None,
            breaker: None,
        }
    }

    /// Attaches a shared [`CompileCache`]: every rung first consults the
    /// cache at its own `(level, engine)` coordinates — a hit reuses the
    /// `Arc`-shared scalarized program and compiled bytecode and skips
    /// the `PassManager`, the bytecode compiler, and the verifier — and
    /// every cold compile publishes its artifact for future runs. This
    /// is how the serve path amortizes compilation across requests while
    /// keeping the fault boundary per-request.
    pub fn with_cache(mut self, cache: Arc<CompileCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a shared [`CircuitBreakers`] registry. Before running,
    /// the supervisor asks the breaker about the requested rung's cache
    /// key: an open key routes the run straight to the unoptimized
    /// reference interpreter *without consulting the cache*, so a
    /// quarantined artifact is never re-served while its key is open.
    /// Successes and execution-time faults of the requested rung feed
    /// back into the breaker, and a trip quarantines the cached entry.
    pub fn with_breaker(mut self, breaker: Arc<CircuitBreakers>) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Tightens the wall-clock budget to at most `remaining` — the serve
    /// path calls this with a request's deadline minus its queue wait, so
    /// time spent queued is charged against the same total deadline the
    /// caller asked for.
    pub fn with_remaining(mut self, remaining: Duration) -> Self {
        self.budgets.deadline = Some(match self.budgets.deadline {
            Some(d) => d.min(remaining),
            None => remaining,
        });
        self
    }

    /// Sets the worker-thread count for the `vm-par` engine (`0` = auto).
    /// Ignored by the sequential engines, including every rung the
    /// ladder degrades to below `vm-par`. Budgets still hold across the
    /// fan-out: tile instruction counts drain the same fuel budget as
    /// coordinator instructions, and workers poll the same deadline.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the lane width for the `vm-simd` and `vm-par` engines
    /// (`0` = the engine default of 4, `1` = scalar dispatch). Ignored by
    /// the non-superinstruction engines.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Sets the resource budgets.
    pub fn with_budgets(mut self, budgets: Budgets) -> Self {
        self.budgets = budgets;
        self
    }

    /// Overrides a config variable (like `zlc --set n=512`).
    pub fn with_binding(mut self, name: &str, value: i64) -> Self {
        self.bindings.push((name.to_string(), value));
        self
    }

    /// Installs a simulated-runtime backend. On a communication failure
    /// the supervisor retries the same rung with the backend disabled
    /// (communication simulation affects timing models, not values).
    pub fn with_sim(
        mut self,
        sim: impl Fn(&ScalarProgram, &ConfigBinding, Engine, ExecLimits) -> Result<RunOutcome, ExecError>
            + 'a,
    ) -> Self {
        self.sim = Some(Box::new(sim));
        self
    }

    /// Parses and runs source text under supervision.
    ///
    /// # Errors
    ///
    /// Returns [`SupervisorError`] if the source does not compile (there
    /// is no ladder below parsing) or if every rung faulted.
    pub fn run_source(&self, source: &str) -> Result<Supervised, SupervisorError> {
        enter_stage(Stage::Parse);
        let started = Instant::now();
        let parsed = quiet_catch(|| zlang::compile(source));
        let program = match parsed {
            Ok(Ok(p)) => p,
            Ok(Err(e)) => return Err(self.parse_error(e.to_string(), started)),
            Err(msg) => return Err(self.parse_error(msg, started)),
        };
        self.run_program(&program)
    }

    fn parse_error(&self, message: String, started: Instant) -> SupervisorError {
        let cause = Cause {
            stage: Stage::Parse,
            kind: CauseKind::Parse,
            message,
        };
        let mut report = SupervisorReport::new(self.level, self.engine);
        report.attempts.push(Attempt {
            level: self.level,
            engine: self.engine,
            elapsed: started.elapsed(),
            fault: Some(cause.clone()),
            sim_disabled: false,
        });
        SupervisorError { cause, report }
    }

    /// Runs a compiled program under supervision, degrading along the
    /// ladder on faults.
    ///
    /// # Errors
    ///
    /// Returns [`SupervisorError`] only if every rung — including the
    /// unoptimized reference interpreter — faulted.
    pub fn run_program(&self, program: &Program) -> Result<Supervised, SupervisorError> {
        let mut report = SupervisorReport::new(self.level, self.engine);
        let mut compiled: Vec<(Level, Arc<ScalarProgram>)> = Vec::new();
        let mut poisoned: Option<Level> = None;
        let mut last_cause: Option<Cause> = None;

        // When a breaker registry is attached, the requested rung's cache
        // key identifies the artifact under suspicion. An open key routes
        // the whole run to the reference rung without touching the cache;
        // otherwise the requested rung's outcome feeds the breaker.
        let breaker_key = self.breaker.as_ref().map(|_| {
            let mut binding = ConfigBinding::defaults(program);
            for (name, value) in &self.bindings {
                binding.set_by_name(program, name, *value);
            }
            CacheKey::compute(
                program,
                &binding,
                self.level,
                false,
                false,
                false,
                self.engine,
            )
        });
        let forced_reference = match (&self.breaker, breaker_key) {
            (Some(b), Some(key)) => b.admit(key) == Admission::Reference,
            _ => false,
        };
        report.breaker_open = forced_reference;
        let use_cache = !forced_reference;
        let rungs = if forced_reference {
            vec![(Level::Baseline, Engine::Interp)]
        } else {
            ladder(self.level, self.engine)
        };

        for (ri, &(level, engine)) in rungs.iter().enumerate() {
            if poisoned == Some(level) {
                continue;
            }
            // The reference rung is the degradation target of last
            // resort; budgets do not apply to it (unless asked) because
            // its entire point is to always produce the answer. A
            // directly requested (baseline, interp) run (ri == 0) is an
            // ordinary rung and stays budgeted — except when the breaker
            // forced the run there, which carries reference semantics.
            let is_reference = forced_reference
                || (ri > 0
                    && ri == rungs.len() - 1
                    && level == Level::Baseline
                    && engine == Engine::Interp);
            let budgeted = !is_reference || self.budgets.enforce_on_reference;
            // Only the requested rung's fate says anything about the
            // requested artifact; degraded rungs run different code.
            let feeds_breaker = !forced_reference && ri == 0;

            // Try with the sim backend if installed; on a communication
            // failure, once more without it.
            let mut use_sim = self.sim.is_some();
            loop {
                let started = Instant::now();
                let r = self.attempt(
                    program,
                    level,
                    engine,
                    budgeted,
                    use_sim,
                    use_cache,
                    &mut compiled,
                );
                let elapsed = started.elapsed();
                match r {
                    Ok(outcome) => {
                        if feeds_breaker {
                            if let (Some(b), Some(key)) = (&self.breaker, breaker_key) {
                                b.record_success(key);
                            }
                        }
                        report.attempts.push(Attempt {
                            level,
                            engine,
                            elapsed,
                            fault: None,
                            sim_disabled: self.sim.is_some() && !use_sim,
                        });
                        report.final_level = level;
                        report.final_engine = engine;
                        return Ok(Supervised { outcome, report });
                    }
                    Err(cause) => {
                        // Execution-time faults of the requested rung are
                        // what a poisoned artifact looks like from the
                        // outside; count them, and on a trip quarantine
                        // the cached entry so it is never re-served.
                        if feeds_breaker
                            && cause.stage == Stage::Execute
                            && matches!(cause.kind, CauseKind::Exec | CauseKind::Panic)
                        {
                            if let (Some(b), Some(key)) = (&self.breaker, breaker_key) {
                                if let Some(cache) = &self.cache {
                                    cache.note_fault(&key);
                                }
                                if b.record_failure(key) {
                                    if let Some(cache) = &self.cache {
                                        cache.quarantine(&key);
                                    }
                                }
                            }
                        }
                        let comm_retry = cause.kind == CauseKind::Comm && use_sim;
                        if cause.kind == CauseKind::Panic && cause.stage != Stage::Execute {
                            // Optimization is deterministic: re-running
                            // the same level would panic again.
                            poisoned = Some(level);
                        }
                        report.attempts.push(Attempt {
                            level,
                            engine,
                            elapsed,
                            fault: Some(cause.clone()),
                            sim_disabled: self.sim.is_some() && !use_sim,
                        });
                        last_cause = Some(cause);
                        if comm_retry {
                            use_sim = false;
                            continue;
                        }
                        break;
                    }
                }
            }
        }

        let cause = last_cause.unwrap_or_else(|| Cause {
            stage: Stage::Execute,
            kind: CauseKind::Exec,
            message: "no execution strategy was attempted".to_string(),
        });
        Err(SupervisorError { cause, report })
    }

    /// One rung: consult the shared compile cache (when attached and
    /// `use_cache` holds — a breaker-forced reference run bypasses it),
    /// then optimize (cached per level for the ladder), check the
    /// allocation budget, build the executor, run. Every step is inside
    /// the panic boundary; errors come back as a [`Cause`].
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        program: &Program,
        level: Level,
        engine: Engine,
        budgeted: bool,
        use_sim: bool,
        use_cache: bool,
        compiled: &mut Vec<(Level, Arc<ScalarProgram>)>,
    ) -> Result<RunOutcome, Cause> {
        // A zero deadline can never be met; fault deterministically up
        // front rather than depend on how far a fast program gets before
        // the engine's periodic clock check.
        if budgeted && self.budgets.deadline == Some(Duration::ZERO) {
            return Err(Cause {
                stage: Stage::Execute,
                kind: CauseKind::Deadline,
                message: "execution deadline exceeded (raise the wall-clock budget)".to_string(),
            });
        }

        // The binding comes from the source program (normalization never
        // adds config variables), so the cache key exists before any
        // compilation happens.
        let mut binding = ConfigBinding::defaults(program);
        for (name, value) in &self.bindings {
            binding.set_by_name(program, name, *value);
        }

        // A miss claims the key exclusively (single-flight): concurrent
        // rungs on the same coordinate wait for this compile instead of
        // duplicating it, and the guard abandons the claim on any fault
        // so waiters never hang.
        let mut claim: Option<ClaimGuard<'_>> = None;
        let hit: Option<Arc<CachedProgram>> = match &self.cache {
            Some(cache) if use_cache => {
                let key = CacheKey::compute(program, &binding, level, false, false, false, engine);
                match cache.claim(key) {
                    Lookup::Hit(cached) => {
                        // Injected artifact corruption: the hit "decodes"
                        // but faults the moment it executes, which is how
                        // a real bit-flipped or mis-compiled entry
                        // presents. Results are never contaminated — the
                        // fault replaces the run entirely.
                        if faults::fire(FaultSite::CacheCorrupt) {
                            return Err(Cause {
                                stage: Stage::Execute,
                                kind: CauseKind::Exec,
                                message: format!(
                                    "{}: cached artifact faulted at execution",
                                    faults::message(FaultSite::CacheCorrupt)
                                ),
                            });
                        }
                        Some(cached)
                    }
                    Lookup::Miss(guard) => {
                        claim = Some(guard);
                        None
                    }
                }
            }
            _ => None,
        };

        // On a hit the scalarized program and the compiled bytecode come
        // straight from the cache; on a miss, optimize (once per level
        // across the ladder) and publish after the engine-specific
        // lowering succeeds.
        let (sp, shared): (Arc<ScalarProgram>, Option<SharedProgram>) = match hit {
            Some(cached) => (cached.scalarized.clone(), cached.shared.clone()),
            None => {
                let sp = match compiled.iter().find(|(l, _)| *l == level) {
                    Some((_, sp)) => sp.clone(),
                    None => {
                        enter_stage(Stage::Normalize);
                        let o = quiet_catch(|| Pipeline::new(level).optimize(program)).map_err(
                            |msg| Cause {
                                stage: current_stage(),
                                kind: CauseKind::Panic,
                                message: msg,
                            },
                        )?;
                        let sp = Arc::new(o.scalarized);
                        compiled.push((level, sp.clone()));
                        sp
                    }
                };
                (sp, None)
            }
        };

        if budgeted {
            if let Some(cap) = self.budgets.max_alloc_bytes {
                let est = estimate_alloc_bytes(&sp, &binding);
                if est > cap {
                    return Err(Cause {
                        stage: Stage::Execute,
                        kind: CauseKind::AllocBudget,
                        message: format!(
                            "estimated peak allocation {est} bytes exceeds the {cap}-byte budget"
                        ),
                    });
                }
            }
        }

        let limits = if budgeted {
            self.budgets.limits()
        } else {
            ExecLimits::none()
        };

        enter_stage(
            if shared.is_none()
                && matches!(engine, Engine::VmVerified | Engine::VmSimd | Engine::VmPar)
            {
                Stage::VerifyBytecode
            } else {
                Stage::Execute
            },
        );
        let run = quiet_catch(|| -> Result<RunOutcome, ExecError> {
            if use_sim {
                if let Some(sim) = &self.sim {
                    return sim(&sp, &binding, engine, limits);
                }
            }
            let opts = ExecOpts {
                threads: self.threads,
                lanes: self.lanes,
            };
            let mut exec: Box<dyn Executor + '_> = match &shared {
                // Cache hit: re-instantiate from the shared bytecode —
                // no recompile, no re-verify.
                Some(shared) => engine.shared_executor(shared, opts),
                None => {
                    let lowered = engine.compile_shared(&sp, binding.clone())?;
                    if let Some(guard) = claim.take() {
                        guard.publish(Arc::new(CachedProgram {
                            scalarized: sp.clone(),
                            shared: lowered.clone(),
                            binding: binding.clone(),
                            engine,
                        }));
                    }
                    match lowered {
                        Some(shared) => engine.shared_executor(&shared, opts),
                        None => Box::new(Interp::new(&sp, binding.clone())),
                    }
                }
            };
            enter_stage(Stage::Execute);
            exec.set_limits(limits);
            exec.execute(&mut NoopObserver)
        });
        match run {
            Ok(Ok(outcome)) => Ok(outcome),
            Ok(Err(e)) => Err(Cause {
                stage: if e.kind == ErrorKind::Verify {
                    Stage::VerifyBytecode
                } else {
                    Stage::Execute
                },
                kind: CauseKind::from_exec(&e),
                message: e.message,
            }),
            Err(msg) => Err(Cause {
                stage: current_stage(),
                kind: CauseKind::Panic,
                message: msg,
            }),
        }
    }
}

/// The degradation ladder from a requested (level, engine): cheaper
/// engines at the same level, then the unoptimized reference
/// interpreter.
fn ladder(level: Level, engine: Engine) -> Vec<(Level, Engine)> {
    let order = [
        Engine::VmPar,
        Engine::VmSimd,
        Engine::VmVerified,
        Engine::Vm,
        Engine::Interp,
    ];
    let start = order
        .iter()
        .position(|&e| e == engine)
        .expect("invariant: `order` lists every Engine variant");
    let mut rungs: Vec<(Level, Engine)> = order[start..].iter().map(|&e| (level, e)).collect();
    if level != Level::Baseline {
        rungs.push((Level::Baseline, Engine::Interp));
    }
    rungs
}

/// Pre-flight peak-allocation estimate: every array live in the
/// scalarized program, at its allocated extent under `binding`, 8 bytes
/// per element. Contracted arrays are no longer live and cost nothing —
/// the estimate reflects the optimization's space savings.
pub fn estimate_alloc_bytes(sp: &ScalarProgram, binding: &ConfigBinding) -> u64 {
    sp.live_arrays()
        .iter()
        .map(|&a| sp.program.array_alloc_elems(a, binding).saturating_mul(8))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use testkit::faults::{self, FaultPlan, FaultSite};

    const SRC: &str = "program t; config n : int = 6; region R = [1..n];
        var A, B : [R] float; var s : float;
        begin [R] A := 3.0; [R] B := A + 1.0; s := +<< [R] B; end";

    fn reference_checksum() -> f64 {
        let sup = Supervisor::new(Level::Baseline, Engine::Interp);
        sup.run_source(SRC).unwrap().outcome.checksum()
    }

    #[test]
    fn clean_run_is_not_degraded() {
        let sup = Supervisor::new(Level::C2F3, Engine::VmVerified);
        let run = sup.run_source(SRC).unwrap();
        assert_eq!(run.outcome.checksum(), reference_checksum());
        assert!(!run.report.degraded());
        assert_eq!(run.report.retries(), 0);
        assert_eq!(run.report.final_engine, Engine::VmVerified);
    }

    #[test]
    fn vm_par_clean_run_is_not_degraded() {
        let sup = Supervisor::new(Level::C2F3, Engine::VmPar).with_threads(2);
        let run = sup.run_source(SRC).unwrap();
        assert_eq!(run.outcome.checksum(), reference_checksum());
        assert!(!run.report.degraded());
        assert_eq!(run.report.final_engine, Engine::VmPar);
    }

    #[test]
    fn vm_par_verify_reject_degrades_to_plain_vm() {
        // The verifier rejection hits both verified rungs (vm-par shares
        // the verification gate), landing on the checked VM.
        let _g = faults::install(FaultPlan::new(7).with(FaultSite::VerifyReject, 1.0));
        let sup = Supervisor::new(Level::C2F3, Engine::VmPar).with_threads(2);
        let run = sup.run_source(SRC).unwrap();
        assert_eq!(run.outcome.checksum(), reference_checksum());
        assert_eq!(run.report.final_engine, Engine::Vm);
        assert!(run
            .report
            .faults()
            .any(|c| c.kind == CauseKind::VerifyReject && c.stage == Stage::VerifyBytecode));
    }

    #[test]
    fn vm_par_trap_degrades_to_interp() {
        let _g = faults::install(FaultPlan::new(7).with(FaultSite::VmTrap, 1.0));
        let sup = Supervisor::new(Level::C2F3, Engine::VmPar).with_threads(4);
        let run = sup.run_source(SRC).unwrap();
        assert_eq!(run.outcome.checksum(), reference_checksum());
        assert_eq!(run.report.final_engine, Engine::Interp);
        assert!(run.report.mentions("vm-trap"));
    }

    #[test]
    fn grow_panic_degrades_to_baseline() {
        let _g = faults::install(FaultPlan::new(7).with(FaultSite::FuseGrow, 1.0));
        let sup = Supervisor::new(Level::C2F3, Engine::VmVerified);
        let run = sup.run_source(SRC).unwrap();
        assert_eq!(run.outcome.checksum(), reference_checksum());
        assert!(run.report.degraded());
        assert_eq!(run.report.final_level, Level::Baseline);
        assert!(run.report.mentions("grow-panic"), "{}", run.report.render());
        // The poisoned level is attempted once, not once per engine.
        assert_eq!(run.report.attempts.len(), 2);
    }

    #[test]
    fn verify_reject_degrades_to_plain_vm() {
        let _g = faults::install(FaultPlan::new(7).with(FaultSite::VerifyReject, 1.0));
        let sup = Supervisor::new(Level::C2F3, Engine::VmVerified);
        let run = sup.run_source(SRC).unwrap();
        assert_eq!(run.outcome.checksum(), reference_checksum());
        assert_eq!(run.report.final_engine, Engine::Vm);
        assert!(run.report.mentions("verify-reject"));
        assert!(run
            .report
            .faults()
            .any(|c| c.kind == CauseKind::VerifyReject && c.stage == Stage::VerifyBytecode));
    }

    #[test]
    fn vm_trap_degrades_to_interp() {
        let _g = faults::install(FaultPlan::new(7).with(FaultSite::VmTrap, 1.0));
        let sup = Supervisor::new(Level::C2F3, Engine::VmVerified);
        let run = sup.run_source(SRC).unwrap();
        assert_eq!(run.outcome.checksum(), reference_checksum());
        assert_eq!(run.report.final_engine, Engine::Interp);
        assert!(run.report.mentions("vm-trap"));
    }

    #[test]
    fn zero_fuel_falls_to_unbudgeted_reference() {
        let sup = Supervisor::new(Level::C2F3, Engine::VmVerified).with_budgets(Budgets {
            fuel: Some(0),
            ..Budgets::none()
        });
        let run = sup.run_source(SRC).unwrap();
        assert_eq!(run.outcome.checksum(), reference_checksum());
        assert_eq!(run.report.final_level, Level::Baseline);
        assert!(run.report.faults().any(|c| c.kind == CauseKind::Fuel));
    }

    #[test]
    fn zero_deadline_falls_to_unbudgeted_reference() {
        let sup = Supervisor::new(Level::C2F3, Engine::VmVerified).with_budgets(Budgets {
            deadline: Some(Duration::ZERO),
            ..Budgets::none()
        });
        let run = sup.run_source(SRC).unwrap();
        assert_eq!(run.outcome.checksum(), reference_checksum());
        assert!(run.report.faults().any(|c| c.kind == CauseKind::Deadline));
    }

    #[test]
    fn alloc_budget_falls_to_unbudgeted_reference() {
        // `H` is read at offsets, so it survives contraction at every
        // level and the pre-flight estimate stays nonzero.
        let src = "program t; config n : int = 6;
            region RH = [0..n+1]; region R = [1..n];
            var H : [RH] float; var A : [R] float; var s : float;
            begin [RH] H := 1.0; [R] A := H@[-1] + H@[1]; s := +<< [R] A; end";
        let sup = Supervisor::new(Level::C2F3, Engine::VmVerified).with_budgets(Budgets {
            max_alloc_bytes: Some(1),
            ..Budgets::none()
        });
        let run = sup.run_source(src).unwrap();
        assert_eq!(run.outcome.checksum(), 12.0);
        assert_eq!(run.report.final_level, Level::Baseline);
        assert!(run
            .report
            .faults()
            .any(|c| c.kind == CauseKind::AllocBudget));
    }

    #[test]
    fn enforced_budget_on_reference_fails_the_run() {
        let sup = Supervisor::new(Level::C2F3, Engine::VmVerified).with_budgets(Budgets {
            fuel: Some(0),
            enforce_on_reference: true,
            ..Budgets::none()
        });
        let err = sup.run_source(SRC).unwrap_err();
        assert_eq!(err.cause.kind, CauseKind::Fuel);
        assert!(err.report.attempts.len() >= 4);
    }

    #[test]
    fn comm_failure_retries_same_rung_without_sim() {
        let calls = std::cell::Cell::new(0u32);
        let sup =
            Supervisor::new(Level::C2F3, Engine::Vm).with_sim(|sp, binding, engine, limits| {
                calls.set(calls.get() + 1);
                if calls.get() == 1 {
                    return Err(ExecError::comm("ghost exchange failed after 4 retries"));
                }
                let mut exec = engine.executor(sp, binding.clone())?;
                exec.set_limits(limits);
                exec.execute(&mut NoopObserver)
            });
        let program = zlang::compile(SRC).unwrap();
        let run = sup.run_program(&program).unwrap();
        assert_eq!(run.outcome.checksum(), reference_checksum());
        // Same rung, retried with sim disabled — no engine degradation.
        assert_eq!(run.report.final_engine, Engine::Vm);
        assert_eq!(run.report.final_level, Level::C2F3);
        assert!(run.report.attempts[1].sim_disabled);
        assert!(run.report.faults().any(|c| c.kind == CauseKind::Comm));
    }

    #[test]
    fn parse_error_is_reported_not_panicked() {
        let sup = Supervisor::new(Level::C2F3, Engine::Vm);
        let err = sup.run_source("progrm nope;").unwrap_err();
        assert_eq!(err.cause.kind, CauseKind::Parse);
        assert_eq!(err.cause.stage, Stage::Parse);
    }

    #[test]
    fn config_binding_overrides_apply() {
        let sup = Supervisor::new(Level::C2F3, Engine::VmVerified).with_binding("n", 3);
        let run = sup.run_source(SRC).unwrap();
        // n=3: B = 4.0 over three points.
        assert_eq!(run.outcome.checksum(), 12.0);
    }

    #[test]
    fn corrupted_cache_hits_trip_quarantine_and_heal() {
        use crate::breaker::{BreakerConfig, BreakerState, CircuitBreakers};

        let cache = Arc::new(CompileCache::new());
        let breakers = Arc::new(CircuitBreakers::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: 1,
            success_threshold: 1,
        }));
        let program = zlang::compile(SRC).unwrap();
        let want = reference_checksum();

        // Warm the requested rung's artifact, then corrupt every hit.
        Supervisor::new(Level::C2, Engine::Vm)
            .with_cache(cache.clone())
            .run_program(&program)
            .unwrap();
        let binding = ConfigBinding::defaults(&program);
        let key = CacheKey::compute(
            &program,
            &binding,
            Level::C2,
            false,
            false,
            false,
            Engine::Vm,
        );
        let _g =
            faults::install(testkit::faults::FaultPlan::new(5).with(FaultSite::CacheCorrupt, 1.0));
        let sup = || {
            Supervisor::new(Level::C2, Engine::Vm)
                .with_cache(cache.clone())
                .with_breaker(breakers.clone())
        };

        // First corrupted hit: counted, not yet tripped; the run degrades
        // but still answers correctly.
        let run = sup().run_program(&program).unwrap();
        assert_eq!(run.outcome.checksum(), want);
        assert!(run.report.degraded());
        assert!(run.report.mentions("cache-corrupt"));
        assert_eq!(breakers.state(&key), BreakerState::Closed);

        // Second corrupted hit trips the breaker and quarantines the
        // artifact.
        let run = sup().run_program(&program).unwrap();
        assert_eq!(run.outcome.checksum(), want);
        assert_eq!(breakers.state(&key), BreakerState::Open);
        assert_eq!(cache.stats().quarantines, 1);
        assert_eq!(cache.fault_count(&key), 0, "entry evicted");

        // While open the run is routed to the reference rung without
        // consulting the cache: no hit, so the (still-armed) corruption
        // cannot fire, and the answer is clean.
        let hits_before = cache.stats().hits;
        let run = sup().run_program(&program).unwrap();
        assert_eq!(run.outcome.checksum(), want);
        assert!(run.report.breaker_open);
        assert_eq!(run.report.final_level, Level::Baseline);
        assert_eq!(cache.stats().hits, hits_before, "cache bypassed");
        assert!(run.report.render().contains("breaker open"));

        // Cooldown spent: the next run probes, recompiles the quarantined
        // key fresh (a miss, so no corruption), and closes the breaker.
        let run = sup().run_program(&program).unwrap();
        assert_eq!(run.outcome.checksum(), want);
        assert!(!run.report.degraded());
        assert_eq!(breakers.state(&key), BreakerState::Closed);
        assert_eq!(breakers.stats().closes, 1);
    }

    #[test]
    fn with_remaining_tightens_the_deadline() {
        let sup = Supervisor::new(Level::C2F3, Engine::VmVerified)
            .with_budgets(Budgets {
                deadline: Some(Duration::from_secs(60)),
                ..Budgets::none()
            })
            .with_remaining(Duration::ZERO);
        let run = sup.run_source(SRC).unwrap();
        assert_eq!(run.outcome.checksum(), reference_checksum());
        assert!(run.report.faults().any(|c| c.kind == CauseKind::Deadline));
        // And the other direction: a generous remaining never loosens.
        let sup = Supervisor::new(Level::C2F3, Engine::VmVerified)
            .with_budgets(Budgets {
                deadline: Some(Duration::ZERO),
                ..Budgets::none()
            })
            .with_remaining(Duration::from_secs(60));
        let run = sup.run_source(SRC).unwrap();
        assert!(run.report.faults().any(|c| c.kind == CauseKind::Deadline));
    }

    #[test]
    fn report_renders_attempt_trail() {
        let _g = faults::install(FaultPlan::new(7).with(FaultSite::VmTrap, 1.0));
        let sup = Supervisor::new(Level::C2F3, Engine::Vm);
        let run = sup.run_source(SRC).unwrap();
        let text = run.report.render();
        assert!(text.contains("attempt 1"));
        assert!(text.contains("degraded"));
    }
}
