//! Per-key circuit breakers for the serving path.
//!
//! A content-addressed compile cache has a failure mode the degradation
//! ladder alone cannot fix: a *poisoned artifact*. If a cached compile
//! result faults every time it executes (a latent miscompile, a
//! bit-flipped entry, an engine bug tickled by one program), every
//! request for that key pays a fault, degrades, and — because the entry
//! stays cached — the next request pays it again, forever.
//!
//! [`CircuitBreakers`] breaks that loop with one small state machine per
//! [`CacheKey`]:
//!
//! ```text
//!            failure_threshold consecutive
//!            execution faults (entry evicted)
//!   Closed ─────────────────────────────────▶ Open
//!     ▲                                        │ cooldown requests
//!     │ success_threshold                      │ routed to the
//!     │ consecutive probe successes            ▼ reference rung
//!     └─────────────────────────────────── HalfOpen
//!                 (a probe failure reopens, evicting again)
//! ```
//!
//! * **Closed** — requests are served normally; consecutive
//!   execution-time faults of the requested rung are counted, and a
//!   success resets the count.
//! * **Open** — tripping *quarantines* the key: the supervisor evicts the
//!   cached entry ([`crate::cache::CompileCache::quarantine`]) and the
//!   next `cooldown` requests for the key are routed straight down the
//!   degradation ladder to the unoptimized reference interpreter without
//!   consulting the cache at all, so a poisoned artifact is never
//!   re-served while the key is open.
//! * **HalfOpen** — after the cooldown, requests run normally again as
//!   *probes* (the evicted entry recompiles from source on the first
//!   probe). `success_threshold` consecutive probe successes close the
//!   key; one probe failure reopens it.
//!
//! Everything is request-count driven, never wall-clock driven, so
//! breaker trajectories are a pure function of the request sequence and
//! chaos tests replay exactly.

use crate::cache::CacheKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Thresholds for every per-key breaker in one [`CircuitBreakers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive execution-time faults of the requested rung that trip
    /// the key open (clamped to at least 1).
    pub failure_threshold: u32,
    /// Requests routed to the reference rung while open before the key
    /// goes half-open and admits a probe.
    pub cooldown: u32,
    /// Consecutive half-open probe successes that close the key
    /// (clamped to at least 1).
    pub success_threshold: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: 2,
            success_threshold: 2,
        }
    }
}

/// The externally visible state of one key's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving normally.
    Closed,
    /// Tripped: requests bypass the cache and run on the reference rung.
    Open,
    /// Probing: requests run normally and decide the breaker's fate.
    HalfOpen,
}

/// What the breaker decided for one incoming request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: serve normally.
    Serve,
    /// Half-open: serve normally; the outcome closes or reopens the key.
    Probe,
    /// Open: route straight to the unoptimized reference interpreter and
    /// do not consult the cache for this key.
    Reference,
}

enum KeyState {
    Closed { failures: u32 },
    Open { cooldown_left: u32 },
    HalfOpen { successes: u32 },
}

/// Monotonic counters over every key, snapshotted by
/// [`CircuitBreakers::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed keys tripped open (each trip quarantines the cache entry).
    pub trips: u64,
    /// Half-open probes that failed and reopened the key.
    pub reopens: u64,
    /// Half-open keys that closed after enough probe successes.
    pub closes: u64,
    /// Requests admitted as half-open probes.
    pub probes: u64,
    /// Requests routed to the reference rung because the key was open.
    pub rejected: u64,
}

/// The registry of per-[`CacheKey`] breakers shared by every worker of a
/// serve batch. See the module docs for the state machine.
#[derive(Debug, Default)]
pub struct CircuitBreakers {
    config: BreakerConfig,
    keys: Mutex<HashMap<CacheKey, KeyState>>,
    trips: AtomicU64,
    reopens: AtomicU64,
    closes: AtomicU64,
    probes: AtomicU64,
    rejected: AtomicU64,
}

impl std::fmt::Debug for KeyState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyState::Closed { failures } => write!(f, "Closed({failures})"),
            KeyState::Open { cooldown_left } => write!(f, "Open({cooldown_left})"),
            KeyState::HalfOpen { successes } => write!(f, "HalfOpen({successes})"),
        }
    }
}

impl CircuitBreakers {
    /// A registry where every key starts closed.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreakers {
            config,
            ..CircuitBreakers::default()
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Decides how to serve the next request for `key`, advancing the
    /// open → half-open transition as cooldown requests arrive.
    pub fn admit(&self, key: CacheKey) -> Admission {
        let mut keys = self.keys.lock().expect("breaker lock poisoned");
        let state = keys.entry(key).or_insert(KeyState::Closed { failures: 0 });
        match state {
            KeyState::Closed { .. } => Admission::Serve,
            KeyState::Open { cooldown_left } if *cooldown_left > 0 => {
                *cooldown_left -= 1;
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Admission::Reference
            }
            KeyState::Open { .. } | KeyState::HalfOpen { .. } => {
                if matches!(state, KeyState::Open { .. }) {
                    *state = KeyState::HalfOpen { successes: 0 };
                }
                self.probes.fetch_add(1, Ordering::Relaxed);
                Admission::Probe
            }
        }
    }

    /// Records a successful run of the requested rung. Resets a closed
    /// key's failure count; advances (and possibly closes) a half-open
    /// key.
    pub fn record_success(&self, key: CacheKey) {
        let mut keys = self.keys.lock().expect("breaker lock poisoned");
        let Some(state) = keys.get_mut(&key) else {
            return;
        };
        match state {
            KeyState::Closed { failures } => *failures = 0,
            KeyState::HalfOpen { successes } => {
                *successes += 1;
                if *successes >= self.config.success_threshold.max(1) {
                    *state = KeyState::Closed { failures: 0 };
                    self.closes.fetch_add(1, Ordering::Relaxed);
                }
            }
            KeyState::Open { .. } => {}
        }
    }

    /// Records an execution-time fault of the requested rung. Returns
    /// `true` when this fault trips (or re-trips) the key open — the
    /// caller must then quarantine the cached entry.
    pub fn record_failure(&self, key: CacheKey) -> bool {
        let mut keys = self.keys.lock().expect("breaker lock poisoned");
        let state = keys.entry(key).or_insert(KeyState::Closed { failures: 0 });
        match state {
            KeyState::Closed { failures } => {
                *failures += 1;
                if *failures >= self.config.failure_threshold.max(1) {
                    *state = KeyState::Open {
                        cooldown_left: self.config.cooldown,
                    };
                    self.trips.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            KeyState::HalfOpen { .. } => {
                *state = KeyState::Open {
                    cooldown_left: self.config.cooldown,
                };
                self.reopens.fetch_add(1, Ordering::Relaxed);
                true
            }
            KeyState::Open { .. } => false,
        }
    }

    /// The current state of `key`'s breaker (closed if never seen).
    pub fn state(&self, key: &CacheKey) -> BreakerState {
        let keys = self.keys.lock().expect("breaker lock poisoned");
        match keys.get(key) {
            None | Some(KeyState::Closed { .. }) => BreakerState::Closed,
            Some(KeyState::Open { .. }) => BreakerState::Open,
            Some(KeyState::HalfOpen { .. }) => BreakerState::HalfOpen,
        }
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> BreakerStats {
        BreakerStats {
            trips: self.trips.load(Ordering::Relaxed),
            reopens: self.reopens.load(Ordering::Relaxed),
            closes: self.closes.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Level;
    use loopir::Engine;

    fn key(content: u64) -> CacheKey {
        CacheKey {
            content,
            level: Level::C2,
            dse: false,
            rce: false,
            rce2: false,
            engine: Engine::Vm,
            simd: false,
        }
    }

    fn breakers() -> CircuitBreakers {
        CircuitBreakers::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: 2,
            success_threshold: 2,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = breakers();
        let k = key(1);
        assert!(!b.record_failure(k));
        assert!(!b.record_failure(k));
        assert_eq!(b.state(&k), BreakerState::Closed);
        assert!(b.record_failure(k), "third consecutive failure trips");
        assert_eq!(b.state(&k), BreakerState::Open);
        assert_eq!(b.stats().trips, 1);
    }

    #[test]
    fn success_resets_the_closed_failure_count() {
        let b = breakers();
        let k = key(2);
        b.record_failure(k);
        b.record_failure(k);
        b.record_success(k);
        assert!(!b.record_failure(k));
        assert!(!b.record_failure(k));
        assert!(b.record_failure(k), "count restarted after the success");
    }

    #[test]
    fn open_routes_to_reference_for_cooldown_then_probes() {
        let b = breakers();
        let k = key(3);
        for _ in 0..3 {
            b.record_failure(k);
        }
        assert_eq!(b.admit(k), Admission::Reference);
        assert_eq!(b.admit(k), Admission::Reference);
        assert_eq!(b.admit(k), Admission::Probe, "cooldown spent");
        assert_eq!(b.state(&k), BreakerState::HalfOpen);
        let s = b.stats();
        assert_eq!((s.rejected, s.probes), (2, 1));
    }

    #[test]
    fn probe_successes_close_and_probe_failure_reopens() {
        let b = breakers();
        let k = key(4);
        for _ in 0..3 {
            b.record_failure(k);
        }
        for _ in 0..2 {
            b.admit(k);
        }
        assert_eq!(b.admit(k), Admission::Probe);
        b.record_success(k);
        assert_eq!(b.state(&k), BreakerState::HalfOpen, "one success of two");
        assert_eq!(b.admit(k), Admission::Probe);
        b.record_success(k);
        assert_eq!(b.state(&k), BreakerState::Closed);
        assert_eq!(b.stats().closes, 1);
        assert_eq!(b.admit(k), Admission::Serve);

        // Trip again, probe, and fail the probe: straight back to open.
        for _ in 0..3 {
            b.record_failure(k);
        }
        for _ in 0..2 {
            b.admit(k);
        }
        assert_eq!(b.admit(k), Admission::Probe);
        assert!(b.record_failure(k), "a probe failure re-trips");
        assert_eq!(b.state(&k), BreakerState::Open);
        assert_eq!(b.stats().reopens, 1);
        assert_eq!(b.admit(k), Admission::Reference);
    }

    #[test]
    fn keys_are_independent() {
        let b = breakers();
        for _ in 0..3 {
            b.record_failure(key(5));
        }
        assert_eq!(b.state(&key(5)), BreakerState::Open);
        assert_eq!(b.admit(key(6)), Admission::Serve);
        assert_eq!(b.state(&key(6)), BreakerState::Closed);
    }
}
