//! An instrumented pass manager over the optimization pipeline.
//!
//! [`Pipeline::optimize`](crate::pipeline::Pipeline::optimize) used to be
//! one monolithic function interleaving fusion, contraction, and
//! scalarization per block. This module restructures it into:
//!
//! * a [`CompileSession`] — the program being compiled plus every piece of
//!   evolving state (normalized form, cached per-block ASDGs, fusion
//!   partitions, contraction decisions, the scalarized result);
//! * a [`Pass`] trait — one named transformation or verification step with
//!   a declared analysis-preservation contract;
//! * a [`PassManager`] — runs a declarative pass sequence built from the
//!   [`crate::pipeline::Level`] predicates, recording per-pass
//!   wall-clock timing and statement/cluster counters
//!   ([`PassTrace`]), invalidating cached analyses only after passes that
//!   mutate the IR, and optionally capturing an IR snapshot after any pass
//!   (`zlc --emit`).
//!
//! The ASDG is the expensive cached analysis: `CompileSession::ensure_asdg`
//! builds each block's graph at most once per *mutation epoch* (the count
//! of builds is reported in
//! [`Optimized::asdg_builds`](crate::pipeline::Optimized::asdg_builds)).
//! Passes that rewrite statements — the two new array-level cleanups
//! [`PassId::Dse`] and [`PassId::Rce`], off at every paper level and
//! enabled with the `+dse` / `+rce` level suffixes — declare
//! `preserves_analyses() == false`, which starts a new epoch.
//!
//! [`PassId`] is also the shared *stage identity* used by the supervisor's
//! panic attribution and by verifier diagnostics, replacing the three
//! parallel stage enums the crates previously kept in sync by hand.

use crate::asdg::{self, Asdg, DefId};
use crate::avail::{region_contains_shifted, regions_disjoint_shifted};
use crate::ext::PartialGroup;
use crate::fusion::{FusionCtx, FusionOpts, Partition};
use crate::normal::{self, BStmt, NStmt, NormProgram};
use crate::pipeline::{BlockDetail, ForbidFn, Level, Optimized, Report};
use crate::scalarize;
use crate::verify::{self, Diagnostic, VerifyLevel};
use crate::weights::sort_by_weight;
use loopir::{LStmt, ScalarProgram};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use zlang::ast::ReduceOp;
use zlang::ir::{ArrayExpr, ArrayId, ConfigBinding, Offset, Program, ScalarId};

/// Identity of a compilation stage: every pass the manager can schedule,
/// plus the surrounding stages (`Parse`, the bytecode `VerifyBytecode`
/// re-check, and `Execute`) that the supervisor attributes faults to.
///
/// This is the single source of stage names shared by the pass manager,
/// the supervisor's panic attribution ([`crate::supervisor::Stage`] is a
/// re-export), verifier diagnostics ([`crate::verify::Stage`] likewise),
/// and `zlc --emit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassId {
    /// Source text to array-level IR (outside the pass manager).
    Parse,
    /// Normalization into basic blocks of array statements (Section 2.1).
    Normalize,
    /// Dead-statement elimination over the ASDG (`+dse` levels only).
    Dse,
    /// Redundant-computation elimination (`+rce` levels only).
    Rce,
    /// Stencil-aware redundancy elimination over the offset-lattice
    /// availability analysis (`+rce2` levels only).
    Rce2,
    /// `FUSION-FOR-CONTRACTION` over the contraction candidates.
    FuseContraction,
    /// Fusion for locality over all definitions.
    FuseLocality,
    /// Greedy legal pairwise fusion (`c2+f4`).
    FusePairwise,
    /// Contraction decisions for the fused partition (Definition 6).
    Contract,
    /// Dimension contraction of partially fusable arrays ([`crate::ext`]).
    DimContract,
    /// `FIND-LOOP-STRUCTURE` for every fused cluster (Definition 4).
    FindLoopStructure,
    /// Lowering clusters to loop nests with contracted temps.
    Scalarize,
    /// Verifier: normal-form re-check (Section 2.1).
    VerifyNormalForm,
    /// Verifier: independent ASDG reconstruction (Definitions 2-3).
    VerifyAsdg,
    /// Verifier: fusion-partition legality (Definition 5).
    VerifyPartition,
    /// Verifier: loop-structure legality (Definition 4).
    VerifyStructure,
    /// Verifier: contraction safety (Definition 6).
    VerifyContraction,
    /// Verifier: `+rce2` rewrites are value-preserving (offset algebra,
    /// region containment, no intervening writes).
    VerifyRce2,
    /// Bytecode verification in the VM (outside the pass manager).
    VerifyBytecode,
    /// Program execution (outside the pass manager).
    Execute,
}

impl PassId {
    /// Every stage, in pipeline order.
    pub fn all() -> [PassId; 20] {
        [
            PassId::Parse,
            PassId::Normalize,
            PassId::Dse,
            PassId::Rce,
            PassId::Rce2,
            PassId::FuseContraction,
            PassId::FuseLocality,
            PassId::FusePairwise,
            PassId::Contract,
            PassId::DimContract,
            PassId::FindLoopStructure,
            PassId::Scalarize,
            PassId::VerifyNormalForm,
            PassId::VerifyAsdg,
            PassId::VerifyPartition,
            PassId::VerifyStructure,
            PassId::VerifyContraction,
            PassId::VerifyRce2,
            PassId::VerifyBytecode,
            PassId::Execute,
        ]
    }

    /// The stable name: accepted by `zlc --emit`, shown in supervisor
    /// fault reports, and used as the diagnostic code of the verifiers.
    pub fn name(self) -> &'static str {
        match self {
            PassId::Parse => "parse",
            PassId::Normalize => "normalize",
            PassId::Dse => "dse",
            PassId::Rce => "rce",
            PassId::Rce2 => "rce2",
            PassId::FuseContraction => "fuse-contraction",
            PassId::FuseLocality => "fuse-locality",
            PassId::FusePairwise => "fuse-pairwise",
            PassId::Contract => "contract",
            PassId::DimContract => "dim-contract",
            PassId::FindLoopStructure => "find-loop-structure",
            PassId::Scalarize => "scalarize",
            PassId::VerifyNormalForm => "verify::normal-form",
            PassId::VerifyAsdg => "verify::asdg",
            PassId::VerifyPartition => "verify::partition",
            PassId::VerifyStructure => "verify::structure",
            PassId::VerifyContraction => "verify::contraction",
            PassId::VerifyRce2 => "verify::rce2",
            PassId::VerifyBytecode => "verify",
            PassId::Execute => "execute",
        }
    }

    /// The diagnostic code rendered as `error[<code>]` (same as
    /// [`PassId::name`]).
    pub fn code(self) -> &'static str {
        self.name()
    }

    /// The paper definition a verification stage re-checks, if this is a
    /// verification stage.
    pub fn definition(self) -> Option<&'static str> {
        match self {
            PassId::VerifyNormalForm => Some("Section 2.1 (normalized array statements)"),
            PassId::VerifyAsdg => Some("Definitions 2-3 (UDVs and the ASDG)"),
            PassId::VerifyPartition => Some("Definition 5 (legal fusion partitions)"),
            PassId::VerifyStructure => Some("Definition 4 (loop structure legality)"),
            PassId::VerifyContraction => Some("Definition 6 (contractable arrays)"),
            PassId::VerifyRce2 => {
                Some("rce2 value preservation (offset algebra, region containment, no intervening writes)")
            }
            _ => None,
        }
    }

    /// Parses a stage from its [`PassId::name`].
    pub fn from_name(name: &str) -> Option<PassId> {
        PassId::all().into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for PassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a pass reports back to the manager.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassResult {
    /// Whether the pass changed the session (IR or optimization state).
    pub changed: bool,
}

impl PassResult {
    fn changed(changed: bool) -> PassResult {
        PassResult { changed }
    }
}

/// One entry of the pass manager's instrumentation log.
#[derive(Debug, Clone)]
pub struct PassTrace {
    /// The pass that ran.
    pub id: PassId,
    /// Wall-clock time the pass took.
    pub duration: Duration,
    /// Whether it reported a change.
    pub changed: bool,
    /// Array-level statements across all basic blocks afterwards.
    pub stmts: usize,
    /// Live fusion clusters across all blocks afterwards (0 before
    /// fusion state exists).
    pub clusters: usize,
}

/// One schedulable step of the pipeline.
pub trait Pass {
    /// The pass's identity (also its stage for fault attribution).
    fn id(&self) -> PassId;

    /// Whether cached analyses (the per-block ASDGs, contraction
    /// candidates, and the derived fusion setup) survive this pass.
    /// Passes that rewrite statements return `false`; the manager then
    /// starts a new mutation epoch after a changing run.
    fn preserves_analyses(&self) -> bool {
        true
    }

    /// Runs the pass over the session.
    fn run(&self, session: &mut CompileSession<'_>) -> PassResult;
}

/// The outcome of a [`PassManager::run`].
#[derive(Debug, Clone)]
pub struct PassRun {
    /// Per-pass instrumentation, in execution order.
    pub traces: Vec<PassTrace>,
    /// The IR snapshot captured after the requested pass, if any.
    pub emitted: Option<String>,
}

/// Runs a pass sequence over a [`CompileSession`] with timing, counters,
/// analysis invalidation, and optional snapshot capture.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    emit: Option<PassId>,
}

impl PassManager {
    /// Creates a manager over a pass sequence.
    pub fn new(passes: Vec<Box<dyn Pass>>) -> PassManager {
        PassManager { passes, emit: None }
    }

    /// Requests an IR snapshot after the named pass (it must be part of
    /// the sequence to produce one).
    pub fn set_emit(&mut self, pass: PassId) {
        self.emit = Some(pass);
    }

    /// The ids of the scheduled passes, in order.
    pub fn pass_ids(&self) -> Vec<PassId> {
        self.passes.iter().map(|p| p.id()).collect()
    }

    /// Runs every pass in order.
    pub fn run(&self, session: &mut CompileSession<'_>) -> PassRun {
        let mut traces = Vec::with_capacity(self.passes.len());
        let mut emitted = None;
        for p in &self.passes {
            crate::supervisor::enter_stage(p.id());
            let start = Instant::now();
            let r = p.run(session);
            let duration = start.elapsed();
            if r.changed && !p.preserves_analyses() {
                session.invalidate();
            }
            traces.push(PassTrace {
                id: p.id(),
                duration,
                changed: r.changed,
                stmts: session.stmt_count(),
                clusters: session.cluster_count(),
            });
            if self.emit == Some(p.id()) {
                emitted = Some(session.snapshot(p.id()));
            }
        }
        PassRun { traces, emitted }
    }
}

/// Builds the declarative pass sequence for a level (plus the opt-in
/// cleanup and extension passes), mirroring the paper's Section 5.4 level
/// definitions through the [`Level`] predicates.
pub(crate) fn build_sequence(
    level: Level,
    dse: bool,
    rce: bool,
    rce2: bool,
    dimension_contraction: bool,
    spatial_cap: Option<usize>,
) -> Vec<Box<dyn Pass>> {
    let mut passes: Vec<Box<dyn Pass>> = vec![Box::new(NormalizePass)];
    if dse {
        passes.push(Box::new(DsePass));
    }
    if rce {
        passes.push(Box::new(RcePass));
    }
    if rce2 {
        passes.push(Box::new(Rce2Pass));
    }
    if level.fuses_compiler() {
        passes.push(Box::new(FuseContractionPass {
            include_user: level.fuses_user(),
        }));
    }
    if level.locality_fusion() {
        passes.push(Box::new(FuseLocalityPass));
    }
    if level.pairwise_fusion() {
        passes.push(Box::new(FusePairwisePass { cap: spatial_cap }));
    }
    passes.push(Box::new(ContractPass {
        compiler: level.contracts_compiler(),
        user: level.contracts_user(),
    }));
    if dimension_contraction {
        passes.push(Box::new(DimContractPass));
    }
    passes.push(Box::new(FindLoopStructurePass));
    passes.push(Box::new(ScalarizePass));
    for which in [
        PassId::VerifyNormalForm,
        PassId::VerifyAsdg,
        PassId::VerifyPartition,
        PassId::VerifyContraction,
        PassId::VerifyStructure,
    ] {
        passes.push(Box::new(VerifyPass { which }));
    }
    if rce2 {
        passes.push(Box::new(VerifyPass {
            which: PassId::VerifyRce2,
        }));
    }
    passes
}

/// The program under compilation plus all evolving pipeline state.
///
/// Created by [`Pipeline::optimize`](crate::pipeline::Pipeline::optimize),
/// threaded through every [`Pass`], and finally packaged into an
/// [`Optimized`]. Cached analyses (per-block ASDGs, contraction
/// candidates, fusion setup) are built lazily and dropped by
/// [`CompileSession::invalidate`] when a pass mutates the IR.
///
/// A session is `Send + Sync` (asserted in this module's tests): all of
/// its state is owned values plus shared references to the immutable
/// input [`Program`] and the thread-safe
/// [`ForbidFn`] policy, so compilation can be
/// handed to — or observed from — another thread. This is part of the
/// thread-safe execution contract documented in `DESIGN.md`.
pub struct CompileSession<'s> {
    program: &'s Program,
    level: Level,
    pub(crate) forbid: Option<&'s ForbidFn<'s>>,
    base_opts: FusionOpts,
    verify: VerifyLevel,

    // Evolving IR.
    norm: Option<NormProgram>,
    binding: Option<ConfigBinding>,
    rce2: Option<crate::rce2::Rce2Info>,

    // Cached analyses (cleared by `invalidate`).
    candidates: Option<Vec<Option<usize>>>,
    asdg: Vec<Option<Asdg>>,
    /// How many per-block ASDG constructions have run. With no mutating
    /// passes scheduled this equals the block count — the cache guarantees
    /// at most one build per block per mutation epoch.
    pub asdg_builds: usize,
    epoch: u64,
    fusion_ready: bool,

    // Fusion / contraction state (valid once `fusion_ready`).
    block_opts: Vec<FusionOpts>,
    compiler_defs: Vec<Vec<DefId>>,
    user_defs: Vec<Vec<DefId>>,
    partitions: Vec<Partition>,
    contract_sets: Vec<Vec<DefId>>,
    contracted_defs: Vec<Vec<DefId>>,
    groups: Vec<Vec<PartialGroup>>,
    structures: Vec<BTreeMap<usize, Vec<i8>>>,
    collapse_list: Vec<(ArrayId, u8)>,

    // Results.
    report: Report,
    cheap_check_failed: bool,
    block_out: Vec<Vec<LStmt>>,
    scalarized: Option<ScalarProgram>,
    contracted: Vec<ArrayId>,
    details: Vec<BlockDetail>,
    diagnostics: Vec<Diagnostic>,
}

impl<'s> CompileSession<'s> {
    /// Starts a session for a program at a level.
    pub fn new(
        program: &'s Program,
        level: Level,
        base_opts: FusionOpts,
        verify: VerifyLevel,
    ) -> CompileSession<'s> {
        CompileSession {
            program,
            level,
            forbid: None,
            base_opts,
            verify,
            norm: None,
            binding: None,
            rce2: None,
            candidates: None,
            asdg: Vec::new(),
            asdg_builds: 0,
            epoch: 0,
            fusion_ready: false,
            block_opts: Vec::new(),
            compiler_defs: Vec::new(),
            user_defs: Vec::new(),
            partitions: Vec::new(),
            contract_sets: Vec::new(),
            contracted_defs: Vec::new(),
            groups: Vec::new(),
            structures: Vec::new(),
            collapse_list: Vec::new(),
            report: Report::default(),
            cheap_check_failed: false,
            block_out: Vec::new(),
            scalarized: None,
            contracted: Vec::new(),
            details: Vec::new(),
            diagnostics: Vec::new(),
        }
    }

    /// The source program (pre-normalization).
    pub fn program(&self) -> &Program {
        self.program
    }

    /// The level being applied.
    pub fn level(&self) -> Level {
        self.level
    }

    /// The current mutation epoch: bumped by [`CompileSession::invalidate`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The name table of the program being compiled (interned symbols for
    /// every declared name; post-normalize includes compiler temps).
    pub fn names(&self) -> &zlang::ir::NameTable {
        match &self.norm {
            Some(np) => &np.program.names,
            None => &self.program.names,
        }
    }

    /// Drops every cached analysis and starts a new mutation epoch.
    /// Called by the manager after a changing run of a pass that does not
    /// preserve analyses.
    pub fn invalidate(&mut self) {
        for slot in &mut self.asdg {
            *slot = None;
        }
        self.candidates = None;
        self.fusion_ready = false;
        self.epoch += 1;
    }

    /// Builds the block's ASDG if this epoch has not yet built it.
    pub(crate) fn ensure_asdg(&mut self, bi: usize) {
        if self.asdg[bi].is_some() {
            return;
        }
        let np = self
            .norm
            .as_ref()
            .expect("normalize pass must run before ASDG construction");
        let g = asdg::build(&np.program, &np.blocks[bi]);
        self.asdg[bi] = Some(g);
        self.asdg_builds += 1;
    }

    /// Computes the contraction candidates if this epoch has not yet.
    pub(crate) fn ensure_candidates(&mut self) {
        if self.candidates.is_some() {
            return;
        }
        let np = self
            .norm
            .as_ref()
            .expect("normalize pass must run before candidate analysis");
        self.candidates = Some(normal::contraction_candidates(np));
    }

    /// Prepares the per-block fusion state: ASDGs, fusion options (with
    /// the forbidden-pairs callback applied), the compiler/user candidate
    /// definition split, and trivial partitions. Idempotent per epoch.
    ///
    /// The forbidden-pairs callback runs here — after any statement-
    /// rewriting cleanup pass — so the pair indices it returns refer to
    /// the statements fusion will actually see.
    pub(crate) fn ensure_fusion_setup(&mut self) {
        if self.fusion_ready {
            return;
        }
        self.ensure_candidates();
        let nblocks = self.norm.as_ref().map_or(0, |np| np.blocks.len());
        for bi in 0..nblocks {
            self.ensure_asdg(bi);
        }
        let np = self.norm.as_ref().expect("normalize pass must run");
        let candidates = self.candidates.as_ref().expect("just ensured");
        let mut block_opts = Vec::with_capacity(nblocks);
        let mut compiler_defs = vec![Vec::new(); nblocks];
        let mut user_defs = vec![Vec::new(); nblocks];
        let mut partitions = Vec::with_capacity(nblocks);
        for bi in 0..nblocks {
            let g = self.asdg[bi].as_ref().expect("just ensured");
            let mut opts = self.base_opts.clone();
            if let Some(f) = self.forbid {
                opts.forbidden_pairs = f(np, bi, g);
            }
            block_opts.push(opts);
            for (ai, cand) in candidates.iter().enumerate() {
                if *cand != Some(bi) {
                    continue;
                }
                let a = ArrayId(ai as u32);
                let defs = g.defs_of(a);
                if np.program.array(a).compiler_temp {
                    compiler_defs[bi].extend(defs);
                } else {
                    user_defs[bi].extend(defs);
                }
            }
            partitions.push(Partition::trivial(g.n));
        }
        self.block_opts = block_opts;
        self.compiler_defs = compiler_defs;
        self.user_defs = user_defs;
        self.partitions = partitions;
        self.contract_sets = vec![Vec::new(); nblocks];
        self.contracted_defs = vec![Vec::new(); nblocks];
        self.groups = vec![Vec::new(); nblocks];
        self.structures = vec![BTreeMap::new(); nblocks];
        self.fusion_ready = true;
    }

    /// Total array-level statements across all basic blocks.
    pub fn stmt_count(&self) -> usize {
        self.norm
            .as_ref()
            .map_or(0, |np| np.blocks.iter().map(|b| b.stmts.len()).sum())
    }

    /// Total live fusion clusters across all blocks (0 before fusion
    /// state exists).
    pub fn cluster_count(&self) -> usize {
        if !self.details.is_empty() {
            return self
                .details
                .iter()
                .map(|d| d.partition.live_clusters().len())
                .sum();
        }
        if self.fusion_ready {
            self.partitions
                .iter()
                .map(|p| p.live_clusters().len())
                .sum()
        } else {
            0
        }
    }

    /// Renders the IR as it stands after the named pass ran.
    ///
    /// Normalization-level passes print the normalized blocks; fusion-
    /// level passes additionally print cluster assignments and each
    /// block's ASDG in Graphviz `dot` form; scalarization and later print
    /// the loop-level program.
    pub fn snapshot(&self, id: PassId) -> String {
        match id {
            PassId::Normalize | PassId::Dse | PassId::Rce => self.snapshot_norm(id),
            PassId::Rce2 => self.snapshot_rce2(),
            PassId::FuseContraction
            | PassId::FuseLocality
            | PassId::FusePairwise
            | PassId::Contract
            | PassId::DimContract
            | PassId::FindLoopStructure => self.snapshot_clusters(id),
            _ => {
                let sp = self
                    .scalarized
                    .as_ref()
                    .expect("loop-level snapshot requested before scalarize ran");
                loopir::printer::print_with_header(id.name(), sp)
            }
        }
    }

    fn snapshot_norm(&self, id: PassId) -> String {
        let np = self.norm.as_ref().expect("normalize must run first");
        let mut out = format!("// after {}\n", id.name());
        for (bi, block) in np.blocks.iter().enumerate() {
            let _ = writeln!(out, "// block {bi}");
            for s in &block.stmts {
                out.push_str(&print_bstmt(&np.program, s));
                out.push('\n');
            }
        }
        out
    }

    /// The `--emit rce2` snapshot: the normalized blocks after the pass,
    /// followed by the rewrite/temp/hoist record every change left for
    /// the `verify::rce2` re-checker.
    fn snapshot_rce2(&self) -> String {
        let mut out = self.snapshot_norm(PassId::Rce2);
        let np = self.norm.as_ref().expect("normalize must run first");
        let Some(info) = &self.rce2 else { return out };
        let _ = writeln!(
            out,
            "// rce2: {} rewrite(s), {} temp(s), {} hoist(s)",
            info.rewrites.len(),
            info.temps.len(),
            info.hoists.len()
        );
        for r in &info.rewrites {
            let _ = writeln!(
                out,
                "// rewrite block {} stmt {} path {:?}: {}@{:?} replaces {}",
                r.block,
                r.stmt,
                r.path,
                np.program.array(r.provider).name,
                r.delta,
                zlang::pretty::array_expr(&np.program, &r.replaced),
            );
        }
        for t in &info.temps {
            let _ = writeln!(
                out,
                "// temp block {} stmt {}: {}",
                t.block,
                t.stmt,
                np.program.array(t.array).name,
            );
        }
        for h in &info.hoists {
            let _ = writeln!(
                out,
                "// hoist {}: block {} stmt {} (was block {} index {})",
                np.program.array(h.array).name,
                h.landing_block,
                h.landing_stmt,
                h.orig_block,
                h.orig_index,
            );
        }
        out
    }

    fn snapshot_clusters(&self, id: PassId) -> String {
        let np = self.norm.as_ref().expect("normalize must run first");
        let mut out = format!("// after {}\n", id.name());
        for (bi, block) in np.blocks.iter().enumerate() {
            let _ = writeln!(out, "// block {bi}");
            if let Some(part) = self.partitions.get(bi) {
                for c in part.live_clusters() {
                    let _ = writeln!(out, "cluster {c}: stmts {:?}", part.cluster(c));
                }
            }
            if let Some(g) = self.asdg.get(bi).and_then(|g| g.as_ref()) {
                out.push_str(&asdg::to_dot(&np.program, block, g));
            }
        }
        out
    }

    /// Packages the finished session into an [`Optimized`].
    pub(crate) fn finish(self, run: PassRun) -> Optimized {
        Optimized {
            norm: self.norm.expect("normalize pass must run"),
            scalarized: self.scalarized.expect("scalarize pass must run"),
            rce2: self.rce2,
            contracted: self.contracted,
            report: self.report,
            level: self.level,
            details: self.details,
            diagnostics: self.diagnostics,
            passes: run.traces,
            asdg_builds: self.asdg_builds,
            emitted: run.emitted,
        }
    }
}

/// Renders one normalized statement in source-like syntax.
pub(crate) fn print_bstmt(p: &Program, s: &BStmt) -> String {
    match s {
        BStmt::Array(a) => format!(
            "[{}] {} := {}",
            p.region(a.region).name,
            p.array(a.lhs).name,
            zlang::pretty::array_expr(p, &a.rhs)
        ),
        BStmt::Reduce {
            lhs,
            op,
            region,
            arg,
        } => format!(
            "{} := {} [{}] {}",
            p.scalar(*lhs).name,
            reduce_token(*op),
            p.region(*region).name,
            zlang::pretty::array_expr(p, arg)
        ),
        BStmt::Scalar { lhs, rhs } => format!(
            "{} := {}",
            p.scalar(*lhs).name,
            zlang::pretty::scalar_expr(p, rhs)
        ),
    }
}

fn reduce_token(op: ReduceOp) -> &'static str {
    match op {
        ReduceOp::Sum => "+<<",
        ReduceOp::Prod => "*<<",
        ReduceOp::Max => "max<<",
        ReduceOp::Min => "min<<",
    }
}

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

/// Normalization: splits the program into basic blocks of normalized
/// array statements and fixes the default config binding.
struct NormalizePass;

impl Pass for NormalizePass {
    fn id(&self) -> PassId {
        PassId::Normalize
    }

    fn run(&self, s: &mut CompileSession<'_>) -> PassResult {
        let np = normal::normalize(s.program);
        s.binding = Some(np.default_binding());
        s.asdg = vec![None; np.blocks.len()];
        s.norm = Some(np);
        s.ensure_candidates();
        PassResult::changed(true)
    }
}

/// Dead-statement elimination: removes an array statement whose
/// definition is never read and whose every element is overwritten by a
/// later statement in the same block writing the same array over the same
/// (symbolic) region. The full-region overwrite makes this safe even when
/// the array is live across blocks.
///
/// Off at every paper level; enabled with the `+dse` level suffix.
struct DsePass;

impl Pass for DsePass {
    fn id(&self) -> PassId {
        PassId::Dse
    }

    fn preserves_analyses(&self) -> bool {
        false
    }

    fn run(&self, s: &mut CompileSession<'_>) -> PassResult {
        let nblocks = s.norm.as_ref().map_or(0, |np| np.blocks.len());
        for bi in 0..nblocks {
            s.ensure_asdg(bi);
        }
        // Decide against one consistent ASDG snapshot, then rewrite.
        let mut dead_per_block: Vec<Vec<usize>> = Vec::with_capacity(nblocks);
        {
            let np = s.norm.as_ref().expect("normalize must run first");
            for (bi, block) in np.blocks.iter().enumerate() {
                let g = s.asdg[bi].as_ref().expect("just ensured");
                let mut dead = Vec::new();
                for (i, st) in block.stmts.iter().enumerate() {
                    let BStmt::Array(a) = st else { continue };
                    let Some(d) = g.write_def[i] else { continue };
                    if !g.def(d).reads.is_empty() {
                        continue;
                    }
                    let shadowed = block.stmts[i + 1..].iter().any(
                        |t| matches!(t, BStmt::Array(b) if b.lhs == a.lhs && b.region == a.region),
                    );
                    if shadowed {
                        dead.push(i);
                    }
                }
                dead_per_block.push(dead);
            }
        }
        let mut changed = false;
        let np = s.norm.as_mut().expect("normalize must run first");
        for (bi, dead) in dead_per_block.iter().enumerate() {
            if dead.is_empty() {
                continue;
            }
            let dead_set: HashSet<usize> = dead.iter().copied().collect();
            let mut i = 0;
            np.blocks[bi].stmts.retain(|_| {
                let keep = !dead_set.contains(&i);
                i += 1;
                keep
            });
            changed = true;
        }
        PassResult::changed(changed)
    }
}

/// Redundant-computation elimination: when a later statement recomputes
/// an earlier statement's right-hand side (element-wise, modulo one
/// uniform offset shift δ), the recomputation is replaced by a shifted
/// read of the earlier result.
///
/// For a pair `[Ri] B := rhs;  ...  [Rj] C := rhs@δ`, the merge is legal
/// when no array read by `rhs` (and not `B` itself) is redefined between
/// the two statements, no scalar read by `rhs` is rewritten between them,
/// `rhs` contains no `index` term if δ ≠ 0, and `Rj + δ ⊆ Ri` holds
/// symbolically — every element the shifted read touches was actually
/// written (not stale halo) by the earlier statement.
///
/// Off at every paper level; enabled with the `+rce` level suffix.
struct RcePass;

impl Pass for RcePass {
    fn id(&self) -> PassId {
        PassId::Rce
    }

    fn preserves_analyses(&self) -> bool {
        false
    }

    fn run(&self, s: &mut CompileSession<'_>) -> PassResult {
        let mut changed = false;
        let np = s.norm.as_mut().expect("normalize must run first");
        for block in &mut np.blocks {
            for j in 1..block.stmts.len() {
                let replacement = find_rce_source(&np.program, &block.stmts, j);
                if let Some((src, delta)) = replacement {
                    let BStmt::Array(a) = &mut block.stmts[j] else {
                        unreachable!("find_rce_source only matches array statements");
                    };
                    a.rhs = ArrayExpr::Read(src, Offset(delta));
                    changed = true;
                }
            }
        }
        PassResult::changed(changed)
    }
}

/// Stencil-aware redundancy elimination driven by the offset-lattice
/// availability analysis ([`crate::avail`]): subexpression-level reuse
/// across statements (shifted reads of earlier results or of fresh
/// materialization temporaries) plus loop-invariant hoisting out of
/// counted loops. Every change is recorded for the independent
/// `verify::rce2` re-checker. See [`crate::rce2`].
///
/// Off at every paper level; enabled with the `+rce2` level suffix.
struct Rce2Pass;

impl Pass for Rce2Pass {
    fn id(&self) -> PassId {
        PassId::Rce2
    }

    fn preserves_analyses(&self) -> bool {
        false
    }

    fn run(&self, s: &mut CompileSession<'_>) -> PassResult {
        let binding = s.binding.clone().expect("set by normalize");
        let np = s.norm.as_mut().expect("normalize must run first");
        let (changed, info) = crate::rce2::run(np, &binding);
        // Hoisting can add blocks: the ASDG cache must track the new
        // block count before the epoch invalidation clears it.
        let nblocks = np.blocks.len();
        s.asdg.resize_with(nblocks, || None);
        s.rce2 = Some(info);
        PassResult::changed(changed)
    }
}

/// Finds the earliest statement `i < j` whose RHS statement `j`
/// redundantly recomputes, returning the array to read instead and the
/// offset shift. See [`RcePass`] for the legality conditions.
fn find_rce_source(program: &Program, stmts: &[BStmt], j: usize) -> Option<(ArrayId, Vec<i64>)> {
    let BStmt::Array(sj) = &stmts[j] else {
        return None;
    };
    // A bare shifted read is already the form RCE produces; rewriting it
    // to read another array would gain nothing.
    if matches!(sj.rhs, ArrayExpr::Read(..)) {
        return None;
    }
    let rank = program.region(sj.region).rank();
    for i in 0..j {
        let BStmt::Array(si) = &stmts[i] else {
            continue;
        };
        if si.lhs == sj.lhs {
            continue;
        }
        let mut delta: Option<Vec<i64>> = None;
        let mut has_index = false;
        if !rhs_equal_shifted(&si.rhs, &sj.rhs, &mut delta, &mut has_index) {
            continue;
        }
        let delta = delta.unwrap_or_else(|| vec![0; rank]);
        if delta.len() != rank {
            continue;
        }
        if has_index && delta.iter().any(|&d| d != 0) {
            // `index` evaluates to the iteration point: shifting the read
            // would shift it too, which a plain read cannot express.
            continue;
        }
        // Every element read, `Rj + δ`, must have been written by
        // statement i — i.e. lie inside `Ri` — or the read sees stale
        // halo values.
        if !region_contains_shifted(program, si.region, sj.region, &delta) {
            continue;
        }
        // Nothing the RHS depends on may change between i and j, and the
        // source array must still hold statement i's values. A write to a
        // dependency is harmless when its region is provably disjoint
        // from every element the rewritten statement will touch — e.g. a
        // boundary-row update between two interior-region statements.
        let reads: Vec<(ArrayId, Offset)> = stmts[j].reads();
        let scalar_reads: HashSet<ScalarId> = stmts[j].scalar_reads().into_iter().collect();
        let clobbered = stmts[i + 1..j].iter().any(|st| {
            if let BStmt::Array(w) = st {
                if w.lhs == si.lhs
                    && !regions_disjoint_shifted(program, w.region, sj.region, &delta)
                {
                    return true;
                }
                for (ra, off) in &reads {
                    if *ra == w.lhs
                        && !regions_disjoint_shifted(program, w.region, sj.region, &off.0)
                    {
                        return true;
                    }
                }
            }
            if let Some(sc) = st.lhs_scalar() {
                if scalar_reads.contains(&sc) {
                    return true;
                }
            }
            false
        });
        if clobbered {
            continue;
        }
        return Some((si.lhs, delta));
    }
    None
}

/// Structural equality of two array expressions modulo one uniform offset
/// shift on every `Read`: accumulates the shift into `delta` and flags
/// whether the expressions contain an `index` term.
fn rhs_equal_shifted(
    a: &ArrayExpr,
    b: &ArrayExpr,
    delta: &mut Option<Vec<i64>>,
    has_index: &mut bool,
) -> bool {
    match (a, b) {
        (ArrayExpr::Read(a1, o1), ArrayExpr::Read(a2, o2)) => {
            if a1 != a2 || o1.0.len() != o2.0.len() {
                return false;
            }
            let d: Vec<i64> = o2.0.iter().zip(&o1.0).map(|(x, y)| x - y).collect();
            match delta {
                Some(prev) => *prev == d,
                None => {
                    *delta = Some(d);
                    true
                }
            }
        }
        (ArrayExpr::ScalarRef(s1), ArrayExpr::ScalarRef(s2)) => s1 == s2,
        (ArrayExpr::ConfigRef(c1), ArrayExpr::ConfigRef(c2)) => c1 == c2,
        (ArrayExpr::Const(v1), ArrayExpr::Const(v2)) => v1 == v2,
        (ArrayExpr::Index(d1), ArrayExpr::Index(d2)) => {
            *has_index = true;
            d1 == d2
        }
        (ArrayExpr::Unary(op1, x1), ArrayExpr::Unary(op2, x2)) => {
            op1 == op2 && rhs_equal_shifted(x1, x2, delta, has_index)
        }
        (ArrayExpr::Binary(op1, l1, r1), ArrayExpr::Binary(op2, l2, r2)) => {
            op1 == op2
                && rhs_equal_shifted(l1, l2, delta, has_index)
                && rhs_equal_shifted(r1, r2, delta, has_index)
        }
        (ArrayExpr::Call(i1, args1), ArrayExpr::Call(i2, args2)) => {
            i1 == i2
                && args1.len() == args2.len()
                && args1
                    .iter()
                    .zip(args2)
                    .all(|(x, y)| rhs_equal_shifted(x, y, delta, has_index))
        }
        _ => false,
    }
}

/// `FUSION-FOR-CONTRACTION` over the contraction-candidate definitions
/// (compiler temporaries, plus user arrays at user-fusing levels), in
/// weight order.
struct FuseContractionPass {
    include_user: bool,
}

impl Pass for FuseContractionPass {
    fn id(&self) -> PassId {
        PassId::FuseContraction
    }

    fn run(&self, s: &mut CompileSession<'_>) -> PassResult {
        s.ensure_fusion_setup();
        let CompileSession {
            norm,
            binding,
            asdg,
            block_opts,
            compiler_defs,
            user_defs,
            partitions,
            ..
        } = s;
        let np = norm.as_ref().expect("normalize must run first");
        let binding = binding.as_ref().expect("set by normalize");
        let mut changed = false;
        for (bi, block) in np.blocks.iter().enumerate() {
            let g = asdg[bi].as_ref().expect("fusion setup built it");
            let mut ctx = FusionCtx::new(&np.program, block, g);
            ctx.opts = block_opts[bi].clone();
            let mut fuse_set = compiler_defs[bi].clone();
            if self.include_user {
                fuse_set.extend(user_defs[bi].iter().copied());
            }
            let fuse_set = sort_by_weight(&np.program, block, g, fuse_set, binding);
            let part = &mut partitions[bi];
            let before = part.live_clusters().len();
            ctx.fusion_for_contraction(part, &fuse_set);
            changed |= part.live_clusters().len() != before;
        }
        PassResult::changed(changed)
    }
}

/// Fusion for locality: merges every legal pair among all definitions,
/// in weight order.
struct FuseLocalityPass;

impl Pass for FuseLocalityPass {
    fn id(&self) -> PassId {
        PassId::FuseLocality
    }

    fn run(&self, s: &mut CompileSession<'_>) -> PassResult {
        s.ensure_fusion_setup();
        let CompileSession {
            norm,
            binding,
            asdg,
            block_opts,
            partitions,
            ..
        } = s;
        let np = norm.as_ref().expect("normalize must run first");
        let binding = binding.as_ref().expect("set by normalize");
        let mut changed = false;
        for (bi, block) in np.blocks.iter().enumerate() {
            let g = asdg[bi].as_ref().expect("fusion setup built it");
            let mut ctx = FusionCtx::new(&np.program, block, g);
            ctx.opts = block_opts[bi].clone();
            let all: Vec<DefId> = (0..g.defs.len() as u32).map(DefId).collect();
            let all = sort_by_weight(&np.program, block, g, all, binding);
            let part = &mut partitions[bi];
            let before = part.live_clusters().len();
            ctx.fusion_for_locality(part, &all);
            changed |= part.live_clusters().len() != before;
        }
        PassResult::changed(changed)
    }
}

/// Greedy legal pairwise fusion (`c2+f4`), optionally bounded by the
/// spatial-locality cap on distinct arrays per cluster.
struct FusePairwisePass {
    cap: Option<usize>,
}

impl Pass for FusePairwisePass {
    fn id(&self) -> PassId {
        PassId::FusePairwise
    }

    fn run(&self, s: &mut CompileSession<'_>) -> PassResult {
        s.ensure_fusion_setup();
        let CompileSession {
            norm,
            asdg,
            block_opts,
            partitions,
            ..
        } = s;
        let np = norm.as_ref().expect("normalize must run first");
        let mut changed = false;
        for (bi, block) in np.blocks.iter().enumerate() {
            let g = asdg[bi].as_ref().expect("fusion setup built it");
            let mut ctx = FusionCtx::new(&np.program, block, g);
            ctx.opts = block_opts[bi].clone();
            let part = &mut partitions[bi];
            let before = part.live_clusters().len();
            match self.cap {
                Some(cap) => ctx.pairwise_fusion_bounded(part, cap),
                None => ctx.pairwise_fusion(part),
            }
            changed |= part.live_clusters().len() != before;
        }
        PassResult::changed(changed)
    }
}

/// Contraction decisions: which candidate definitions contract under the
/// final partition (Definition 6), per the level's compiler/user policy.
/// Also runs the cheap legality self-check that arms the `on-failure`
/// verifier mode.
struct ContractPass {
    compiler: bool,
    user: bool,
}

impl Pass for ContractPass {
    fn id(&self) -> PassId {
        PassId::Contract
    }

    fn run(&self, s: &mut CompileSession<'_>) -> PassResult {
        s.ensure_fusion_setup();
        let verify_level = s.verify;
        let CompileSession {
            norm,
            asdg,
            block_opts,
            compiler_defs,
            user_defs,
            partitions,
            contract_sets,
            contracted_defs,
            report,
            cheap_check_failed,
            ..
        } = s;
        let np = norm.as_ref().expect("normalize must run first");
        let mut changed = false;
        for (bi, block) in np.blocks.iter().enumerate() {
            let g = asdg[bi].as_ref().expect("fusion setup built it");
            let mut ctx = FusionCtx::new(&np.program, block, g);
            ctx.opts = block_opts[bi].clone();
            let mut contract_set = Vec::new();
            if self.compiler {
                contract_set.extend(compiler_defs[bi].iter().copied());
            }
            if self.user {
                contract_set.extend(user_defs[bi].iter().copied());
            }
            let cd = ctx.contracted_defs(&partitions[bi], &contract_set);
            report.contracted_defs += cd.len();
            if verify_level == VerifyLevel::OnFailure && ctx.validate(&partitions[bi]).is_err() {
                *cheap_check_failed = true;
            }
            changed |= !cd.is_empty();
            contract_sets[bi] = contract_set;
            contracted_defs[bi] = cd;
        }
        PassResult::changed(changed)
    }
}

/// Dimension contraction ([`crate::ext`]): finds partial-fusion groups
/// whose flow-flat arrays collapse to a single slice under a shared outer
/// loop, and records the dimensions to collapse.
struct DimContractPass;

impl Pass for DimContractPass {
    fn id(&self) -> PassId {
        PassId::DimContract
    }

    fn run(&self, s: &mut CompileSession<'_>) -> PassResult {
        s.ensure_fusion_setup();
        let CompileSession {
            norm,
            asdg,
            block_opts,
            partitions,
            contract_sets,
            contracted_defs,
            groups,
            collapse_list,
            ..
        } = s;
        let np = norm.as_ref().expect("normalize must run first");
        let mut changed = false;
        for (bi, block) in np.blocks.iter().enumerate() {
            let g = asdg[bi].as_ref().expect("fusion setup built it");
            let mut ctx = FusionCtx::new(&np.program, block, g);
            ctx.opts = block_opts[bi].clone();
            let contracted_def_set: HashSet<DefId> = contracted_defs[bi].iter().copied().collect();
            let found = crate::ext::find_groups(
                &ctx,
                &partitions[bi],
                &contract_sets[bi],
                &contracted_def_set,
            );
            for grp in &found {
                for &a in &grp.collapsed {
                    collapse_list.push((a, grp.dim));
                }
            }
            changed |= !found.is_empty();
            groups[bi] = found;
        }
        PassResult::changed(changed)
    }
}

/// `FIND-LOOP-STRUCTURE`: selects a legal loop structure vector for every
/// cluster that will be lowered as its own nest (Definition 4). Pure
/// analysis — scalarization consumes the recorded structures.
struct FindLoopStructurePass;

impl Pass for FindLoopStructurePass {
    fn id(&self) -> PassId {
        PassId::FindLoopStructure
    }

    fn run(&self, s: &mut CompileSession<'_>) -> PassResult {
        s.ensure_fusion_setup();
        let CompileSession {
            norm,
            asdg,
            block_opts,
            partitions,
            groups,
            structures,
            ..
        } = s;
        let np = norm.as_ref().expect("normalize must run first");
        for (bi, block) in np.blocks.iter().enumerate() {
            let g = asdg[bi].as_ref().expect("fusion setup built it");
            let mut ctx = FusionCtx::new(&np.program, block, g);
            ctx.opts = block_opts[bi].clone();
            structures[bi] = scalarize::cluster_structures(&ctx, &partitions[bi], &groups[bi]);
        }
        PassResult::changed(false)
    }
}

/// Scalarization: lowers every block's clusters to loop nests using the
/// recorded structures, applies dimension collapses, splices the blocks
/// back into the control-flow skeleton, and computes the Figure 7
/// static-array accounting. Moves the per-block records into
/// [`BlockDetail`]s for diagnostics and the verifier.
struct ScalarizePass;

impl Pass for ScalarizePass {
    fn id(&self) -> PassId {
        PassId::Scalarize
    }

    fn run(&self, s: &mut CompileSession<'_>) -> PassResult {
        s.ensure_fusion_setup();
        {
            let CompileSession {
                norm,
                asdg,
                block_opts,
                partitions,
                contracted_defs,
                groups,
                structures,
                block_out,
                ..
            } = s;
            let np = norm.as_ref().expect("normalize must run first");
            for (bi, block) in np.blocks.iter().enumerate() {
                let g = asdg[bi].as_ref().expect("fusion setup built it");
                let mut ctx = FusionCtx::new(&np.program, block, g);
                ctx.opts = block_opts[bi].clone();
                let contracted_set: HashSet<DefId> = contracted_defs[bi].iter().copied().collect();
                block_out.push(scalarize::scalarize_block_with_structures(
                    &ctx,
                    &partitions[bi],
                    &contracted_set,
                    &groups[bi],
                    Some(&structures[bi]),
                ));
            }
        }

        // Apply dimension collapses to the (owned) normalized program
        // before the scalarized code is packaged with it.
        {
            let CompileSession {
                norm,
                collapse_list,
                report,
                ..
            } = s;
            let np = norm.as_mut().expect("normalize must run first");
            for &(a, dim) in collapse_list.iter() {
                let decl = &mut np.program.arrays[a.0 as usize];
                if !decl.collapsed.contains(&dim) {
                    decl.collapsed.push(dim);
                }
            }
            report.dimension_contracted = {
                let mut v: Vec<ArrayId> = collapse_list.iter().map(|&(a, _)| a).collect();
                v.sort();
                v.dedup();
                v.len()
            };
        }

        let np = s.norm.as_ref().expect("normalize must run first");
        let stmts = splice(&np.body, &mut s.block_out.iter().cloned());
        let scalarized = ScalarProgram {
            program: np.program.clone(),
            stmts,
        };

        // Figure 7 accounting: arrays referenced before vs after.
        let referenced_before = referenced_arrays(np);
        let live_after: HashSet<ArrayId> = scalarized.live_arrays().into_iter().collect();
        for &a in &referenced_before {
            let is_temp = np.program.array(a).compiler_temp;
            if is_temp {
                s.report.compiler_before += 1;
            } else {
                s.report.user_before += 1;
            }
            if live_after.contains(&a) {
                if is_temp {
                    s.report.compiler_after += 1;
                } else {
                    s.report.user_after += 1;
                }
            }
        }
        s.report.nests = scalarized.nest_count();

        let mut contracted: Vec<ArrayId> = referenced_before
            .iter()
            .copied()
            .filter(|a| !live_after.contains(a))
            .collect();
        contracted.sort();
        s.contracted = contracted;
        s.scalarized = Some(scalarized);

        // Move the per-block records out for diagnostics / verification;
        // the ASDGs transfer ownership (no rebuild, no clone).
        let nblocks = s.asdg.len();
        for bi in 0..nblocks {
            let g = s.asdg[bi]
                .take()
                .expect("fusion setup built every block's graph");
            let partition = std::mem::replace(&mut s.partitions[bi], Partition::trivial(0));
            s.details.push(BlockDetail {
                asdg: g,
                partition,
                contracted: std::mem::take(&mut s.contracted_defs[bi]),
                opts: s.block_opts[bi].clone(),
            });
        }
        PassResult::changed(true)
    }
}

/// One scheduled verifier: re-checks a paper definition against the
/// finished [`BlockDetail`]s and scalarized program, honoring the
/// session's [`VerifyLevel`] gate (`off` skips, `on-failure` runs only
/// when the pipeline's cheap self-check tripped, `always` runs).
struct VerifyPass {
    which: PassId,
}

impl Pass for VerifyPass {
    fn id(&self) -> PassId {
        self.which
    }

    fn run(&self, s: &mut CompileSession<'_>) -> PassResult {
        let enabled = match s.verify {
            VerifyLevel::Off => false,
            VerifyLevel::OnFailure => s.cheap_check_failed,
            VerifyLevel::Always => true,
        };
        if !enabled {
            return PassResult::changed(false);
        }
        s.ensure_candidates();
        let CompileSession {
            norm,
            rce2,
            candidates,
            scalarized,
            details,
            diagnostics,
            ..
        } = s;
        let np = norm.as_ref().expect("normalize must run first");
        match self.which {
            PassId::VerifyNormalForm => diagnostics.extend(verify::check_normal_form(np)),
            PassId::VerifyAsdg => {
                for (bi, d) in details.iter().enumerate() {
                    diagnostics.extend(verify::check_asdg(
                        &np.program,
                        &np.blocks[bi],
                        bi,
                        &d.asdg,
                    ));
                }
            }
            PassId::VerifyPartition => {
                for (bi, d) in details.iter().enumerate() {
                    diagnostics.extend(verify::check_partition(
                        &np.program,
                        &np.blocks[bi],
                        bi,
                        &d.asdg,
                        &d.partition,
                    ));
                }
            }
            PassId::VerifyContraction => {
                let cand = candidates.as_ref().expect("just ensured");
                for (bi, d) in details.iter().enumerate() {
                    diagnostics.extend(verify::check_contraction(
                        &np.program,
                        bi,
                        &d.asdg,
                        &d.partition,
                        &d.contracted,
                        cand,
                    ));
                }
            }
            PassId::VerifyStructure => {
                let sp = scalarized.as_ref().expect("scalarize must run first");
                diagnostics.extend(verify::check_structure(np, sp, details));
            }
            PassId::VerifyRce2 => {
                if let Some(info) = rce2 {
                    diagnostics.extend(verify::check_rce2(np, info));
                }
            }
            other => unreachable!("{other} is not a verification pass"),
        }
        PassResult::changed(false)
    }
}

// ---------------------------------------------------------------------------
// Control-flow splicing (shared with the old pipeline shape)
// ---------------------------------------------------------------------------

/// Splices scalarized blocks back into the control-flow skeleton.
/// Blocks are numbered in discovery order, which is a pre-order walk —
/// this reproduces the same walk.
pub(crate) fn splice(body: &[NStmt], blocks: &mut impl Iterator<Item = Vec<LStmt>>) -> Vec<LStmt> {
    fn walk(body: &[NStmt], blocks: &[Vec<LStmt>], out: &mut Vec<LStmt>) {
        for s in body {
            match s {
                NStmt::Block(i) => out.extend(blocks[*i].iter().cloned()),
                NStmt::For {
                    var,
                    lo,
                    hi,
                    down,
                    body,
                } => {
                    let mut inner = Vec::new();
                    walk(body, blocks, &mut inner);
                    out.push(LStmt::For {
                        var: *var,
                        lo: lo.clone(),
                        hi: hi.clone(),
                        down: *down,
                        body: inner,
                    });
                }
                NStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let mut t = Vec::new();
                    let mut e = Vec::new();
                    walk(then_body, blocks, &mut t);
                    walk(else_body, blocks, &mut e);
                    out.push(LStmt::If {
                        cond: cond.clone(),
                        then_body: t,
                        else_body: e,
                    });
                }
            }
        }
    }
    let collected: Vec<Vec<LStmt>> = blocks.collect();
    let mut out = Vec::new();
    walk(body, &collected, &mut out);
    out
}

/// All arrays referenced anywhere in the normalized program.
pub(crate) fn referenced_arrays(np: &NormProgram) -> Vec<ArrayId> {
    let mut seen = vec![false; np.program.arrays.len()];
    for block in &np.blocks {
        for s in &block.stmts {
            for (a, _) in s.reads() {
                seen[a.0 as usize] = true;
            }
            if let Some(a) = s.lhs_array() {
                seen[a.0 as usize] = true;
            }
        }
    }
    seen.iter()
        .enumerate()
        .filter(|(_, &s)| s)
        .map(|(i, _)| ArrayId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_session_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompileSession<'_>>();
    }

    #[test]
    fn pass_id_names_round_trip() {
        for id in PassId::all() {
            assert_eq!(PassId::from_name(id.name()), Some(id), "{id}");
        }
        assert_eq!(PassId::from_name("nonsense"), None);
    }

    #[test]
    fn verify_stages_cite_definitions() {
        for id in PassId::all() {
            let is_pipeline_verifier = matches!(
                id,
                PassId::VerifyNormalForm
                    | PassId::VerifyAsdg
                    | PassId::VerifyPartition
                    | PassId::VerifyStructure
                    | PassId::VerifyContraction
                    | PassId::VerifyRce2
            );
            assert_eq!(id.definition().is_some(), is_pipeline_verifier, "{id}");
        }
    }

    #[test]
    fn lin_le_requires_identical_terms() {
        use crate::avail::lin_le;
        use zlang::ir::LinExpr;
        let a = LinExpr::constant(3);
        let b = LinExpr::constant(5);
        assert!(lin_le(&a, &b));
        assert!(!lin_le(&b, &a));
    }

    #[test]
    fn rhs_shift_detects_uniform_offsets() {
        use zlang::ast::BinOp;
        let a = ArrayExpr::Binary(
            BinOp::Add,
            Box::new(ArrayExpr::Read(ArrayId(0), Offset(vec![0, 0]))),
            Box::new(ArrayExpr::Read(ArrayId(1), Offset(vec![1, 0]))),
        );
        let b = ArrayExpr::Binary(
            BinOp::Add,
            Box::new(ArrayExpr::Read(ArrayId(0), Offset(vec![0, 1]))),
            Box::new(ArrayExpr::Read(ArrayId(1), Offset(vec![1, 1]))),
        );
        let mut delta = None;
        let mut has_index = false;
        assert!(rhs_equal_shifted(&a, &b, &mut delta, &mut has_index));
        assert_eq!(delta, Some(vec![0, 1]));
        // Mismatched per-read shifts are rejected.
        let c = ArrayExpr::Binary(
            BinOp::Add,
            Box::new(ArrayExpr::Read(ArrayId(0), Offset(vec![0, 1]))),
            Box::new(ArrayExpr::Read(ArrayId(1), Offset(vec![1, 2]))),
        );
        let mut delta = None;
        assert!(!rhs_equal_shifted(&a, &c, &mut delta, &mut has_index));
    }
}
