//! `FIND-LOOP-STRUCTURE` (Figure 4 of the paper).
//!
//! Given the set of unconstrained distance vectors arising from
//! intra-fusible-cluster dependences, find a loop structure vector — a
//! dimension and direction for each loop of the nest — that preserves every
//! dependence. Loops are assigned outermost-first; dimensions are
//! considered lowest-first so that, absent constraints, inner loops iterate
//! over *higher* array dimensions, exploiting spatial locality under
//! row-major allocation.

use crate::depvec::Udv;

/// Searches for a legal loop structure vector.
///
/// Returns `None` when no legal structure exists (`NOSOLUTION` in the
/// paper), which in turn rejects the candidate fusion.
///
/// The returned vector `p` satisfies: for every `u` in `deps`, the
/// constrained vector of `u` under `p` is lexicographically nonnegative.
///
/// ```
/// use fusion_core::{loopstruct::find_loop_structure, Udv};
/// // An anti-dependence carried backwards along dimension 1 forces loop
/// // reversal; dimension 2 stays innermost and increasing.
/// let p = find_loop_structure(&[Udv(vec![-1, 0])], 2).unwrap();
/// assert_eq!(p, vec![-1, 2]);
/// ```
pub fn find_loop_structure(deps: &[Udv], rank: usize) -> Option<Vec<i8>> {
    debug_assert!(deps.iter().all(|u| u.rank() == rank), "UDV rank mismatch");
    let mut remaining: Vec<&Udv> = deps.iter().collect();
    let mut assigned = vec![false; rank];
    let mut p = Vec::with_capacity(rank);
    for _loop_i in 0..rank {
        let mut chosen = None;
        // Index-based to mirror the paper's Figure 4 pseudocode.
        #[allow(clippy::needless_range_loop)]
        for j in 0..rank {
            if assigned[j] {
                continue;
            }
            let dir = if remaining.iter().all(|u| u.0[j] >= 0) {
                1
            } else if remaining.iter().all(|u| u.0[j] <= 0) {
                -1
            } else {
                0
            };
            if dir != 0 {
                chosen = Some((j, dir));
                break;
            }
        }
        let (j, dir) = chosen?;
        assigned[j] = true;
        p.push(((j + 1) as i8) * dir as i8);
        // Dependences carried by this loop no longer constrain inner loops.
        remaining.retain(|u| u.0[j] == 0);
    }
    debug_assert!(
        deps.iter().all(|u| u.preserved_by(&p)),
        "found structure must be legal"
    );
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_prefers_row_major() {
        assert_eq!(find_loop_structure(&[], 2), Some(vec![1, 2]));
        assert_eq!(find_loop_structure(&[], 3), Some(vec![1, 2, 3]));
    }

    #[test]
    fn null_deps_dont_constrain() {
        assert_eq!(find_loop_structure(&[Udv::null(2)], 2), Some(vec![1, 2]));
    }

    #[test]
    fn positive_distance_keeps_increasing() {
        assert_eq!(find_loop_structure(&[Udv(vec![1, 0])], 2), Some(vec![1, 2]));
    }

    #[test]
    fn negative_distance_forces_reversal() {
        assert_eq!(
            find_loop_structure(&[Udv(vec![0, -2])], 2),
            Some(vec![1, -2])
        );
    }

    #[test]
    fn mixed_signs_in_one_dim_resolved_by_outer_carry() {
        // u1 = (1, -1), u2 = (1, 1): dimension 2 has mixed signs, but
        // dimension 1 is uniformly positive; carrying it outermost frees
        // dimension 2 entirely.
        let p = find_loop_structure(&[Udv(vec![1, -1]), Udv(vec![1, 1])], 2).unwrap();
        assert_eq!(p, vec![1, 2]);
        for u in [Udv(vec![1, -1]), Udv(vec![1, 1])] {
            assert!(u.preserved_by(&p));
        }
    }

    #[test]
    fn interchange_when_dim1_is_mixed() {
        // u1 = (1, 2), u2 = (-1, 2): dimension 1 mixed, dimension 2 all
        // positive -> outer loop iterates dimension 2 increasing; it
        // carries both deps, leaving dimension 1 unconstrained.
        let p = find_loop_structure(&[Udv(vec![1, 2]), Udv(vec![-1, 2])], 2).unwrap();
        assert_eq!(p, vec![2, 1]);
    }

    #[test]
    fn paper_figure2_statements_1_and_3() {
        // Fusing statements 1 and 3 of Figure 2(b) involves UDVs (-1,0)
        // (flow on B... in the paper's loop nest) and (1,-1) (anti on A).
        // Dimension 1 is mixed; dimension 2: components {0, -1} -> all <= 0,
        // direction decreasing; it carries (1,-1); remaining (-1,0) forces
        // dimension 1 decreasing. p = (-2, -1), matching the paper's first
        // loop nest in Figure 2(c).
        let p = find_loop_structure(&[Udv(vec![-1, 0]), Udv(vec![1, -1])], 2).unwrap();
        assert_eq!(p, vec![-2, -1]);
    }

    #[test]
    fn no_solution_when_every_dim_mixed() {
        // (1,-1) and (-1,1): both dimensions mixed from the start.
        assert_eq!(
            find_loop_structure(&[Udv(vec![1, -1]), Udv(vec![-1, 1])], 2),
            None
        );
    }

    #[test]
    fn rank_one_cases() {
        assert_eq!(find_loop_structure(&[Udv(vec![3])], 1), Some(vec![1]));
        assert_eq!(find_loop_structure(&[Udv(vec![-3])], 1), Some(vec![-1]));
        assert_eq!(find_loop_structure(&[Udv(vec![3]), Udv(vec![-3])], 1), None);
    }

    #[test]
    fn rank_three_cascade() {
        // Outer dim1 carries (1,*,*); dim2 must reverse for (0,-1,0);
        // dim3 free.
        let deps = [Udv(vec![1, 5, -5]), Udv(vec![0, -1, 0])];
        let p = find_loop_structure(&deps, 3).unwrap();
        assert_eq!(p, vec![1, -2, 3]);
        for u in &deps {
            assert!(u.preserved_by(&p));
        }
    }
}
