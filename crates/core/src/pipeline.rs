//! The paper's optimization levels (Section 5.4) as a driver pipeline.
//!
//! | Level       | Fusion                                   | Contraction        |
//! |-------------|------------------------------------------|--------------------|
//! | `Baseline`  | none                                     | none               |
//! | `F1`        | for contraction of compiler arrays      | none               |
//! | `C1`        | for contraction of compiler arrays      | compiler arrays    |
//! | `F2`        | + for contraction of user arrays         | compiler arrays    |
//! | `F3`        | C1 + fusion for locality                 | compiler arrays    |
//! | `C2`        | for contraction of compiler+user arrays | compiler + user    |
//! | `C2F3`      | C2 + fusion for locality                 | compiler + user    |
//! | `C2F4`      | C2F3 + all legal (greedy pairwise)       | compiler + user    |

use crate::asdg::{Asdg, DefId};
use crate::fusion::{FusionOpts, Partition};
use crate::normal::NormProgram;
use crate::pass::{self, CompileSession, PassId, PassManager, PassTrace};
use crate::verify::{Diagnostic, VerifyLevel};
use loopir::ScalarProgram;
use std::fmt;
use zlang::ir::{ArrayId, Program};

/// An optimization level from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// No fusion, no contraction.
    Baseline,
    /// Fusion enabling compiler-array contraction; no contraction.
    F1,
    /// F1 + contraction of compiler arrays.
    C1,
    /// C1 + fusion enabling user-array contraction; user arrays kept.
    F2,
    /// C1 + fusion for locality.
    F3,
    /// C1 + fusion and contraction of user arrays.
    C2,
    /// C2 + fusion for locality.
    C2F3,
    /// C2F3 + all legal fusion (greedy pairwise).
    C2F4,
}

impl Level {
    /// All levels, in the paper's presentation order.
    pub fn all() -> [Level; 8] {
        [
            Level::Baseline,
            Level::F1,
            Level::C1,
            Level::F2,
            Level::F3,
            Level::C2,
            Level::C2F3,
            Level::C2F4,
        ]
    }

    /// The paper's name for the level.
    pub fn name(self) -> &'static str {
        match self {
            Level::Baseline => "baseline",
            Level::F1 => "f1",
            Level::C1 => "c1",
            Level::F2 => "f2",
            Level::F3 => "f3",
            Level::C2 => "c2",
            Level::C2F3 => "c2+f3",
            Level::C2F4 => "c2+f4",
        }
    }

    /// Whether the level fuses for contraction of *user* arrays (in
    /// addition to compiler temporaries).
    pub fn fuses_user(self) -> bool {
        matches!(self, Level::F2 | Level::C2 | Level::C2F3 | Level::C2F4)
    }

    /// Whether the level runs `FUSION-FOR-CONTRACTION` at all (every
    /// level except the baseline).
    pub fn fuses_compiler(self) -> bool {
        self != Level::Baseline
    }

    /// Whether the level additionally fuses for locality (`f3` family).
    pub fn locality_fusion(self) -> bool {
        matches!(self, Level::F3 | Level::C2F3 | Level::C2F4)
    }

    /// Whether the level runs greedy legal pairwise fusion (`c2+f4`).
    pub fn pairwise_fusion(self) -> bool {
        self == Level::C2F4
    }

    /// Whether the level contracts compiler temporaries.
    pub fn contracts_compiler(self) -> bool {
        !matches!(self, Level::Baseline | Level::F1)
    }

    /// Whether the level contracts user arrays too (`c2` family).
    pub fn contracts_user(self) -> bool {
        matches!(self, Level::C2 | Level::C2F3 | Level::C2F4)
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A callback computing statement pairs that must not fuse in a block
/// (used by the runtime's favor-communication policy, Section 5.5).
///
/// `Send + Sync` so a [`CompileSession`]
/// holding one can be handed to another thread (the parallel engine's
/// thread-safety contract; see `DESIGN.md`). The installed policies are
/// pure functions of their arguments, so this costs them nothing.
pub type ForbidFn<'f> =
    dyn Fn(&NormProgram, usize, &Asdg) -> Vec<(usize, usize)> + Send + Sync + 'f;

/// Static array accounting for the paper's Figure 7.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Report {
    /// Arrays referenced before contraction (compiler temporaries).
    pub compiler_before: usize,
    /// Arrays referenced before contraction (user arrays).
    pub user_before: usize,
    /// Arrays still referenced after contraction (compiler temporaries).
    pub compiler_after: usize,
    /// Arrays still referenced after contraction (user arrays).
    pub user_after: usize,
    /// Loop nests in the scalarized program.
    pub nests: usize,
    /// Contracted definitions (live ranges), across all blocks.
    pub contracted_defs: usize,
    /// Arrays contracted to a lower dimension (the [`crate::ext`]
    /// extension; 0 unless enabled).
    pub dimension_contracted: usize,
}

impl Report {
    /// Total arrays before contraction.
    pub fn before(&self) -> usize {
        self.compiler_before + self.user_before
    }

    /// Total arrays after contraction.
    pub fn after(&self) -> usize {
        self.compiler_after + self.user_after
    }

    /// Percent change in static array count (negative = reduction),
    /// the paper's Figure 7 "% change" column.
    pub fn percent_change(&self) -> f64 {
        if self.before() == 0 {
            0.0
        } else {
            100.0 * (self.after() as f64 - self.before() as f64) / self.before() as f64
        }
    }
}

/// Per-block optimization record, retained for diagnostics
/// ([`crate::explain`]).
#[derive(Debug, Clone)]
pub struct BlockDetail {
    /// The block's dependence graph.
    pub asdg: Asdg,
    /// The final fusion partition.
    pub partition: Partition,
    /// Definitions contracted in this block.
    pub contracted: Vec<DefId>,
    /// The fusion options that were in effect.
    pub opts: FusionOpts,
}

/// The result of optimizing a program.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The normalized program (compiler temporaries included).
    pub norm: NormProgram,
    /// The scalarized program, ready to interpret.
    pub scalarized: ScalarProgram,
    /// Arrays fully eliminated by contraction.
    pub contracted: Vec<ArrayId>,
    /// Static array accounting.
    pub report: Report,
    /// The level that was applied.
    pub level: Level,
    /// Per-block records (ASDG, partition, contracted definitions).
    pub details: Vec<BlockDetail>,
    /// Findings of the translation validator ([`crate::verify`]); empty
    /// when verification is off or everything checked out.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-pass instrumentation from the [`PassManager`]: wall-clock
    /// timing and statement/cluster counters, in execution order.
    pub passes: Vec<PassTrace>,
    /// Per-block ASDG constructions that actually ran — at most one per
    /// block per mutation epoch thanks to the session's analysis cache.
    pub asdg_builds: usize,
    /// IR snapshot captured after the pass requested with
    /// [`Pipeline::with_emit`], if that pass ran.
    pub emitted: Option<String>,
    /// Rewrites, temporaries, and hoists recorded by the `+rce2`
    /// stencil-aware redundancy pass ([`crate::rce2`]); `None` when the
    /// pass did not run.
    pub rce2: Option<crate::rce2::Rce2Info>,
}

impl Optimized {
    /// Names of fully contracted arrays, sorted.
    pub fn contracted_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .contracted
            .iter()
            .map(|&a| self.norm.program.array(a).name.clone())
            .collect();
        v.sort();
        v
    }
}

/// The optimization pipeline: normalization, per-block ASDG construction,
/// fusion, contraction, and scalarization at a chosen [`Level`].
pub struct Pipeline<'f> {
    level: Level,
    forbid: Option<Box<ForbidFn<'f>>>,
    base_opts: FusionOpts,
    spatial_cap: Option<usize>,
    dimension_contraction: bool,
    verify: VerifyLevel,
    dse: bool,
    rce: bool,
    rce2: bool,
    emit: Option<PassId>,
}

impl fmt::Debug for Pipeline<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("level", &self.level)
            .field("forbid", &self.forbid.is_some())
            .finish()
    }
}

impl<'f> Pipeline<'f> {
    /// Creates a pipeline at a level.
    pub fn new(level: Level) -> Self {
        Pipeline {
            level,
            forbid: None,
            base_opts: FusionOpts::default(),
            spatial_cap: None,
            dimension_contraction: false,
            verify: VerifyLevel::default(),
            dse: false,
            rce: false,
            rce2: false,
            emit: None,
        }
    }

    /// Enables dead-statement elimination ([`PassId::Dse`]): statements
    /// whose definition is never read and whose region is fully
    /// overwritten later in the block are removed. Off at every paper
    /// level (`+dse` level suffix in `zlc`).
    pub fn with_dse(mut self) -> Self {
        self.dse = true;
        self
    }

    /// Enables redundant-computation elimination ([`PassId::Rce`]):
    /// statements recomputing an earlier right-hand side (modulo a
    /// uniform offset shift) become shifted reads of the earlier result.
    /// Off at every paper level (`+rce` level suffix in `zlc`).
    pub fn with_rce(mut self) -> Self {
        self.rce = true;
        self
    }

    /// Enables stencil-aware redundancy elimination ([`PassId::Rce2`]):
    /// an offset-lattice availability analysis finds subexpressions whose
    /// value is already materialized at a constant shift, rewrites them
    /// into shifted reuses (materializing shared stencil subexpressions
    /// once where profitable), and hoists loop-invariant statements out of
    /// counted time loops. Every rewrite is independently re-checked by
    /// the translation validator ([`PassId::VerifyRce2`]). Off at every
    /// paper level (`+rce2` level suffix in `zlc`).
    pub fn with_rce2(mut self) -> Self {
        self.rce2 = true;
        self
    }

    /// Captures an IR snapshot after the named pass runs; the text lands
    /// in [`Optimized::emitted`] (it stays `None` if the pass is not part
    /// of this level's sequence). Drives `zlc --emit`.
    pub fn with_emit(mut self, pass: PassId) -> Self {
        self.emit = Some(pass);
        self
    }

    /// Sets when the translation validator ([`crate::verify`]) runs over
    /// the optimization result; findings land in
    /// [`Optimized::diagnostics`].
    pub fn with_verify(mut self, level: VerifyLevel) -> Self {
        self.verify = level;
        self
    }

    /// Enables *dimension contraction* (the extension addressing the
    /// paper's Section 5.2 SP deficiency): arrays whose full contraction
    /// fails but whose flow dependences are flat in some dimension are
    /// collapsed to a single slice under a shared outer loop. See
    /// [`crate::ext`].
    pub fn with_dimension_contraction(mut self) -> Self {
        self.dimension_contraction = true;
        self
    }

    /// Bounds the greedy pairwise pass (`c2+f4`) to clusters referencing at
    /// most `max_arrays` distinct arrays — the paper's proposed *spatial
    /// locality sensitivity* extension (Section 5.4 future work): arbitrary
    /// fusion pollutes small caches with too many concurrent streams.
    pub fn with_spatial_cap(mut self, max_arrays: usize) -> Self {
        self.spatial_cap = Some(max_arrays);
        self
    }

    /// Sets base fusion options applied to every block (e.g.
    /// [`FusionOpts::forbid_loop_carried_anti`] when modelling commercial
    /// compilers).
    pub fn with_opts(mut self, opts: FusionOpts) -> Self {
        self.base_opts = opts;
        self
    }

    /// Installs a favor-communication filter: per block, statement pairs
    /// that must not share a cluster.
    pub fn with_forbidden(
        mut self,
        f: impl Fn(&NormProgram, usize, &Asdg) -> Vec<(usize, usize)> + Send + Sync + 'f,
    ) -> Self {
        self.forbid = Some(Box::new(f));
        self
    }

    /// Runs the pipeline on a program: builds the level's pass sequence,
    /// executes it over a [`CompileSession`] under the instrumented
    /// [`PassManager`], and packages the result.
    pub fn optimize(&self, program: &Program) -> Optimized {
        let mut session =
            CompileSession::new(program, self.level, self.base_opts.clone(), self.verify);
        if let Some(f) = &self.forbid {
            session.forbid = Some(&**f);
        }
        let mut manager = PassManager::new(pass::build_sequence(
            self.level,
            self.dse,
            self.rce,
            self.rce2,
            self.dimension_contraction,
            self.spatial_cap,
        ));
        if let Some(e) = self.emit {
            manager.set_emit(e);
        }
        let run = manager.run(&mut session);
        session.finish(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopir::{Engine, Executor, NoopObserver};
    use zlang::ir::ConfigBinding;

    const P: &str = "program p; config n : int = 6; region R = [1..n, 1..n]; \
                     direction w = [0, -1]; var A, B, C, D : [R] float; \
                     var s : float; var k : int; ";

    fn opt(src: &str, level: Level) -> Optimized {
        Pipeline::new(level).optimize(&zlang::compile(src).unwrap())
    }

    fn checksum(o: &Optimized) -> f64 {
        let binding = ConfigBinding::defaults(&o.scalarized.program);
        let mut vm = loopir::Vm::new(&o.scalarized, binding).unwrap();
        vm.execute(&mut NoopObserver).unwrap().checksum()
    }

    #[test]
    fn all_levels_agree_semantically() {
        let src = "program p; config n : int = 6; region RH = [0..n, 0..n]; \
             region R = [1..n, 1..n]; direction w = [0, -1]; \
             var A : [RH] float; var B, C : [R] float; var s : float; var k : int; \
             begin \
             [RH] A := index1 * 3.0 + index2; \
             for k := 1 to 3 do \
               [R] B := A@w + 1.0; \
               [R] C := B * B; \
               [R] A := A + C; \
             end; \
             s := +<< [R] A; end"
            .to_string();
        let base = opt(&src, Level::Baseline);
        let expect = checksum(&base);
        assert!(expect != 0.0);
        for level in Level::all() {
            let o = opt(&src, level);
            let got = checksum(&o);
            assert_eq!(got, expect, "level {level} must preserve semantics");
        }
    }

    #[test]
    fn c1_contracts_only_compiler_arrays() {
        // A := A + A (aligned) needs a compiler temp; B is a user temp.
        let src = format!("{P} begin [R] A := A + A; [R] B := A; [R] C := B; s := +<< [R] C; end");
        let c1 = opt(&src, Level::C1);
        assert_eq!(c1.contracted_names(), vec!["_t0"]);
        let c2 = opt(&src, Level::C2);
        assert!(c2.contracted_names().contains(&"B".to_string()));
        assert!(c2.contracted_names().contains(&"_t0".to_string()));
    }

    #[test]
    fn f1_fuses_but_keeps_arrays() {
        let src = format!("{P} begin [R] A := A + A; s := +<< [R] A; end");
        let f1 = opt(&src, Level::F1);
        assert!(f1.contracted.is_empty());
        // Fusion happened: the temp statement and copy share a nest.
        assert!(f1.report.nests < opt(&src, Level::Baseline).report.nests);
    }

    #[test]
    fn report_counts_compiler_and_user_separately() {
        let src = format!("{P} begin [R] A := A + A; [R] B := A; [R] C := B; s := +<< [R] C; end");
        let o = opt(&src, Level::C2);
        assert_eq!(o.report.compiler_before, 1);
        assert_eq!(o.report.user_before, 3); // A, B, C
        assert_eq!(o.report.compiler_after, 0);
        assert!(o.report.percent_change() < 0.0);
    }

    #[test]
    fn baseline_keeps_everything() {
        let src = format!("{P} begin [R] B := A + A; [R] C := B; s := +<< [R] C; end");
        let o = opt(&src, Level::Baseline);
        assert!(o.contracted.is_empty());
        assert_eq!(o.report.before(), o.report.after());
        assert_eq!(o.report.nests, 3);
    }

    #[test]
    fn forbidden_filter_reaches_fusion() {
        let src = format!("{P} begin [R] B := A + A; [R] C := B; s := +<< [R] C; end");
        let o = Pipeline::new(Level::C2)
            .with_forbidden(|_, _, _| vec![(0, 1)])
            .optimize(&zlang::compile(&src).unwrap());
        // B cannot contract because its statements cannot fuse.
        assert!(!o.contracted_names().contains(&"B".to_string()));
    }

    #[test]
    fn levels_are_monotone_in_contraction() {
        let src = format!(
            "{P} begin [R] A := A@w + A@w; [R] B := A; [R] C := B * 2.0; \
             [R] D := C + B; s := +<< [R] D; end"
        );
        let counts: Vec<usize> = [Level::Baseline, Level::F1, Level::C1, Level::C2]
            .iter()
            .map(|&l| opt(&src, l).contracted.len())
            .collect();
        assert!(counts[0] == 0);
        assert!(counts[1] == 0);
        assert!(counts[2] >= 1, "c1 contracts the compiler temp: {counts:?}");
        assert!(counts[3] > counts[2], "c2 adds user arrays: {counts:?}");
    }

    #[test]
    fn contraction_reduces_peak_memory() {
        let src = format!(
            "{P} begin [R] B := A + 1.0; [R] C := B * B; [R] D := C + B; s := +<< [R] D; end"
        );
        let mem = |level| {
            let o = opt(&src, level);
            let binding = ConfigBinding::defaults(&o.scalarized.program);
            let mut exec = Engine::default().executor(&o.scalarized, binding).unwrap();
            exec.execute(&mut NoopObserver).unwrap().stats.peak_bytes
        };
        assert!(mem(Level::C2) < mem(Level::Baseline));
    }
}
