//! Structural hashing of array-level programs — the content address of
//! the compile cache.
//!
//! [`program_hash`] folds a [`Program`]'s entire observable structure —
//! declarations in order, resolved *names* (never raw interner
//! [`Symbol`](zlang::intern::Symbol) values, which are an artifact of
//! interning order), region extents, and the statement tree — into one
//! 64-bit FNV-1a digest. Two programs that compare equal under
//! `Program`'s `PartialEq` hash identically; in particular a
//! pretty-print/re-parse round trip (`zlang::pretty::source` followed by
//! `zlang::compile`) preserves the hash, the same interned-name
//! invariant `NameTable`'s `PartialEq` upholds.
//!
//! [`key_hash`] extends the digest with a concrete [`ConfigBinding`]:
//! the bytecode compiler resolves region bounds and strides at compile
//! time under a specific binding, so a cached compiled artifact is only
//! reusable for the exact binding it was compiled under. Level and
//! engine are kept *out* of the digest — the cache key carries them as
//! explicit fields so collisions between levels are structurally
//! impossible rather than probabilistically unlikely.
//!
//! The digest is exposed for debugging as `zlc --print hash`.

use zlang::ast::{BinOp, ReduceOp, Type, UnOp};
use zlang::ir::{ArrayExpr, ConfigBinding, ConfigId, LinExpr, Program, ScalarExpr, Stmt};

/// A 64-bit FNV-1a accumulator with typed write helpers.
///
/// FNV-1a is not cryptographic; it is a fast, dependency-free mixing
/// function whose 64-bit collision rate is negligible at cache scale,
/// and the cache key pairs the digest with explicit level/engine fields
/// anyway.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv {
    fn default() -> Self {
        Fnv(FNV_OFFSET)
    }
}

impl Fnv {
    /// A fresh accumulator at the FNV offset basis.
    pub fn new() -> Self {
        Fnv::default()
    }

    /// The digest so far.
    pub fn finish(self) -> u64 {
        self.0
    }

    /// Mixes one byte.
    pub fn u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
    }

    /// Mixes eight bytes, little-endian.
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }

    /// Mixes a signed integer.
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// Mixes a length-prefixed string (the prefix keeps `"ab","c"` and
    /// `"a","bc"` distinct).
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.u8(*b);
        }
    }

    /// Mixes a float by its exact bit pattern (so `-0.0` and `0.0`
    /// differ, matching `f64::to_bits` result comparison elsewhere).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

fn lin(h: &mut Fnv, e: &LinExpr) {
    h.i64(e.base);
    h.u64(e.terms.len() as u64);
    for &(ConfigId(id), c) in &e.terms {
        h.u64(id as u64);
        h.i64(c);
    }
}

fn ty(h: &mut Fnv, t: Type) {
    h.u8(match t {
        Type::Float => 0,
        Type::Int => 1,
    });
}

fn unop(h: &mut Fnv, op: UnOp) {
    h.u8(match op {
        UnOp::Neg => 0,
    });
}

fn binop(h: &mut Fnv, op: BinOp) {
    h.u8(match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Lt => 4,
        BinOp::Le => 5,
        BinOp::Gt => 6,
        BinOp::Ge => 7,
        BinOp::Eq => 8,
        BinOp::Ne => 9,
    });
}

fn reduce_op(h: &mut Fnv, op: ReduceOp) {
    h.u8(match op {
        ReduceOp::Sum => 0,
        ReduceOp::Prod => 1,
        ReduceOp::Max => 2,
        ReduceOp::Min => 3,
    });
}

fn array_expr(h: &mut Fnv, e: &ArrayExpr) {
    match e {
        ArrayExpr::Read(a, off) => {
            h.u8(0);
            h.u64(a.0 as u64);
            h.u64(off.0.len() as u64);
            for &d in &off.0 {
                h.i64(d);
            }
        }
        ArrayExpr::ScalarRef(s) => {
            h.u8(1);
            h.u64(s.0 as u64);
        }
        ArrayExpr::ConfigRef(c) => {
            h.u8(2);
            h.u64(c.0 as u64);
        }
        ArrayExpr::Const(v) => {
            h.u8(3);
            h.f64(*v);
        }
        ArrayExpr::Index(d) => {
            h.u8(4);
            h.u8(*d);
        }
        ArrayExpr::Unary(op, e) => {
            h.u8(5);
            unop(h, *op);
            array_expr(h, e);
        }
        ArrayExpr::Binary(op, l, r) => {
            h.u8(6);
            binop(h, *op);
            array_expr(h, l);
            array_expr(h, r);
        }
        ArrayExpr::Call(i, args) => {
            h.u8(7);
            h.str(i.name());
            h.u64(args.len() as u64);
            for a in args {
                array_expr(h, a);
            }
        }
    }
}

/// The structural digest of a single array expression.
///
/// This is the subexpression key the offset-lattice availability analysis
/// ([`crate::avail`]) uses to bucket canonicalized subtrees: two
/// expressions hash equal iff they are structurally identical (same
/// operators, same array ids, same offsets, same constant bit patterns).
pub fn expr_hash(e: &ArrayExpr) -> u64 {
    let mut h = Fnv::new();
    array_expr(&mut h, e);
    h.finish()
}

fn scalar_expr(h: &mut Fnv, e: &ScalarExpr) {
    match e {
        ScalarExpr::Const(v) => {
            h.u8(0);
            h.f64(*v);
        }
        ScalarExpr::ScalarRef(s) => {
            h.u8(1);
            h.u64(s.0 as u64);
        }
        ScalarExpr::ConfigRef(c) => {
            h.u8(2);
            h.u64(c.0 as u64);
        }
        ScalarExpr::Unary(op, e) => {
            h.u8(3);
            unop(h, *op);
            scalar_expr(h, e);
        }
        ScalarExpr::Binary(op, l, r) => {
            h.u8(4);
            binop(h, *op);
            scalar_expr(h, l);
            scalar_expr(h, r);
        }
        ScalarExpr::Call(i, args) => {
            h.u8(5);
            h.str(i.name());
            h.u64(args.len() as u64);
            for a in args {
                scalar_expr(h, a);
            }
        }
    }
}

fn stmts(h: &mut Fnv, body: &[Stmt]) {
    h.u64(body.len() as u64);
    for s in body {
        match s {
            Stmt::Array(a) => {
                h.u8(0);
                h.u64(a.region.0 as u64);
                h.u64(a.lhs.0 as u64);
                array_expr(h, &a.rhs);
            }
            Stmt::Scalar { lhs, rhs } => {
                h.u8(1);
                h.u64(lhs.0 as u64);
                scalar_expr(h, rhs);
            }
            Stmt::Reduce {
                lhs,
                op,
                region,
                arg,
            } => {
                h.u8(2);
                h.u64(lhs.0 as u64);
                reduce_op(h, *op);
                h.u64(region.0 as u64);
                array_expr(h, arg);
            }
            Stmt::For {
                var,
                lo,
                hi,
                down,
                body,
            } => {
                h.u8(3);
                h.u64(var.0 as u64);
                scalar_expr(h, lo);
                scalar_expr(h, hi);
                h.u8(*down as u8);
                stmts(h, body);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                h.u8(4);
                scalar_expr(h, cond);
                stmts(h, then_body);
                stmts(h, else_body);
            }
        }
    }
}

/// The structural digest of a program: declarations (with their resolved
/// names) in declaration order, plus the full statement tree.
///
/// Declaration *indices* are the ids the statement tree references, so
/// hashing declarations in order pins the meaning of every id the tree
/// mentions. Equal programs hash equal; see the module docs for the
/// round-trip invariant.
pub fn program_hash(p: &Program) -> u64 {
    let mut h = Fnv::new();
    h.str(&p.name);

    h.u64(p.configs.len() as u64);
    for c in &p.configs {
        h.str(&c.name);
        ty(&mut h, c.ty);
        h.f64(c.default);
    }

    h.u64(p.regions.len() as u64);
    for r in &p.regions {
        h.str(&r.name);
        h.u64(r.extents.len() as u64);
        for e in &r.extents {
            lin(&mut h, &e.lo);
            lin(&mut h, &e.hi);
        }
    }

    h.u64(p.arrays.len() as u64);
    for a in &p.arrays {
        h.str(&a.name);
        h.u64(a.region.0 as u64);
        h.u8(a.compiler_temp as u8);
        h.u64(a.collapsed.len() as u64);
        for &d in &a.collapsed {
            h.u8(d);
        }
    }

    h.u64(p.scalars.len() as u64);
    for s in &p.scalars {
        h.str(&s.name);
        ty(&mut h, s.ty);
    }

    stmts(&mut h, &p.body);
    h.finish()
}

/// The compile-cache content address: [`program_hash`] extended with the
/// concrete value of every config variable under `binding` (the bytecode
/// compiler bakes region bounds in at compile time, so different
/// bindings are different compiled artifacts).
pub fn key_hash(p: &Program, binding: &ConfigBinding) -> u64 {
    let mut h = Fnv::new();
    h.u64(program_hash(p));
    h.u64(p.configs.len() as u64);
    for i in 0..p.configs.len() {
        h.i64(binding.get(ConfigId(i as u32)));
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "program t; config n : int = 8; region R = [1..n]; \
        var A, B : [R] float; var s : float; \
        begin [R] A := 2.0; [R] B := A@[1] + 1.5; s := +<< [R] B; end";

    #[test]
    fn equal_programs_hash_equal() {
        let a = zlang::compile(SRC).unwrap();
        let b = zlang::compile(SRC).unwrap();
        assert_eq!(program_hash(&a), program_hash(&b));
    }

    #[test]
    fn print_reparse_round_trip_preserves_hash() {
        let p = zlang::compile(SRC).unwrap();
        let reparsed = zlang::compile(&zlang::pretty::source(&p)).unwrap();
        assert_eq!(p, reparsed, "round trip must preserve the program");
        assert_eq!(program_hash(&p), program_hash(&reparsed));
    }

    #[test]
    fn structural_changes_change_the_hash() {
        let base = program_hash(&zlang::compile(SRC).unwrap());
        for variant in [
            SRC.replace("2.0", "3.0"),
            SRC.replace("+<<", "max<<"),
            SRC.replace("A@[1]", "A"),
            SRC.replace("n : int = 8", "n : int = 9"),
            SRC.replace("var s : float", "var s, z : float"),
        ] {
            let h = program_hash(&zlang::compile(&variant).unwrap());
            assert_ne!(h, base, "variant {variant:?} must hash differently");
        }
    }

    #[test]
    fn key_hash_distinguishes_bindings() {
        let p = zlang::compile(SRC).unwrap();
        let d = ConfigBinding::defaults(&p);
        let mut big = d.clone();
        big.set_by_name(&p, "n", 64);
        assert_eq!(key_hash(&p, &d), key_hash(&p, &d));
        assert_ne!(key_hash(&p, &d), key_hash(&p, &big));
    }

    #[test]
    fn zero_sign_matters() {
        let a = zlang::compile(SRC).unwrap();
        let b = zlang::compile(&SRC.replace("2.0", "-0.0")).unwrap();
        let c = zlang::compile(&SRC.replace("2.0", "0.0")).unwrap();
        assert_ne!(program_hash(&b), program_hash(&c));
        assert_ne!(program_hash(&a), program_hash(&c));
    }
}
