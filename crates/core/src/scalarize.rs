//! Scalarization (Section 4.2 of the paper).
//!
//! Generates one loop nest per fusible cluster; loop nests are ordered by a
//! topological sort of inter-cluster dependences and statements within a
//! nest by intra-cluster dependences (program order, which is always
//! consistent). Each nest's loop structure comes from
//! `FIND-LOOP-STRUCTURE`; contracted array definitions are demoted to
//! loop-local scalars.

use crate::asdg::DefId;
use crate::fusion::{FusionCtx, Partition};
use crate::normal::BStmt;
use loopir::{EExpr, ElemRef, ElemStmt, LStmt, LoopNest, TempId};
use std::collections::{BTreeMap, HashMap, HashSet};
use zlang::ast::ReduceOp;
use zlang::ir::{ArrayExpr, ArrayId, Offset, ScalarExpr};

/// Converts an element-wise array expression into a loop-body expression,
/// demoting reads of contracted definitions to temps via `read_map`.
fn lower_expr(
    e: &ArrayExpr,
    read_map: &HashMap<ArrayId, DefId>,
    temp_of: &HashMap<DefId, TempId>,
) -> EExpr {
    match e {
        ArrayExpr::Read(a, off) => {
            let def = read_map.get(a).copied();
            match def.and_then(|d| temp_of.get(&d)) {
                Some(&t) => {
                    debug_assert!(
                        off.is_zero(),
                        "contracted reads must be aligned (null UDV guarantees this)"
                    );
                    EExpr::Temp(t)
                }
                None => EExpr::Load(*a, off.clone()),
            }
        }
        ArrayExpr::ScalarRef(s) => EExpr::ScalarRef(*s),
        ArrayExpr::ConfigRef(c) => EExpr::ConfigRef(*c),
        ArrayExpr::Const(v) => EExpr::Const(*v),
        ArrayExpr::Index(d) => EExpr::Index(*d),
        ArrayExpr::Unary(op, inner) => {
            EExpr::Unary(*op, Box::new(lower_expr(inner, read_map, temp_of)))
        }
        ArrayExpr::Binary(op, l, r) => EExpr::Binary(
            *op,
            Box::new(lower_expr(l, read_map, temp_of)),
            Box::new(lower_expr(r, read_map, temp_of)),
        ),
        ArrayExpr::Call(i, args) => EExpr::Call(
            *i,
            args.iter()
                .map(|a| lower_expr(a, read_map, temp_of))
                .collect(),
        ),
    }
}

/// The identity element of a reduction operator.
pub fn reduce_identity(op: ReduceOp) -> f64 {
    match op {
        ReduceOp::Sum => 0.0,
        ReduceOp::Prod => 1.0,
        ReduceOp::Max => f64::NEG_INFINITY,
        ReduceOp::Min => f64::INFINITY,
    }
}

/// Kahn's algorithm with a smallest-first tie break over arbitrary keyed
/// nodes; `edges` are (from, to) pairs over `0..n`.
fn kahn(n: usize, edges: &[(usize, usize)], key: impl Fn(usize) -> usize) -> Vec<usize> {
    let mut indegree = vec![0usize; n];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut seen = HashSet::new();
    for &(a, b) in edges {
        if a != b && seen.insert((a, b)) {
            succ[a].push(b);
            indegree[b] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    while !ready.is_empty() {
        let (pick, _) = ready
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| key(i))
            .expect("invariant: loop guard ensures `ready` is nonempty here");
        let i = ready.swap_remove(pick);
        out.push(i);
        for &j in &succ[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.push(j);
            }
        }
    }
    assert_eq!(out.len(), n, "dependence graph must be acyclic");
    out
}

/// Topologically orders clusters as *nodes*, where each partial-fusion
/// group is contracted into one super-node (legal because `GROW` guarantees
/// no dependence path leaves and re-enters a group). Returns one entry per
/// node: the node's clusters in a valid internal topological order.
fn topo_nodes(
    ctx: &FusionCtx<'_>,
    part: &Partition,
    groups: &[crate::ext::PartialGroup],
) -> Vec<Vec<usize>> {
    let live = part.live_clusters();
    // Node assignment: group members share a node.
    let mut node_of: HashMap<usize, usize> = HashMap::new();
    let mut nodes: Vec<Vec<usize>> = Vec::new();
    for g in groups {
        let id = nodes.len();
        let mut members: Vec<usize> = g.clusters.iter().copied().collect();
        // Internal topological order among members.
        let member_pos: HashMap<usize, usize> =
            members.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let mut inner_edges = Vec::new();
        for e in &ctx.asdg.edges {
            let (a, b) = (part.cluster_of(e.src), part.cluster_of(e.dst));
            if let (Some(&pa), Some(&pb)) = (member_pos.get(&a), member_pos.get(&b)) {
                if pa != pb {
                    inner_edges.push((pa, pb));
                }
            }
        }
        let order = kahn(members.len(), &inner_edges, |i| part.cluster(members[i])[0]);
        members = order.into_iter().map(|i| members[i]).collect();
        for &c in &members {
            node_of.insert(c, id);
        }
        nodes.push(members);
    }
    for &c in &live {
        if let std::collections::hash_map::Entry::Vacant(e) = node_of.entry(c) {
            e.insert(nodes.len());
            nodes.push(vec![c]);
        }
    }
    // Node-level edges.
    let mut edges = Vec::new();
    for e in &ctx.asdg.edges {
        let (a, b) = (
            node_of[&part.cluster_of(e.src)],
            node_of[&part.cluster_of(e.dst)],
        );
        if a != b {
            edges.push((a, b));
        }
    }
    let order = kahn(nodes.len(), &edges, |i| part.cluster(nodes[i][0])[0]);
    order.into_iter().map(|i| nodes[i].clone()).collect()
}

/// Lowers one fusible cluster to a loop nest, returning the reduction
/// identity initializations (to emit before the nest) and the nest itself.
/// `structure_override` replaces the cluster's own loop structure (used by
/// dimension contraction's partial fusion, where the inner nest iterates a
/// subset of the dimensions).
pub fn lower_cluster(
    ctx: &FusionCtx<'_>,
    part: &Partition,
    contracted: &HashSet<DefId>,
    cluster: usize,
    structure_override: Option<Vec<i8>>,
) -> (Vec<LStmt>, LoopNest) {
    let stmts = part.cluster(cluster);
    let structure = structure_override.unwrap_or_else(|| ctx.cluster_structure(part, cluster));
    let region = ctx.block.stmts[stmts[0]]
        .region()
        .expect("invariant: fusion only clusters array statements, which always carry a region");
    // Assign temps to contracted definitions referenced in this cluster.
    let mut temp_of: HashMap<DefId, TempId> = HashMap::new();
    for &s in stmts {
        if let Some(d) = ctx.asdg.write_def[s] {
            if contracted.contains(&d) {
                let next = TempId(temp_of.len() as u32);
                temp_of.entry(d).or_insert(next);
            }
        }
    }
    let mut body = Vec::new();
    let mut inits = Vec::new();
    for &s in stmts {
        let read_map: HashMap<ArrayId, DefId> = ctx.asdg.read_defs[s]
            .iter()
            .map(|&(a, _, d)| (a, d))
            .collect();
        match &ctx.block.stmts[s] {
            BStmt::Array(ast) => {
                let rhs = lower_expr(&ast.rhs, &read_map, &temp_of);
                let target = match ctx.asdg.write_def[s].and_then(|d| temp_of.get(&d)) {
                    Some(&t) => ElemRef::Temp(t),
                    None => {
                        let rank = ctx.program.region(ast.region).rank();
                        ElemRef::Array(ast.lhs, Offset::zero(rank))
                    }
                };
                body.push(ElemStmt { target, rhs });
            }
            BStmt::Reduce { lhs, op, arg, .. } => {
                inits.push(LStmt::Scalar {
                    lhs: *lhs,
                    rhs: ScalarExpr::Const(reduce_identity(*op)),
                });
                body.push(ElemStmt {
                    target: ElemRef::Reduce(*lhs, *op),
                    rhs: lower_expr(arg, &read_map, &temp_of),
                });
            }
            BStmt::Scalar { .. } => unreachable!("scalar statements are singleton clusters"),
        }
    }
    (
        inits,
        LoopNest {
            region,
            structure,
            body,
            cluster,
            temps: temp_of.len() as u32,
        },
    )
}

/// Scalarizes one basic block given its final fusion partition and the set
/// of contracted definitions.
pub fn scalarize_block(
    ctx: &FusionCtx<'_>,
    part: &Partition,
    contracted: &HashSet<DefId>,
) -> Vec<LStmt> {
    scalarize_block_grouped(ctx, part, contracted, &[])
}

/// Runs `FIND-LOOP-STRUCTURE` for every cluster that will be lowered as
/// its own loop nest, keyed by cluster id.
///
/// Partial-fusion group members are skipped (their inner structures come
/// from [`crate::ext::PartialGroup::inner`]), as are lone scalar
/// statements (which lower without loops). The result feeds
/// [`scalarize_block_with_structures`], letting the pass manager schedule
/// structure selection and lowering as separate passes.
pub fn cluster_structures(
    ctx: &FusionCtx<'_>,
    part: &Partition,
    groups: &[crate::ext::PartialGroup],
) -> BTreeMap<usize, Vec<i8>> {
    let mut out = BTreeMap::new();
    for c in part.live_clusters() {
        if groups.iter().any(|g| g.clusters.contains(&c)) {
            continue;
        }
        let stmts = part.cluster(c);
        if stmts.len() == 1 && matches!(ctx.block.stmts[stmts[0]], BStmt::Scalar { .. }) {
            continue;
        }
        out.insert(c, ctx.cluster_structure(part, c));
    }
    out
}

/// Scalarizes a block with partial-fusion groups: each group's clusters
/// share one outer loop ([`LStmt::Outer`]) over the group's dimension,
/// enabling dimension contraction of the arrays flowing between them.
pub fn scalarize_block_grouped(
    ctx: &FusionCtx<'_>,
    part: &Partition,
    contracted: &HashSet<DefId>,
    groups: &[crate::ext::PartialGroup],
) -> Vec<LStmt> {
    scalarize_block_with_structures(ctx, part, contracted, groups, None)
}

/// Like [`scalarize_block_grouped`], but taking precomputed per-cluster
/// loop structures (from [`cluster_structures`]) instead of invoking
/// `FIND-LOOP-STRUCTURE` during lowering. Clusters absent from the map
/// fall back to computing their structure on the spot.
pub fn scalarize_block_with_structures(
    ctx: &FusionCtx<'_>,
    part: &Partition,
    contracted: &HashSet<DefId>,
    groups: &[crate::ext::PartialGroup],
    structures: Option<&BTreeMap<usize, Vec<i8>>>,
) -> Vec<LStmt> {
    let group_of = |cluster: usize| groups.iter().position(|g| g.clusters.contains(&cluster));
    let mut out = Vec::new();
    for node in topo_nodes(ctx, part, groups) {
        // Lone scalar statement.
        if node.len() == 1 {
            let stmts = part.cluster(node[0]);
            if stmts.len() == 1 {
                if let BStmt::Scalar { lhs, rhs } = &ctx.block.stmts[stmts[0]] {
                    out.push(LStmt::Scalar {
                        lhs: *lhs,
                        rhs: rhs.clone(),
                    });
                    continue;
                }
            }
        }
        match group_of(node[0]) {
            None => {
                debug_assert_eq!(node.len(), 1);
                let known = structures.and_then(|m| m.get(&node[0]).cloned());
                let (inits, nest) = lower_cluster(ctx, part, contracted, node[0], known);
                out.extend(inits);
                out.push(LStmt::Nest(nest));
            }
            Some(gi) => {
                let g = &groups[gi];
                let mut body = Vec::new();
                let mut region = None;
                for &c in &node {
                    let inner = g.inner.get(&c).cloned();
                    let (inits, nest) = lower_cluster(ctx, part, contracted, c, inner);
                    region = Some(nest.region);
                    out.extend(inits); // identities initialize before the outer loop
                    body.push(LStmt::Nest(nest));
                }
                out.push(LStmt::Outer {
                    region: region.expect("invariant: find_groups never produces an empty group"),
                    dim: g.dim,
                    reverse: g.reverse,
                    body,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asdg::build;
    use crate::normal::normalize;
    use crate::weights::sort_by_weight;
    use loopir::{Engine, NoopObserver, ScalarProgram};
    use zlang::ir::ConfigBinding;

    const P: &str = "program p; config n : int = 6; region R = [1..n, 1..n]; \
                     direction w = [0, -1]; var A, B, C : [R] float; var s : float; ";

    /// Full mini-pipeline for a single-block program.
    fn compile_block(src: &str, fuse: bool) -> (ScalarProgram, usize) {
        let np = normalize(&zlang::compile(src).unwrap());
        let asdg = build(&np.program, &np.blocks[0]);
        let ctx = FusionCtx::new(&np.program, &np.blocks[0], &asdg);
        let mut part = Partition::trivial(asdg.n);
        let mut contracted = HashSet::new();
        if fuse {
            let cand_arrays = crate::normal::contraction_candidates(&np);
            let mut defs = Vec::new();
            for (i, c) in cand_arrays.iter().enumerate() {
                if c.is_some() {
                    defs.extend(asdg.defs_of(zlang::ir::ArrayId(i as u32)));
                }
            }
            let defs = sort_by_weight(
                &np.program,
                &np.blocks[0],
                &asdg,
                defs,
                &np.default_binding(),
            );
            ctx.fusion_for_contraction(&mut part, &defs);
            contracted = ctx.contracted_defs(&part, &defs).into_iter().collect();
        }
        let stmts = scalarize_block(&ctx, &part, &contracted);
        let ncontracted = contracted.len();
        (
            ScalarProgram {
                program: np.program.clone(),
                stmts,
            },
            ncontracted,
        )
    }

    #[test]
    fn baseline_and_fused_agree() {
        let src = format!("{P} begin [R] B := A + 1.0; [R] C := B * B; s := +<< [R] C; end");
        let (base, n0) = compile_block(&src, false);
        let (fused, n1) = compile_block(&src, true);
        assert_eq!(n0, 0);
        assert!(n1 >= 1);
        let run = |sp: &ScalarProgram| {
            let mut exec = Engine::default()
                .executor(sp, ConfigBinding::defaults(&sp.program))
                .unwrap();
            exec.execute(&mut NoopObserver).unwrap().checksum()
        };
        let (a, b) = (run(&base), run(&fused));
        assert_eq!(a, b);
        assert_eq!(a, 36.0); // (0+1)^2 * 36 elements
    }

    #[test]
    fn contraction_eliminates_allocation() {
        let src = format!("{P} begin [R] B := A + 1.0; [R] C := B * B; s := +<< [R] C; end");
        let (base, _) = compile_block(&src, false);
        let (fused, _) = compile_block(&src, true);
        assert_eq!(base.live_arrays().len(), 3);
        // B and C contract; only A remains.
        assert_eq!(fused.live_arrays().len(), 1);
    }

    #[test]
    fn reduction_identity_initialization_emitted() {
        let src = format!("{P} begin [R] B := A + 1.0; s := max<< [R] B; end");
        let (fused, _) = compile_block(&src, true);
        // Expect: scalar init to -inf, then one nest.
        assert!(matches!(
            &fused.stmts[0],
            LStmt::Scalar { rhs: ScalarExpr::Const(v), .. } if *v == f64::NEG_INFINITY
        ));
        assert_eq!(fused.nest_count(), 1);
        let mut exec = Engine::default()
            .executor(&fused, ConfigBinding::defaults(&fused.program))
            .unwrap();
        assert_eq!(exec.execute(&mut NoopObserver).unwrap().checksum(), 1.0);
    }

    #[test]
    fn self_update_via_compiler_temp_is_correct() {
        // Fragment (5): A := A@w + 1 — the temp is inserted and contracted;
        // semantics must match the unfused version. Fusing T:=A@w+1; A:=T
        // carries an anti dependence on A (u=(0,-1)) -> loop over dim 2
        // reversed. Every element must read the OLD value of A.
        let src =
            "program p; config n : int = 6; region RH = [0..n, 0..n]; region R = [1..n, 1..n]; \
             var A : [RH] float; var s : float; begin \
             [RH] A := index2; [R] A := A@[0,-1] + 100.0; s := +<< [R] A; end"
                .to_string();
        let (base, n0) = compile_block(&src, false);
        let (fused, n1) = compile_block(&src, true);
        assert_eq!(n0, 0);
        // Both the compiler temp and A's final (reduce-only) definition
        // contract; A's array stays allocated for its first definition.
        assert_eq!(n1, 2);
        let run = |sp: &ScalarProgram| {
            let mut exec = Engine::default()
                .executor(sp, ConfigBinding::defaults(&sp.program))
                .unwrap();
            exec.execute(&mut NoopObserver).unwrap().checksum()
        };
        assert_eq!(run(&base), run(&fused));
        // Old values of A are index2 - 1 per element, plus 100.
        // Sum over [1..6]x[1..6]: sum(j-1 for j in 1..=6)*6 + 100*36
        assert_eq!(run(&base), (1 + 2 + 3 + 4 + 5) as f64 * 6.0 + 3600.0);
        // Baseline allocates A and the temp; fused allocates only A.
        assert_eq!(base.live_arrays().len(), 2);
        assert_eq!(fused.live_arrays().len(), 1);
    }

    #[test]
    fn clusters_topologically_ordered_with_interleaving() {
        // Build: 0: B := A; 1: C := B@w (separate cluster; depends on 0);
        // 2: A2... a case where min-index ordering would be wrong is hard
        // to trigger through fusion-for-contraction alone; directly verify
        // topo order output respects all inter-cluster edges.
        // B needs a halo for the B@w read; A and C stay on R.
        let src = "program p; config n : int = 6; region RH = [0..n, 0..n]; \
             region R = [1..n, 1..n]; direction w = [0, -1]; \
             var B : [RH] float; var A, C : [R] float; var s : float; \
             begin [RH] B := 2.0; [R] C := B@w; [R] A := B + C; s := +<< [R] A; end"
            .to_string();
        let (sp, _) = compile_block(&src, true);
        // Execute — interpreter would produce wrong results or OOB if
        // ordering was broken; also compare against unfused.
        let run = |sp: &ScalarProgram| {
            let mut exec = Engine::default()
                .executor(sp, ConfigBinding::defaults(&sp.program))
                .unwrap();
            exec.execute(&mut NoopObserver).unwrap().checksum()
        };
        let (base, _) = compile_block(&src, false);
        assert_eq!(run(&sp), run(&base));
    }
}
