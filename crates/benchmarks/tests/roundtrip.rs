//! The pretty-printer round-trips every benchmark source: printing the
//! compiled IR and recompiling it yields a structurally identical program.

#[test]
fn all_benchmark_sources_roundtrip() {
    for bench in benchmarks::all() {
        let p1 = bench.program();
        let printed = zlang::pretty::source(&p1);
        let p2 = zlang::compile(&printed)
            .unwrap_or_else(|e| panic!("{}: printed source does not compile: {e}", bench.name));
        assert_eq!(p1, p2, "{}: round trip changed the program", bench.name);
    }
}

#[test]
fn benchmark_statement_counts_are_nontrivial() {
    // Guard against accidental truncation of the embedded sources.
    for bench in benchmarks::all() {
        let counts = bench.program().stmt_counts();
        assert!(
            counts.array >= 10,
            "{}: only {} array statements",
            bench.name,
            counts.array
        );
        assert!(
            counts.reduce >= 1,
            "{}: needs a checksum reduction",
            bench.name
        );
    }
}

#[test]
fn sp_is_the_largest_benchmark() {
    // SP is the paper's biggest application (181 arrays); ours must at
    // least lead the suite.
    let sizes: Vec<(String, usize)> = benchmarks::all()
        .iter()
        .map(|b| (b.name.to_string(), b.program().arrays.len()))
        .collect();
    let sp = sizes.iter().find(|(n, _)| n == "sp").unwrap().1;
    for (name, count) in &sizes {
        assert!(
            sp >= *count,
            "sp ({sp}) must be the largest, {name} has {count}"
        );
    }
    assert!(sp >= 60, "sp has {sp} arrays");
}
