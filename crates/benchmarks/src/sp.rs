//! NAS SP: a scalar-pentadiagonal CFD solver (scaled down).
//!
//! The structure mirrors NAS SP's phases per time step:
//!
//! 1. **auxiliaries** — pointwise fields (`RHOI`, `US`, `VS`, `WS`, `QS`,
//!    `SQUARE`, `SPEED`, `P`) computed over the halo so the flux stencils
//!    can read them at offsets (they survive contraction, like SP's `us`,
//!    `vs`, `square` arrays);
//! 2. **compute_rhs** — convective flux divergences and second-difference
//!    dissipation per direction and equation (30 temporaries, all
//!    contractible), assembled with the persistent forcing into the five
//!    right-hand sides;
//! 3. **txinvr** — the block-diagonal premultiply, a chain of pointwise
//!    temporaries (contractible);
//! 4. **x/y/z solves** — directional sweeps whose stage arrays are read at
//!    offsets (they survive as full arrays under plain `c2`, and are
//!    exactly the class the dimension-contraction extension collapses);
//! 5. **add** — the state update (five compiler temporaries appear and
//!    contract).
//!
//! SP is the paper's one benchmark where contraction to *scalars* is
//! insufficient (Section 5.2); the `dimension-contraction` ablation bench
//! targets its sweep stages.

use crate::{Benchmark, PaperData};

/// `zlang` source of SP.
pub const SOURCE: &str = r#"
program sp;

config n     : int = 12;     -- interior grid points per dimension
config steps : int = 2;      -- time steps
config dt    : float = 0.004;
config eps   : float = 0.05; -- artificial dissipation
config c1    : float = 1.4;  -- gamma
config c2    : float = 0.4;  -- gamma - 1

region GH = [0..n+1, 0..n+1, 0..n+1];
region G  = [1..n, 1..n, 1..n];

direction xm = [-1, 0, 0];
direction xp = [ 1, 0, 0];
direction ym = [ 0,-1, 0];
direction yp = [ 0, 1, 0];
direction zm = [ 0, 0,-1];
direction zp = [ 0, 0, 1];

-- Conserved state (persistent).
var RHO, UX, UY, UZ, EN : [GH] float;
-- Forcing terms (persistent; computed once like SP's exact_rhs).
var FR1, FR2, FR3, FR4, FR5 : [GH] float;
-- Pointwise auxiliaries (read at offsets by the fluxes: survive).
var RHOI, US, VS, WS, QS, SQUARE, SPEED, P : [GH] float;
-- Convective flux divergences per equation and direction (contract).
var F1X, F1Y, F1Z : [G] float;
var F2X, F2Y, F2Z : [G] float;
var F3X, F3Y, F3Z : [G] float;
var F4X, F4Y, F4Z : [G] float;
var F5X, F5Y, F5Z : [G] float;
-- Second-difference dissipation per equation and direction (contract).
var D1X, D1Y, D1Z : [G] float;
var D2X, D2Y, D2Z : [G] float;
var D3X, D3Y, D3Z : [G] float;
var D4X, D4Y, D4Z : [G] float;
var D5X, D5Y, D5Z : [G] float;
-- Right-hand sides (survive: consumed at offsets by the sweeps).
var R1, R2, R3, R4, R5 : [GH] float;
-- txinvr-style premultiplied rhs (chains of pointwise temps).
var AC2, RUV : [G] float;                  -- contract
var T1, T2, T3, T4, T5 : [GH] float;       -- survive (read at offsets below)
-- Sweep stages standing in for the x/y/z pentadiagonal solves.
var S1, S2, S3, S4, S5      : [GH] float;  -- after x sweep (survive)
var S1b, S2b, S3b, S4b, S5b : [GH] float;  -- after y sweep (survive)
var S1c, S2c, S3c, S4c, S5c : [G]  float;  -- after z sweep (contract)

var mass, energy, momx, momy, momz : float;
var k : int;

begin
  [GH] RHO := 1.0 + 0.02 * sin(index1 * 0.5) * sin(index2 * 0.5) * sin(index3 * 0.5);
  [GH] UX  := 0.05 * sin(index2 * 0.4);
  [GH] UY  := 0.05 * sin(index3 * 0.4);
  [GH] UZ  := 0.05 * sin(index1 * 0.4);
  [GH] EN  := 2.5;

  -- Steady forcing, like SP's exact_rhs (computed once, used every step).
  [GH] FR1 := 0.001 * sin(index1 * 0.3);
  [GH] FR2 := 0.001 * cos(index2 * 0.3);
  [GH] FR3 := 0.001 * sin(index3 * 0.3);
  [GH] FR4 := 0.001 * cos(index1 * 0.3 + index2 * 0.3);
  [GH] FR5 := 0.001 * sin(index2 * 0.3 + index3 * 0.3);

  for k := 1 to steps do
    -- Pointwise auxiliaries over the halo ring (SP's compute_rhs prologue).
    [GH] RHOI   := 1.0 / max(RHO, 1e-6);
    [GH] US     := UX * RHOI * RHO;     -- = UX, kept in SP's style
    [GH] VS     := UY * RHOI * RHO;
    [GH] WS     := UZ * RHOI * RHO;
    [GH] QS     := (US * US + VS * VS + WS * WS) * 0.5;
    [GH] SQUARE := QS * RHO;
    [GH] P      := c2 * (EN - SQUARE);
    [GH] SPEED  := sqrt(c1 * P * RHOI);

    -- Convective fluxes: mass.
    [G] F1X := (RHO@xp * US@xp - RHO@xm * US@xm) * 0.5;
    [G] F1Y := (RHO@yp * VS@yp - RHO@ym * VS@ym) * 0.5;
    [G] F1Z := (RHO@zp * WS@zp - RHO@zm * WS@zm) * 0.5;

    -- Momentum (with pressure on the diagonal direction).
    [G] F2X := (RHO@xp * US@xp * US@xp + P@xp - RHO@xm * US@xm * US@xm - P@xm) * 0.5;
    [G] F2Y := (RHO@yp * US@yp * VS@yp - RHO@ym * US@ym * VS@ym) * 0.5;
    [G] F2Z := (RHO@zp * US@zp * WS@zp - RHO@zm * US@zm * WS@zm) * 0.5;

    [G] F3X := (RHO@xp * VS@xp * US@xp - RHO@xm * VS@xm * US@xm) * 0.5;
    [G] F3Y := (RHO@yp * VS@yp * VS@yp + P@yp - RHO@ym * VS@ym * VS@ym - P@ym) * 0.5;
    [G] F3Z := (RHO@zp * VS@zp * WS@zp - RHO@zm * VS@zm * WS@zm) * 0.5;

    [G] F4X := (RHO@xp * WS@xp * US@xp - RHO@xm * WS@xm * US@xm) * 0.5;
    [G] F4Y := (RHO@yp * WS@yp * VS@yp - RHO@ym * WS@ym * VS@ym) * 0.5;
    [G] F4Z := (RHO@zp * WS@zp * WS@zp + P@zp - RHO@zm * WS@zm * WS@zm - P@zm) * 0.5;

    -- Energy.
    [G] F5X := ((EN@xp + P@xp) * US@xp - (EN@xm + P@xm) * US@xm) * 0.5;
    [G] F5Y := ((EN@yp + P@yp) * VS@yp - (EN@ym + P@ym) * VS@ym) * 0.5;
    [G] F5Z := ((EN@zp + P@zp) * WS@zp - (EN@zm + P@zm) * WS@zm) * 0.5;

    -- Per-direction second-difference dissipation.
    [G] D1X := RHO@xp - 2.0 * RHO + RHO@xm;
    [G] D1Y := RHO@yp - 2.0 * RHO + RHO@ym;
    [G] D1Z := RHO@zp - 2.0 * RHO + RHO@zm;
    [G] D2X := UX@xp - 2.0 * UX + UX@xm;
    [G] D2Y := UX@yp - 2.0 * UX + UX@ym;
    [G] D2Z := UX@zp - 2.0 * UX + UX@zm;
    [G] D3X := UY@xp - 2.0 * UY + UY@xm;
    [G] D3Y := UY@yp - 2.0 * UY + UY@ym;
    [G] D3Z := UY@zp - 2.0 * UY + UY@zm;
    [G] D4X := UZ@xp - 2.0 * UZ + UZ@xm;
    [G] D4Y := UZ@yp - 2.0 * UZ + UZ@ym;
    [G] D4Z := UZ@zp - 2.0 * UZ + UZ@zm;
    [G] D5X := EN@xp - 2.0 * EN + EN@xm;
    [G] D5Y := EN@yp - 2.0 * EN + EN@ym;
    [G] D5Z := EN@zp - 2.0 * EN + EN@zm;

    -- Assemble right-hand sides with forcing.
    [G] R1 := F1X + F1Y + F1Z - eps * (D1X + D1Y + D1Z) - FR1;
    [G] R2 := F2X + F2Y + F2Z - eps * (D2X + D2Y + D2Z) - FR2;
    [G] R3 := F3X + F3Y + F3Z - eps * (D3X + D3Y + D3Z) - FR3;
    [G] R4 := F4X + F4Y + F4Z - eps * (D4X + D4Y + D4Z) - FR4;
    [G] R5 := F5X + F5Y + F5Z - eps * (D5X + D5Y + D5Z) - FR5;

    -- txinvr: block-diagonal premultiply (pointwise chains).
    [G] AC2 := max(SPEED * SPEED, 1e-6);
    [G] RUV := RHOI * (US * R2 + VS * R3 + WS * R4);
    [G] T1 := R1 - (QS * R1 - RUV * RHO + 0.0) * c2 / AC2 * 0.5;
    [G] T2 := RHOI * R2 - US * RHOI * R1;
    [G] T3 := RHOI * R3 - VS * RHOI * R1;
    [G] T4 := RHOI * R4 - WS * RHOI * R1;
    [G] T5 := c2 / AC2 * (QS * R1 - RUV * RHO + R5);

    -- Directional implicit-solve surrogates: x, then y, then z sweeps.
    [G] S1 := (T1@xm + 2.0 * T1 + T1@xp) * 0.25;
    [G] S2 := (T2@xm + 2.0 * T2 + T2@xp) * 0.25;
    [G] S3 := (T3@xm + 2.0 * T3 + T3@xp) * 0.25;
    [G] S4 := (T4@xm + 2.0 * T4 + T4@xp) * 0.25;
    [G] S5 := (T5@xm + 2.0 * T5 + T5@xp) * 0.25;

    [G] S1b := (S1@ym + 2.0 * S1 + S1@yp) * 0.25;
    [G] S2b := (S2@ym + 2.0 * S2 + S2@yp) * 0.25;
    [G] S3b := (S3@ym + 2.0 * S3 + S3@yp) * 0.25;
    [G] S4b := (S4@ym + 2.0 * S4 + S4@yp) * 0.25;
    [G] S5b := (S5@ym + 2.0 * S5 + S5@yp) * 0.25;

    [G] S1c := (S1b@zm + 2.0 * S1b + S1b@zp) * 0.25;
    [G] S2c := (S2b@zm + 2.0 * S2b + S2b@zp) * 0.25;
    [G] S3c := (S3b@zm + 2.0 * S3b + S3b@zp) * 0.25;
    [G] S4c := (S4b@zm + 2.0 * S4b + S4b@zp) * 0.25;
    [G] S5c := (S5b@zm + 2.0 * S5b + S5b@zp) * 0.25;

    -- add: state update (compiler temporaries appear here).
    [G] RHO := max(RHO - dt * S1c, 1e-6);
    [G] UX  := UX - dt * S2c;
    [G] UY  := UY - dt * S3c;
    [G] UZ  := UZ - dt * S4c;
    [G] EN  := max(EN - dt * S5c, 1e-6);
  end;

  mass   := +<< [G] RHO;
  energy := +<< [G] EN;
  momx   := +<< [G] RHO * UX;
  momy   := +<< [G] RHO * UY;
  momz   := +<< [G] RHO * UZ;
end
"#;

/// The SP benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "sp",
        description: "NAS SP: scalar pentadiagonal CFD solver (scaled down)",
        source: SOURCE,
        size_config: "n",
        iters_config: Some("steps"),
        rank: 3,
        paper: PaperData {
            static_compiler: 18,
            static_user: 163,
            static_after: 56,
            scalar_equivalent: Some(48),
            live_before: 23,
            live_after: 17,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::pipeline::{Level, Pipeline};
    use loopir::{Engine, NoopObserver};
    use zlang::ir::ConfigBinding;

    fn run_level(level: Level, n: i64) -> (f64, f64, f64, usize) {
        let p = zlang::compile(SOURCE).unwrap();
        let opt = Pipeline::new(level).optimize(&p);
        let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
        binding.set_by_name(&opt.scalarized.program, "n", n);
        let mut exec = Engine::default()
            .executor(&opt.scalarized, binding)
            .unwrap();
        let out = exec.execute(&mut NoopObserver).unwrap();
        let prog = &opt.scalarized.program;
        (
            out.scalar(prog.scalar_by_name("mass").unwrap()),
            out.scalar(prog.scalar_by_name("energy").unwrap()),
            out.scalar(prog.scalar_by_name("momx").unwrap()),
            opt.scalarized.live_arrays().len(),
        )
    }

    #[test]
    fn all_levels_agree() {
        let expect = run_level(Level::Baseline, 6);
        assert!(expect.0.is_finite() && expect.0 > 0.0);
        for level in Level::all() {
            let got = run_level(level, 6);
            assert_eq!(
                (got.0, got.1, got.2),
                (expect.0, expect.1, expect.2),
                "level {level}"
            );
        }
    }

    #[test]
    fn five_compiler_temps_from_state_updates() {
        let p = zlang::compile(SOURCE).unwrap();
        let base = Pipeline::new(Level::Baseline).optimize(&p);
        assert_eq!(base.report.compiler_before, 5);
        let c1 = Pipeline::new(Level::C1).optimize(&p);
        assert_eq!(c1.report.compiler_after, 0);
    }

    #[test]
    fn fluxes_and_final_sweep_contract_stages_survive() {
        let p = zlang::compile(SOURCE).unwrap();
        let c2 = Pipeline::new(Level::C2).optimize(&p);
        let names = c2.contracted_names();
        // The rhs assembly chains into the pointwise txinvr phase, so the
        // R arrays contract as well — only the offset-read arrays survive.
        for expect in [
            "F1X", "F3Y", "F5Z", "D1X", "D5Z", "S1c", "S5c", "AC2", "RUV", "R1", "R5", "SQUARE",
        ] {
            assert!(
                names.iter().any(|n| n == expect),
                "{expect} should contract: {names:?}"
            );
        }
        let live: Vec<String> = c2
            .scalarized
            .live_arrays()
            .iter()
            .map(|&a| c2.norm.program.array(a).name.clone())
            .collect();
        for expect in ["RHO", "EN", "P", "US", "QS", "T1", "S1", "S1b", "FR1"] {
            assert!(
                live.iter().any(|n| n == expect),
                "{expect} must survive: {live:?}"
            );
        }
    }

    #[test]
    fn contraction_ratio_matches_paper_shape() {
        // The paper: 181 -> 56 static arrays (-69%). We are smaller but the
        // reduction should be of the same order (half or more).
        let (_, _, _, base) = run_level(Level::Baseline, 6);
        let (_, _, _, c2) = run_level(Level::C2, 6);
        let drop = 100.0 * (base - c2) as f64 / base as f64;
        assert!(drop >= 45.0, "drop {drop}% ({base} -> {c2})");
    }

    #[test]
    fn dimension_contraction_collapses_sweep_stages() {
        let p = zlang::compile(SOURCE).unwrap();
        let dimc = Pipeline::new(Level::C2)
            .with_dimension_contraction()
            .optimize(&p);
        assert!(dimc.report.dimension_contracted >= 5, "{:?}", dimc.report);
        // Semantics unchanged.
        let plain = Pipeline::new(Level::C2).optimize(&p);
        let run = |opt: &fusion_core::pipeline::Optimized| {
            let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
            binding.set_by_name(&opt.scalarized.program, "n", 6);
            let mut exec = Engine::default()
                .executor(&opt.scalarized, binding)
                .unwrap();
            let out = exec.execute(&mut NoopObserver).unwrap();
            (
                out.scalar(opt.scalarized.program.scalar_by_name("mass").unwrap()),
                out.stats.peak_bytes,
            )
        };
        let (m1, b1) = run(&plain);
        let (m2, b2) = run(&dimc);
        assert_eq!(m1, m2);
        assert!(b2 < b1, "{b2} vs {b1}");
    }
}
