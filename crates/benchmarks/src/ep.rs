//! NAS EP: embarrassingly parallel generation of Gaussian random deviates
//! by the Marsaglia polar method, with annulus counts.
//!
//! The array-language formulation materializes every stage of the pipeline
//! as a whole array — uniforms, candidate coordinates, acceptance masks,
//! deviates, annulus membership — exactly the style the paper's EP exhibits
//! (22 user arrays, no compiler temporaries). Every array is consumed by
//! reductions in the same basic block, so full contraction eliminates all
//! of them: the paper's headline "EP runs in constant memory after
//! contraction".

use crate::{Benchmark, PaperData};

/// `zlang` source of EP.
pub const SOURCE: &str = r#"
program ep;

config n : int = 8192;      -- number of candidate pairs

region R = [1..n];

var U1, U2        : [R] float;   -- uniform deviates
var X, Y          : [R] float;   -- candidate coordinates in [-1,1)^2
var T             : [R] float;   -- squared radius
var ACC           : [R] float;   -- acceptance mask (t <= 1)
var TT            : [R] float;   -- guarded radius for the transform
var F             : [R] float;   -- polar transform factor
var GX, GY        : [R] float;   -- Gaussian deviates
var GX2, GY2      : [R] float;   -- squares (for variance sums)
var AX, AY, MX    : [R] float;   -- |gx|, |gy|, max of both
var C0, C1, C2, C3 : [R] float;  -- annulus membership counts
var PROD          : [R] float;   -- gx*gy (for covariance sum)

var npairs, sx, sy, sx2, sy2, sxy : float;
var q0, q1, q2, q3 : float;

begin
  -- Deterministic "uniform" streams (hash of the index).
  [R] U1 := rnd(index1 * 2.0 + 1.0);
  [R] U2 := rnd(index1 * 2.0 + 2.0);

  -- Candidate point in the square.
  [R] X := 2.0 * U1 - 1.0;
  [R] Y := 2.0 * U2 - 1.0;

  -- Polar acceptance test.
  [R] T   := X * X + Y * Y;
  [R] ACC := T <= 1.0;
  [R] TT  := max(select(ACC, T, 1.0), 1e-30);

  -- Transform accepted pairs; rejected lanes contribute zero.
  [R] F  := select(ACC, sqrt((0.0 - 2.0) * ln(TT) / TT), 0.0);
  [R] GX := X * F;
  [R] GY := Y * F;

  -- Moments.
  [R] GX2  := GX * GX;
  [R] GY2  := GY * GY;
  [R] PROD := GX * GY;

  -- Annulus counts on max(|gx|, |gy|).
  [R] AX := abs(GX);
  [R] AY := abs(GY);
  [R] MX := max(AX, AY);
  [R] C0 := select(ACC * (MX < 1.0), 1.0, 0.0);
  [R] C1 := select(ACC * (MX >= 1.0) * (MX < 2.0), 1.0, 0.0);
  [R] C2 := select(ACC * (MX >= 2.0) * (MX < 3.0), 1.0, 0.0);
  [R] C3 := select(ACC * (MX >= 3.0), 1.0, 0.0);

  npairs := +<< [R] ACC;
  sx     := +<< [R] GX;
  sy     := +<< [R] GY;
  sx2    := +<< [R] GX2;
  sy2    := +<< [R] GY2;
  sxy    := +<< [R] PROD;
  q0     := +<< [R] C0;
  q1     := +<< [R] C1;
  q2     := +<< [R] C2;
  q3     := +<< [R] C3;
end
"#;

/// The EP benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "ep",
        description: "NAS EP: Gaussian random deviates by the polar method",
        source: SOURCE,
        size_config: "n",
        iters_config: None,
        rank: 1,
        paper: PaperData {
            static_compiler: 0,
            static_user: 22,
            static_after: 0,
            scalar_equivalent: Some(1),
            live_before: 22,
            live_after: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::pipeline::{Level, Pipeline};
    use loopir::{Engine, NoopObserver};
    use zlang::ir::ConfigBinding;

    #[test]
    fn fully_contracts_to_zero_arrays() {
        let p = zlang::compile(SOURCE).unwrap();
        let opt = Pipeline::new(Level::C2).optimize(&p);
        assert_eq!(
            opt.scalarized.live_arrays().len(),
            0,
            "EP must run in constant memory: {:?}",
            opt.scalarized
                .live_arrays()
                .iter()
                .map(|&a| &opt.norm.program.array(a).name)
                .collect::<Vec<_>>()
        );
        assert_eq!(
            opt.report.compiler_before, 0,
            "EP needs no compiler temporaries"
        );
        // Everything fuses into a single loop.
        assert_eq!(opt.scalarized.nest_count(), 1);
    }

    #[test]
    fn semantics_stable_across_levels() {
        let p = zlang::compile(SOURCE).unwrap();
        let mut expected = None;
        for level in Level::all() {
            let opt = Pipeline::new(level).optimize(&p);
            let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
            binding.set_by_name(&opt.scalarized.program, "n", 512);
            let mut exec = Engine::default()
                .executor(&opt.scalarized, binding)
                .unwrap();
            let out = exec.execute(&mut NoopObserver).unwrap();
            // Check all ten reduction outputs.
            let sums: Vec<f64> = out.scalars[..10].to_vec();
            match &expected {
                None => expected = Some(sums),
                Some(e) => assert_eq!(&sums, e, "level {level}"),
            }
        }
    }

    #[test]
    fn statistics_are_plausible() {
        let p = zlang::compile(SOURCE).unwrap();
        let opt = Pipeline::new(Level::C2).optimize(&p);
        let binding = ConfigBinding::defaults(&opt.scalarized.program);
        let mut exec = Engine::default()
            .executor(&opt.scalarized, binding)
            .unwrap();
        let out = exec.execute(&mut NoopObserver).unwrap();
        let program = &opt.scalarized.program;
        let get = |name: &str| out.scalar(program.scalar_by_name(name).unwrap());
        let npairs = get("npairs");
        assert!(
            npairs > 0.75 * 8192.0 && npairs < 0.82 * 8192.0,
            "acceptance ~ pi/4: {npairs}"
        );
        // Mean near 0, variance near 1 for accepted deviates.
        let mean = get("sx") / npairs;
        assert!(mean.abs() < 0.05, "mean {mean}");
        let var = get("sx2") / npairs;
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
        // Annulus counts decrease.
        assert!(get("q0") > get("q1"));
        assert!(get("q1") > get("q2"));
    }
}
