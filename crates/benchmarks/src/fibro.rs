//! Fibro: mathematical-biology simulation of fibroblast dynamics
//! (Dikaiakos, Lin, Manoussaki & Woodward), originally developed in ZPL —
//! the one benchmark with no scalar-language equivalent.
//!
//! The model evolves a cell-orientation field under neighbor alignment and
//! a chemoattractant field under diffusion/secretion. All state updates
//! are written double-buffered (`THETA2 := f(THETA); THETA := THETA2;`),
//! so — like the paper's Fibro, whose 49 arrays include *no* compiler
//! temporaries — normalization inserts nothing.

use crate::{Benchmark, PaperData};

/// `zlang` source of Fibro.
pub const SOURCE: &str = r#"
program fibro;

config n     : int = 48;
config steps : int = 3;
config align : float = 0.2;   -- alignment rate
config diff  : float = 0.15;  -- chemoattractant diffusion

region RH2 = [-1..n+2, -1..n+2];   -- deep halo for the chemoattractant
region RH  = [0..n+1, 0..n+1];
region R   = [1..n, 1..n];

direction up = [-1, 0];
direction dn = [ 1, 0];
direction lt = [ 0,-1];
direction rt = [ 0, 1];

var THETA, DENS       : [RH] float;   -- state: orientation, cell density
var COLL, CDIR        : [RH] float;   -- state: collagen density + direction
var CHEM              : [RH2] float;  -- state: chemoattractant (deep halo)
var INHIB             : [RH2] float;  -- state: inhibitor morphogen
var SX, SY            : [R] float;    -- mean neighbor direction vector
var MEAN              : [R] float;    -- local mean orientation
var DIFFTH            : [R] float;    -- orientation mismatch
var GUIDE             : [R] float;    -- contact guidance by collagen
var GCX, GCY          : [RH] float;   -- chemoattractant gradient
var GIX, GIY          : [RH] float;   -- inhibitor gradient
var TAXIS             : [R] float;    -- chemotactic modulation
var TORQUE            : [R] float;    -- alignment torque
var THETA2            : [R] float;    -- next orientation (double buffer)
var LAPC, LAPI        : [R] float;    -- morphogen Laplacians
var SECR, SINK        : [R] float;    -- secretion / uptake by tissue
var CHEM2, INHIB2     : [R] float;    -- next morphogens
var FLOWX, FLOWY      : [RH] float;   -- cell flux
var DIVF              : [R] float;    -- flux divergence
var DENS2             : [R] float;    -- next density
var DEPO, DEGR        : [R] float;    -- collagen deposition / degradation
var COLL2, CDIR2      : [R] float;    -- next collagen state

var orient, mass, signal, matrix : float;
var k : int;

begin
  [RH]  THETA := rnd(index1 * 131.0 + index2) * 3.14159;
  [RH2] CHEM  := 0.0;
  [RH2] INHIB := 0.05;
  [RH]  DENS  := 1.0 + 0.5 * rnd(index1 + index2 * 177.0);
  [RH]  COLL  := 0.8 + 0.2 * rnd(index1 * 57.0 + index2 * 3.0);
  [RH]  CDIR  := rnd(index2 * 211.0 + index1) * 3.14159;

  for k := 1 to steps do
    -- Mean neighbor orientation via direction vectors.
    [R] SX := cos(THETA@up) + cos(THETA@dn) + cos(THETA@lt) + cos(THETA@rt);
    [R] SY := sin(THETA@up) + sin(THETA@dn) + sin(THETA@lt) + sin(THETA@rt);
    [R] MEAN := select(abs(SX) + abs(SY) > 1e-9, sin(SY / 4.0) * 0.5 + SX * 0.0, THETA);

    -- Torque toward the local mean, modulated by chemoattractant taxis
    -- and contact guidance along the collagen matrix.
    [R] DIFFTH := MEAN - THETA;
    [RH] GCX := (CHEM@rt - CHEM@lt) * 0.5;
    [RH] GCY := (CHEM@dn - CHEM@up) * 0.5;
    [RH] GIX := (INHIB@rt - INHIB@lt) * 0.5;
    [RH] GIY := (INHIB@dn - INHIB@up) * 0.5;
    [R] TAXIS := 1.0 + 0.5 * (abs(GCX) + abs(GCY)) - 0.25 * (abs(GIX) + abs(GIY));
    [R] GUIDE := 0.3 * COLL * sin(CDIR - THETA);
    [R] TORQUE := align * DIFFTH * TAXIS + GUIDE;
    [R] THETA2 := THETA + TORQUE;
    [R] THETA := THETA2;

    -- Chemoattractant: diffusion + secretion by dense tissue; the
    -- inhibitor diffuses and is taken up where cells are dense.
    [R] LAPC := CHEM@rt + CHEM@lt + CHEM@dn + CHEM@up - 4.0 * CHEM;
    [R] SECR := 0.01 * DENS * DENS;
    [R] CHEM2 := CHEM + diff * LAPC + SECR;
    [R] CHEM := CHEM2;
    [R] LAPI := INHIB@rt + INHIB@lt + INHIB@dn + INHIB@up - 4.0 * INHIB;
    [R] SINK := 0.005 * DENS;
    [R] INHIB2 := max(INHIB + diff * LAPI - SINK, 0.0);
    [R] INHIB := INHIB2;

    -- Collagen: fibroblasts deposit aligned fibers and degrade old matrix.
    [R] DEPO := 0.02 * DENS * TAXIS;
    [R] DEGR := 0.01 * COLL;
    [R] COLL2 := max(COLL + DEPO - DEGR, 0.0);
    [R] CDIR2 := CDIR + 0.1 * sin(THETA - CDIR);
    [R] COLL := COLL2;
    [R] CDIR := CDIR2;

    -- Cells drift along the chemoattractant gradient.
    [RH] FLOWX := DENS * GCX * 0.1;
    [RH] FLOWY := DENS * GCY * 0.1;
    [R] DIVF := (FLOWX@rt - FLOWX@lt) * 0.5 + (FLOWY@dn - FLOWY@up) * 0.5;
    [R] DENS2 := max(DENS - DIVF, 0.0);
    [R] DENS := DENS2;
  end;

  orient := +<< [R] THETA;
  mass   := +<< [R] DENS;
  signal := +<< [R] CHEM - INHIB;
  matrix := +<< [R] COLL;
end
"#;

/// The Fibro benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "fibro",
        description: "fibroblast orientation/chemotaxis model (developed in ZPL)",
        source: SOURCE,
        size_config: "n",
        iters_config: Some("steps"),
        rank: 2,
        paper: PaperData {
            static_compiler: 0,
            static_user: 49,
            static_after: 27,
            scalar_equivalent: None,
            live_before: 49,
            live_after: 27,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::pipeline::{Level, Pipeline};
    use loopir::{Engine, NoopObserver};
    use zlang::ir::ConfigBinding;

    fn run_level(level: Level, n: i64) -> (f64, f64, f64, usize) {
        let p = zlang::compile(SOURCE).unwrap();
        let opt = Pipeline::new(level).optimize(&p);
        let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
        binding.set_by_name(&opt.scalarized.program, "n", n);
        let mut exec = Engine::default()
            .executor(&opt.scalarized, binding)
            .unwrap();
        let out = exec.execute(&mut NoopObserver).unwrap();
        let prog = &opt.scalarized.program;
        (
            out.scalar(prog.scalar_by_name("orient").unwrap()),
            out.scalar(prog.scalar_by_name("mass").unwrap()),
            out.scalar(prog.scalar_by_name("signal").unwrap()),
            opt.scalarized.live_arrays().len(),
        )
    }

    #[test]
    fn no_compiler_temporaries() {
        let p = zlang::compile(SOURCE).unwrap();
        let opt = Pipeline::new(Level::Baseline).optimize(&p);
        assert_eq!(
            opt.report.compiler_before, 0,
            "Fibro is written double-buffered"
        );
    }

    #[test]
    fn all_levels_agree() {
        let expect = run_level(Level::Baseline, 16);
        for level in Level::all() {
            let got = run_level(level, 16);
            assert_eq!(
                (got.0, got.1, got.2),
                (expect.0, expect.1, expect.2),
                "level {level}"
            );
        }
    }

    #[test]
    fn contraction_eliminates_a_meaningful_fraction() {
        let (_, _, _, base) = run_level(Level::Baseline, 16);
        let (_, _, _, c2) = run_level(Level::C2, 16);
        // The paper's Fibro keeps 27 of 49 (-44.9%); ours should also keep
        // roughly half (the double buffers and stencil feeders survive).
        assert!(c2 < base, "{base} -> {c2}");
        let drop = 100.0 * (base - c2) as f64 / base as f64;
        assert!(drop > 25.0 && drop < 75.0, "drop {drop}% ({base} -> {c2})");
    }

    #[test]
    fn dynamics_produce_signal() {
        let (orient, mass, signal, _) = run_level(Level::C2, 24);
        assert!(orient.is_finite());
        assert!(mass > 0.0);
        assert!(signal > 0.0, "secretion fills the chemoattractant field");
    }
}
