//! Tomcatv (SPEC CFP95): vectorized mesh generation.
//!
//! Each iteration computes first and second differences of the mesh
//! coordinates, assembles Jacobian coefficients, forms residuals, reduces
//! their maxima, and relaxes the mesh. The coefficient and residual
//! temporaries contract into the update loop; the difference stencils
//! cannot (their offset reads of `X`/`Y` would make the fused loop's
//! anti-dependences unsatisfiable — the exact situation the paper's
//! Figure 1 temporaries face), so they survive as arrays, as in the paper
//! where Tomcatv keeps 7 of 19 arrays.
//!
//! Both mesh updates read their own target, so normalization inserts
//! compiler temporaries (the paper's Tomcatv has 4) which C1 already
//! removes.

use crate::{Benchmark, PaperData};

/// `zlang` source of Tomcatv.
pub const SOURCE: &str = r#"
program tomcatv;

config n     : int = 48;     -- interior mesh points per dimension
config titer : int = 3;      -- relaxation sweeps
config relax : float = 0.3;  -- relaxation factor

region RH = [0..n+1, 0..n+1];
region R  = [1..n, 1..n];

direction up = [-1, 0];
direction dn = [ 1, 0];
direction lt = [ 0,-1];
direction rt = [ 0, 1];
direction ul = [-1,-1];
direction ur = [-1, 1];
direction ll = [ 1,-1];
direction lr = [ 1, 1];

var X, Y : [RH] float;                  -- mesh coordinates (persistent)
var XX, YX, XY, YY : [R] float;         -- first differences
var PXX, QXX, PYY, QYY, PXY, QXY : [R] float; -- second differences
var AA, BB, CC, D : [R] float;          -- Jacobian coefficients
var RX, RY : [R] float;                 -- residuals

var rxm, rym, chk : float;
var it : int;

begin
  -- A slightly perturbed sheared mesh.
  [RH] X := index2 + 0.05 * sin(index1 * 0.37);
  [RH] Y := index1 + 0.05 * sin(index2 * 0.41);

  for it := 1 to titer do
    -- First differences.
    [R] XX := (X@rt - X@lt) * 0.5;
    [R] YX := (Y@rt - Y@lt) * 0.5;
    [R] XY := (X@dn - X@up) * 0.5;
    [R] YY := (Y@dn - Y@up) * 0.5;

    -- Second differences.
    [R] PXX := X@rt - 2.0 * X + X@lt;
    [R] QXX := Y@rt - 2.0 * Y + Y@lt;
    [R] PYY := X@dn - 2.0 * X + X@up;
    [R] QYY := Y@dn - 2.0 * Y + Y@up;
    [R] PXY := X@ur - X@ul - X@lr + X@ll;
    [R] QXY := Y@ur - Y@ul - Y@lr + Y@ll;

    -- Jacobian coefficients.
    [R] AA := XY * XY + YY * YY;
    [R] BB := XX * XY + YX * YY;
    [R] CC := XX * XX + YX * YX;
    [R] D  := max(2.0 * (AA + CC), 1e-6);

    -- Residuals.
    [R] RX := AA * PXX + CC * PYY - 0.5 * BB * PXY;
    [R] RY := AA * QXX + CC * QYY - 0.5 * BB * QXY;

    rxm := max<< [R] abs(RX);
    rym := max<< [R] abs(RY);

    -- Relax the mesh (self-updates: compiler temporaries inserted).
    [R] X := X + relax * RX / D;
    [R] Y := Y + relax * RY / D;
  end;

  chk := +<< [R] X * 0.001 + Y * 0.001;
end
"#;

/// The Tomcatv benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "tomcatv",
        description: "SPEC Tomcatv: vectorized mesh generation",
        source: SOURCE,
        size_config: "n",
        iters_config: Some("titer"),
        rank: 2,
        paper: PaperData {
            static_compiler: 4,
            static_user: 15,
            static_after: 7,
            scalar_equivalent: Some(7),
            live_before: 19,
            live_after: 7,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::pipeline::{Level, Pipeline};
    use loopir::{Engine, NoopObserver};
    use zlang::ir::ConfigBinding;

    fn run_level(level: Level, n: i64) -> (f64, f64, usize) {
        let p = zlang::compile(SOURCE).unwrap();
        let opt = Pipeline::new(level).optimize(&p);
        let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
        binding.set_by_name(&opt.scalarized.program, "n", n);
        let mut exec = Engine::default()
            .executor(&opt.scalarized, binding)
            .unwrap();
        let out = exec.execute(&mut NoopObserver).unwrap();
        let prog = &opt.scalarized.program;
        (
            out.scalar(prog.scalar_by_name("chk").unwrap()),
            out.scalar(prog.scalar_by_name("rxm").unwrap()),
            opt.scalarized.live_arrays().len(),
        )
    }

    #[test]
    fn all_levels_agree() {
        let (chk, rxm, _) = run_level(Level::Baseline, 16);
        assert!(chk.is_finite() && chk != 0.0);
        assert!(rxm > 0.0);
        for level in Level::all() {
            let (c, r, _) = run_level(level, 16);
            assert_eq!((c, r), (chk, rxm), "level {level}");
        }
    }

    #[test]
    fn compiler_temps_exist_and_contract_at_c1() {
        let p = zlang::compile(SOURCE).unwrap();
        let base = Pipeline::new(Level::Baseline).optimize(&p);
        assert_eq!(base.report.compiler_before, 2, "two mesh self-updates");
        let c1 = Pipeline::new(Level::C1).optimize(&p);
        assert_eq!(c1.report.compiler_after, 0);
        assert_eq!(
            c1.report.user_after, c1.report.user_before,
            "c1 keeps user arrays"
        );
    }

    #[test]
    fn c2_contracts_by_weight_sacrificing_the_update_temps() {
        // The weighted greedy contracts every stencil/coefficient temporary
        // (they have more references than the mesh-update compiler temps),
        // leaving the two update temporaries as arrays — the paper's
        // "unless a more favorable contraction is performed that prevents
        // it" (Section 5.1) in action.
        let p = zlang::compile(SOURCE).unwrap();
        let c2 = Pipeline::new(Level::C2).optimize(&p);
        let names = c2.contracted_names();
        for expect in ["AA", "BB", "CC", "D", "RX", "RY", "PXX", "PXY", "XX"] {
            assert!(
                names.iter().any(|n| n == expect),
                "{expect} should contract: {names:?}"
            );
        }
        let live: Vec<String> = c2
            .scalarized
            .live_arrays()
            .iter()
            .map(|&a| c2.norm.program.array(a).name.clone())
            .collect();
        for expect in ["X", "Y", "_t0", "_t1"] {
            assert!(
                live.iter().any(|n| n == expect),
                "{expect} must survive: {live:?}"
            );
        }
    }

    #[test]
    fn contraction_reduces_static_arrays_substantially() {
        let (_, _, live_base) = run_level(Level::Baseline, 16);
        let (_, _, live_c2) = run_level(Level::C2, 16);
        assert!(
            live_c2 * 2 <= live_base + 2,
            "roughly half the arrays should go: {live_base} -> {live_c2}"
        );
    }
}
