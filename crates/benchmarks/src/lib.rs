//! The paper's six benchmarks (Section 5), written in `zlang`.
//!
//! | Benchmark | Domain | Paper's static arrays (compiler/user) → after | Scalar equiv. |
//! |-----------|--------|------------------------------------------------|---------------|
//! | EP        | NAS: Gaussian random deviates                  | 22 (0/22) → 0 | 1 |
//! | Frac      | escape-time fractal                            | 8 → 1         | 1 |
//! | Tomcatv   | SPEC: vectorized mesh generation               | 19 (4/15) → 7 | 7 |
//! | SP        | NAS: scalar pentadiagonal CFD solver           | 181 (18/163) → 56 | 48 |
//! | Simple    | Lagrangian hydrodynamics + heat conduction     | 85 (20/65) → 32 | 32 |
//! | Fibro     | fibroblast biology simulation                  | 49 (0/49) → 27 | n/a |
//!
//! Our re-writes are faithful to each benchmark's *array-statement
//! structure* (stencil shapes, temporary-array usage, persistent state) at
//! reduced scale; absolute array counts differ from the paper's full
//! applications and are reported side by side by the reproduction harness
//! (see EXPERIMENTS.md).
//!
//! Every benchmark ends in checksum reductions so that (a) semantic
//! equivalence across optimization levels is checkable and (b) result
//! arrays are live-out of their defining blocks, exactly as in real
//! applications.
//!
//! ```
//! let ep = benchmarks::by_name("ep").unwrap();
//! let program = zlang::compile(ep.source).unwrap();
//! assert_eq!(program.name, "ep");
//! ```

pub mod ep;
pub mod fibro;
pub mod frac;
pub mod simple;
pub mod sp;
pub mod tomcatv;

/// The paper's measured data for a benchmark (Figures 7 and 8), used by
//  the reproduction harness for side-by-side reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperData {
    /// Static compiler-inserted arrays before contraction (Figure 7).
    pub static_compiler: usize,
    /// Static user arrays before contraction (Figure 7).
    pub static_user: usize,
    /// Static arrays remaining after contraction (Figure 7).
    pub static_after: usize,
    /// Arrays in the equivalent hand-written scalar program, if one exists.
    pub scalar_equivalent: Option<usize>,
    /// Dynamic simultaneously-live arrays before contraction (Figure 8,
    /// `l_b`).
    pub live_before: usize,
    /// Dynamic simultaneously-live arrays after contraction (Figure 8,
    /// `l_a`).
    pub live_after: usize,
}

/// A benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Short name (`ep`, `sp`, `tomcatv`, `simple`, `fibro`, `frac`).
    pub name: &'static str,
    /// Full description.
    pub description: &'static str,
    /// `zlang` source.
    pub source: &'static str,
    /// The config variable controlling problem size (points per dimension).
    pub size_config: &'static str,
    /// The config variable controlling outer iterations, if any.
    pub iters_config: Option<&'static str>,
    /// Rank of the benchmark's main arrays.
    pub rank: usize,
    /// The paper's measurements for side-by-side reporting.
    pub paper: PaperData,
}

impl Benchmark {
    /// Compiles the benchmark source.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to compile (a bug in this
    /// crate, covered by tests).
    pub fn program(&self) -> zlang::ir::Program {
        zlang::compile(self.source)
            .unwrap_or_else(|e| panic!("benchmark {} does not compile: {e}", self.name))
    }
}

/// All six benchmarks, in the paper's Figure 7 row order.
pub fn all() -> Vec<Benchmark> {
    vec![
        ep::benchmark(),
        frac::benchmark(),
        tomcatv::benchmark(),
        sp::benchmark(),
        simple::benchmark(),
        fibro::benchmark(),
    ]
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_compile() {
        for b in all() {
            let p = b.program();
            assert_eq!(p.name, b.name);
            assert!(
                p.configs.iter().any(|c| c.name == b.size_config),
                "{}: missing size config {}",
                b.name,
                b.size_config
            );
            if let Some(it) = b.iters_config {
                assert!(
                    p.configs.iter().any(|c| c.name == it),
                    "{}: missing {it}",
                    b.name
                );
            }
        }
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        for b in all() {
            assert_eq!(by_name(b.name).unwrap().name, b.name);
        }
        assert!(by_name("nonesuch").is_none());
    }
}
