//! Frac: an escape-time fractal (Mandelbrot set) over a 2-D pixel grid.
//!
//! Each outer iteration advances every pixel's complex orbit one step
//! through a chain of whole-array temporaries (squares, magnitude, alive
//! mask, next coordinates). The temporaries contract; only the orbit state
//! and the escape counter survive — the paper's Frac keeps a single array
//! after contraction.

use crate::{Benchmark, PaperData};

/// `zlang` source of Frac.
pub const SOURCE: &str = r#"
program frac;

config n     : int = 96;    -- grid points per dimension
config iters : int = 12;    -- orbit steps

region R = [1..n, 1..n];

var CR, CI   : [R] float;   -- pixel coordinates (the constant c)
var ZR, ZI   : [R] float;   -- orbit state
var COUNT    : [R] float;   -- escape-time counter
var ZR2, ZI2 : [R] float;   -- squares
var MAG      : [R] float;   -- |z|^2
var ALIVE    : [R] float;   -- not yet escaped
var ZRN, ZIN : [R] float;   -- next orbit state

var k : int;
var area, total : float;

begin
  [R] CR := index2 * (3.0 / n) - 2.25;
  [R] CI := index1 * (2.4 / n) - 1.2;
  [R] ZR := 0.0;
  [R] ZI := 0.0;
  [R] COUNT := 0.0;

  for k := 1 to iters do
    [R] ZR2   := ZR * ZR;
    [R] ZI2   := ZI * ZI;
    [R] MAG   := ZR2 + ZI2;
    [R] ALIVE := MAG <= 4.0;
    [R] ZRN   := select(ALIVE, ZR2 - ZI2 + CR, ZR);
    [R] ZIN   := select(ALIVE, 2.0 * ZR * ZI + CI, ZI);
    [R] ZR    := ZRN;
    [R] ZI    := ZIN;
    [R] COUNT := COUNT + ALIVE;
  end;

  area  := +<< [R] (COUNT == iters);
  total := +<< [R] COUNT;
end
"#;

/// The Frac benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "frac",
        description: "escape-time fractal (Mandelbrot) on a pixel grid",
        source: SOURCE,
        size_config: "n",
        iters_config: Some("iters"),
        rank: 2,
        paper: PaperData {
            static_compiler: 0,
            static_user: 8,
            static_after: 1,
            scalar_equivalent: Some(1),
            live_before: 8,
            live_after: 1,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::pipeline::{Level, Pipeline};
    use loopir::{Engine, NoopObserver};
    use zlang::ir::ConfigBinding;

    fn run_level(level: Level, n: i64) -> (f64, f64, usize, u64) {
        let p = zlang::compile(SOURCE).unwrap();
        let opt = Pipeline::new(level).optimize(&p);
        let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
        binding.set_by_name(&opt.scalarized.program, "n", n);
        let mut exec = Engine::default()
            .executor(&opt.scalarized, binding)
            .unwrap();
        let out = exec.execute(&mut NoopObserver).unwrap();
        let prog = &opt.scalarized.program;
        (
            out.scalar(prog.scalar_by_name("area").unwrap()),
            out.scalar(prog.scalar_by_name("total").unwrap()),
            opt.scalarized.live_arrays().len(),
            out.stats.peak_bytes,
        )
    }

    #[test]
    fn orbit_temporaries_contract() {
        let (_, _, live_base, mem_base) = run_level(Level::Baseline, 32);
        let (_, _, live_c2, mem_c2) = run_level(Level::C2, 32);
        // ZR2, ZI2, MAG, ALIVE, ZRN, ZIN and the COUNT self-update temp
        // contract; the persistent state (CR, CI, ZR, ZI, COUNT) remains.
        assert_eq!(live_base, 11 + 1, "11 user arrays + COUNT's compiler temp");
        assert_eq!(live_c2, 5);
        assert!(mem_c2 < mem_base);
    }

    #[test]
    fn all_levels_agree() {
        let expect = run_level(Level::Baseline, 32);
        for level in Level::all() {
            let (a, t, _, _) = run_level(level, 32);
            assert_eq!((a, t), (expect.0, expect.1), "level {level}");
        }
    }

    #[test]
    fn fractal_has_interior_and_exterior() {
        let (area, total, _, _) = run_level(Level::C2, 48);
        assert!(area > 0.0, "some pixels never escape");
        assert!(area < 48.0 * 48.0, "some pixels escape");
        assert!(total > area, "escaped pixels accumulate partial counts");
    }
}
