//! Simple: Lagrangian hydrodynamics with heat conduction (Crowley et al.,
//! LLNL), solved by finite differences.
//!
//! Each step runs the code's classic phases: equation of state, strain
//! rates and divergence, artificial viscosity (linear + quadratic terms),
//! pressure/shear forces, the velocity and energy updates, face-centered
//! heat conduction, and the density update. The per-phase temporaries
//! (sound speed, strain rates, viscosity terms, forces, work terms) all
//! contract; the state fields and the offset-read stencil feeders (total
//! pressure, shear strain, conductivity, face fluxes) survive — the
//! half-and-half split of the paper's Figure 7 row (85 → 32). The five
//! state self-updates produce compiler temporaries, echoing the paper's
//! 20.

use crate::{Benchmark, PaperData};

/// `zlang` source of Simple.
pub const SOURCE: &str = r#"
program simple;

config n     : int = 48;    -- interior zones per dimension
config steps : int = 3;     -- time steps
config dt    : float = 0.05;
config gamma : float = 1.4;

region RH2 = [-1..n+2, -1..n+2];   -- deep halo for the velocity field
region RH  = [0..n+1, 0..n+1];
region RFX = [1..n, 0..n];         -- x-face centers
region RFY = [0..n, 1..n];         -- y-face centers
region R   = [1..n, 1..n];

direction up = [-1, 0];
direction dn = [ 1, 0];
direction lt = [ 0,-1];
direction rt = [ 0, 1];

var RHO, E, T         : [RH] float;   -- state (persistent)
var VX, VY            : [RH2] float;  -- velocity (persistent, deep halo)
var P, CS             : [RH] float;   -- pressure, sound speed
var DVX, DVY, DIV     : [RH] float;   -- strain rates, divergence
var EXY               : [RH] float;   -- shear strain (read at offsets)
var QLIN, QQUAD, Q    : [RH] float;   -- artificial viscosity terms
var PT                : [RH] float;   -- total pressure (read at offsets)
var GPX, GPY          : [R] float;    -- pressure gradient
var SHX, SHY          : [R] float;    -- shear force
var WCOMP, WVISC      : [R] float;    -- compression / viscous work
var KAP               : [RH] float;   -- conductivity (read at offsets)
var HFX               : [RFX] float;  -- x-face heat flux
var HFY               : [RFY] float;  -- y-face heat flux
var DIVH              : [R] float;    -- heat flux divergence
var KIN               : [R] float;    -- kinetic energy (final diagnostics)

var mass, energy, heat : float;
var k : int;

begin
  -- A dense blob in a quiescent background.
  [RH]  RHO := 1.0 + exp((0.0 - 0.002) * ((index1 - n * 0.5) * (index1 - n * 0.5)
                                         + (index2 - n * 0.5) * (index2 - n * 0.5)));
  [RH]  E   := 1.0;
  [RH2] VX  := 0.0;
  [RH2] VY  := 0.0;
  [RH]  T   := 1.0;

  for k := 1 to steps do
    -- Equation of state (over the halo ring so PT can be read at offsets).
    [RH] P  := (gamma - 1.0) * RHO * E;
    [RH] CS := sqrt(gamma * P / max(RHO, 1e-6));

    -- Strain rates, shear, and divergence.
    [RH] DVX := (VX@rt - VX@lt) * 0.5;
    [RH] DVY := (VY@dn - VY@up) * 0.5;
    [RH] EXY := ((VX@dn - VX@up) + (VY@rt - VY@lt)) * 0.25;
    [RH] DIV := DVX + DVY;

    -- Artificial viscosity: linear + quadratic terms under compression.
    [RH] QLIN  := 0.5 * RHO * CS * abs(DIV);
    [RH] QQUAD := 2.0 * RHO * DIV * DIV;
    [RH] Q := select(DIV < 0.0, QLIN + QQUAD, 0.0);
    [RH] PT := P + Q;

    -- Forces: pressure gradient plus shear contribution.
    [R] GPX := (PT@rt - PT@lt) * 0.5;
    [R] GPY := (PT@dn - PT@up) * 0.5;
    [R] SHX := (EXY@dn - EXY@up) * 0.1;
    [R] SHY := (EXY@rt - EXY@lt) * 0.1;
    [R] VX  := VX - dt * (GPX - SHX) / max(RHO, 1e-6);
    [R] VY  := VY - dt * (GPY - SHY) / max(RHO, 1e-6);

    -- Energy: compression work plus viscous heating.
    [R] WCOMP := PT * DIV / max(RHO, 1e-6);
    [R] WVISC := Q * abs(DIV) / max(RHO, 1e-6);
    [R] E := max(E - dt * (WCOMP - 0.5 * WVISC), 1e-6);

    -- Heat conduction with face-centered conductivities.
    [RH] KAP := 0.1 + 0.01 * T;
    [RFX] HFX := (T@rt - T) * (KAP@rt + KAP) * 0.5;
    [RFY] HFY := (T@dn - T) * (KAP@dn + KAP) * 0.5;
    [R] DIVH := (HFX - HFX@lt) + (HFY - HFY@up);
    [R] T := T + dt * DIVH;

    -- Density follows the divergence.
    [R] RHO := max(RHO * (1.0 - dt * DIV), 1e-6);
  end;

  [R] KIN := 0.5 * (VX * VX + VY * VY);
  mass   := +<< [R] RHO;
  energy := +<< [R] RHO * E + RHO * KIN;
  heat   := +<< [R] T;
end
"#;

/// The Simple benchmark descriptor.
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "simple",
        description: "Lagrangian hydrodynamics and heat conduction (LLNL Simple)",
        source: SOURCE,
        size_config: "n",
        iters_config: Some("steps"),
        rank: 2,
        paper: PaperData {
            static_compiler: 20,
            static_user: 65,
            static_after: 32,
            scalar_equivalent: Some(32),
            live_before: 40,
            live_after: 32,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_core::pipeline::{Level, Pipeline};
    use loopir::{Engine, NoopObserver};
    use zlang::ir::ConfigBinding;

    fn run_level(level: Level, n: i64) -> (f64, f64, f64, usize) {
        let p = zlang::compile(SOURCE).unwrap();
        let opt = Pipeline::new(level).optimize(&p);
        let mut binding = ConfigBinding::defaults(&opt.scalarized.program);
        binding.set_by_name(&opt.scalarized.program, "n", n);
        let mut exec = Engine::default()
            .executor(&opt.scalarized, binding)
            .unwrap();
        let out = exec.execute(&mut NoopObserver).unwrap();
        let prog = &opt.scalarized.program;
        (
            out.scalar(prog.scalar_by_name("mass").unwrap()),
            out.scalar(prog.scalar_by_name("energy").unwrap()),
            out.scalar(prog.scalar_by_name("heat").unwrap()),
            opt.scalarized.live_arrays().len(),
        )
    }

    #[test]
    fn all_levels_agree() {
        let (m, e, h, _) = run_level(Level::Baseline, 16);
        assert!(m.is_finite() && m > 0.0);
        assert!(e.is_finite() && e > 0.0);
        for level in Level::all() {
            let (m2, e2, h2, _) = run_level(level, 16);
            assert_eq!((m2, e2, h2), (m, e, h), "level {level}");
        }
    }

    #[test]
    fn physics_is_sane() {
        let (m, _, h, _) = run_level(Level::C2, 32);
        // Mass = background (1 per zone) + the Gaussian blob (~pi/0.002
        // truncated to the grid), and stays near its initial value over a
        // few small time steps.
        let background = 32.0 * 32.0;
        assert!(m > background && m < background * 2.5, "mass {m}");
        assert!(h > 0.0);
    }

    #[test]
    fn contraction_removes_half_the_arrays() {
        let (_, _, _, base) = run_level(Level::Baseline, 16);
        let (_, _, _, c2) = run_level(Level::C2, 16);
        assert!(c2 < base, "{base} -> {c2}");
        assert!(
            c2 * 2 <= base + 3,
            "roughly half should contract: {base} -> {c2}"
        );
    }

    #[test]
    fn has_many_compiler_temps() {
        let p = zlang::compile(SOURCE).unwrap();
        let base = Pipeline::new(Level::Baseline).optimize(&p);
        // VX, VY, E, T, RHO self-updates.
        assert_eq!(base.report.compiler_before, 5);
        let c1 = Pipeline::new(Level::C1).optimize(&p);
        assert_eq!(c1.report.compiler_after, 0, "c1 removes all compiler temps");
    }

    #[test]
    fn stencil_feeders_survive_pointwise_chains_contract() {
        let p = zlang::compile(SOURCE).unwrap();
        let c2 = Pipeline::new(Level::C2).optimize(&p);
        let names = c2.contracted_names();
        for expect in [
            "CS", "DVX", "QLIN", "QQUAD", "GPX", "SHY", "WCOMP", "DIVH", "KIN",
        ] {
            assert!(
                names.iter().any(|n| n == expect),
                "{expect} should contract: {names:?}"
            );
        }
        let live: Vec<String> = c2
            .scalarized
            .live_arrays()
            .iter()
            .map(|&a| c2.norm.program.array(a).name.clone())
            .collect();
        for expect in ["RHO", "VX", "T", "PT", "EXY", "KAP", "HFX", "HFY"] {
            assert!(
                live.iter().any(|n| n == expect),
                "{expect} must survive: {live:?}"
            );
        }
    }
}
