//! The Figure 5 code fragments, transliterated from Fortran 90 to `zlang`.
//!
//! In every fragment, arrays `B`, `T1`, and `T2` are not live beyond the
//! fragment (the paper's setup); arrays `A` and `C` are treated as live-out
//! when only written.

/// What correct optimizer behavior on a fragment means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// The fragment's array statements compile into a single loop nest
    /// (statement fusion for locality). Fragments (1)–(3).
    SingleNest,
    /// No compiler temporary survives (all compiler-inserted arrays
    /// eliminated). Fragments (4), (5), (8).
    CompilerTempsEliminated,
    /// The named user arrays are contracted. Fragments (6), (7), (8b).
    UserArraysContracted(&'static [&'static str]),
}

/// One test fragment.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// Paper fragment number, e.g. "(3)" or "(8b)".
    pub id: &'static str,
    /// One-line description of what the fragment tests.
    pub what: &'static str,
    /// `zlang` source.
    pub source: &'static str,
    /// The pass criterion.
    pub criterion: Criterion,
    /// True if eliminating the compiler temporary requires only local
    /// analysis of a single source statement (the paper: "it requires only
    /// a simple local analysis"); such fragments are credited to compilers
    /// with the `local_temp_elimination` capability even when their fusion
    /// machinery cannot derive it.
    pub local_elim_suffices: bool,
}

const HEADER: &str = "program frag; config n : int = 16; config m : int = 16; \
    region RH = [0..n+1, 0..m+1]; region R = [1..n, 1..m]; ";

macro_rules! frag {
    ($id:literal, $what:literal, $body:literal, $crit:expr, $local:expr) => {
        Fragment {
            id: $id,
            what: $what,
            source: constcat!($body),
            criterion: $crit,
            local_elim_suffices: $local,
        }
    };
}

// Small helper: fragments share the header.
macro_rules! constcat {
    ($body:literal) => {
        concat!(
            "program frag; config n : int = 16; config m : int = 16; \
             region RH = [0..n+1, 0..m+1]; region R = [1..n, 1..m]; ",
            $body
        )
    };
}

/// The eight fragments of Figure 5, plus the companion `(8b)`.
pub fn fragments() -> Vec<Fragment> {
    let _ = HEADER;
    vec![
        // (1) B = A+A ; C = A*A — plain temporal-locality fusion.
        frag!(
            "(1)",
            "fusion for locality, no dependences",
            "var A, B, C : [R] float; begin [R] B := A + A; [R] C := A * A; end",
            Criterion::SingleNest,
            false
        ),
        // (2) B = A@n + A@n ; C = A*A — offset reads, still no dependences.
        frag!(
            "(2)",
            "fusion for locality with offset reads",
            "var A : [RH] float; var B, C : [R] float; begin \
             [R] B := A@[-1,0] + A@[-1,0]; [R] C := A * A; end",
            Criterion::SingleNest,
            false
        ),
        // (3) B = A@n + C@n ; C = A*A — fused loop carries an anti-dep.
        frag!(
            "(3)",
            "fusion across a loop-carried anti-dependence",
            "var A, C : [RH] float; var B : [R] float; begin \
             [R] B := A@[-1,0] + C@[-1,0]; [R] C := A * A; end",
            Criterion::SingleNest,
            false
        ),
        // (4) A = A + A — aligned self-reference: the temp is removable.
        frag!(
            "(4)",
            "compiler temporary for an aligned self-update",
            "var A : [R] float; begin [R] A := A + A; end",
            Criterion::CompilerTempsEliminated,
            true
        ),
        // (5) A = A@n + A@n — self-update with offset: removable via
        // reversal.
        frag!(
            "(5)",
            "compiler temporary for an offset self-update",
            "var A : [RH] float; begin [R] A := A@[-1,0] + A@[-1,0]; end",
            Criterion::CompilerTempsEliminated,
            true
        ),
        // (6) B = A+A ; C = B — user temporary.
        frag!(
            "(6)",
            "user temporary contraction",
            "var A, B, C : [R] float; begin [R] B := A + A; [R] C := B; end",
            Criterion::UserArraysContracted(&["B"]),
            false
        ),
        // (7) B = A+A+C@n ; C = B — user temporary whose fusion carries an
        // anti-dependence.
        frag!(
            "(7)",
            "user temporary contraction across an anti-dependence",
            "var C : [RH] float; var A, B : [R] float; begin \
             [R] B := A + A + C@[-1,0]; [R] C := B; end",
            Criterion::UserArraysContracted(&["B"]),
            false
        ),
        // (8) T1 = B ; T2 = B ; A = A@s + T1@s + T2@s — the tradeoff
        // fragment as printed: with the paper's Definition 6, T1/T2 have
        // non-null flow dependences and cannot contract, so the correct
        // outcome is eliminating the compiler temporary.
        frag!(
            "(8)",
            "compiler/user temporary tradeoff (as printed)",
            "var A, T1, T2 : [RH] float; var B : [R] float; begin \
             [R] T1 := B; [R] T2 := B; \
             [R] A := A@[1,0] + T1@[1,0] + T2@[1,0]; end",
            Criterion::CompilerTempsEliminated,
            true
        ),
        // (8b) companion: aligned T1/T2 reads make all three temporaries
        // contractible at once — exercising weighing compiler and user
        // arrays together.
        frag!(
            "(8b)",
            "compiler/user temporaries weighed together",
            "var A : [RH] float; var B, T1, T2 : [R] float; begin \
             [R] T1 := B; [R] T2 := B; [R] A := A@[1,0] + T1 + T2; end",
            Criterion::UserArraysContracted(&["T1", "T2", "_t0"]),
            false
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fragments_compile() {
        for f in fragments() {
            zlang::compile(f.source).unwrap_or_else(|e| panic!("fragment {}: {e}", f.id));
        }
    }

    #[test]
    fn fragment_ids_unique() {
        let f = fragments();
        let mut ids: Vec<_> = f.iter().map(|f| f.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), f.len());
    }
}
