//! Commercial array-language compiler behavior models (Section 5.1 of the
//! paper, Figures 5 and 6).
//!
//! The paper infers what five compilers do from their output on eight
//! carefully selected code fragments. This crate reproduces that
//! experiment: [`mod@fragments`] holds the eight fragments (plus a companion
//! exercising the fragment-8 tradeoff with a real choice), [`model`]
//! describes each compiler as a set of capabilities, and [`matrix`] runs
//! every fragment through every model — driving the *real* optimizer with
//! the model's restrictions — to regenerate the Figure 6 table.
//!
//! ```
//! let m = compilers::matrix::behavior_matrix();
//! let zpl = m.rows.iter().find(|r| r.model.name.contains("ZPL")).unwrap();
//! assert!(zpl.verdicts.iter().all(|v| *v), "our technique handles every fragment");
//! let pgi = m.rows.iter().find(|r| r.model.name.contains("PGI")).unwrap();
//! assert!(!pgi.verdicts[0], "PGI performs no statement fusion");
//! ```

pub mod fragments;
pub mod matrix;
pub mod model;

pub use fragments::{fragments, Criterion, Fragment};
pub use matrix::{behavior_matrix, BehaviorMatrix};
pub use model::{apr, cray, ibm, pgi, zpl, CompilerModel};
