//! Capability models for the five compilers of Figure 6.
//!
//! Each model drives the real `fusion-core` pipeline with the restrictions
//! the paper infers for that compiler, so the verdicts in the behavior
//! matrix are *derived*, not hardcoded — with one exception: compilers that
//! perform no statement fusion still eliminate compiler temporaries that a
//! "simple local analysis" of one statement suffices for (the paper,
//! Section 5.1); that observed capability is the `local_temp_elimination`
//! flag.

use fusion_core::fusion::FusionOpts;
use fusion_core::pipeline::Level;

/// A compiler's inferred capabilities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompilerModel {
    /// Display name (product and version, as in Figure 6).
    pub name: &'static str,
    /// The optimization level the compiler's behavior corresponds to.
    pub level: Level,
    /// True if the compiler cannot fuse loops carrying anti-dependences
    /// (observed for APR XHPF and Cray F90).
    pub no_loop_carried_anti: bool,
    /// True if the compiler removes compiler temporaries that local,
    /// single-statement analysis can remove.
    pub local_temp_elimination: bool,
}

impl CompilerModel {
    /// The fusion options implementing this model's restrictions.
    pub fn fusion_opts(&self) -> FusionOpts {
        FusionOpts {
            forbidden_pairs: Vec::new(),
            forbid_loop_carried_anti: self.no_loop_carried_anti,
        }
    }
}

/// PGI HPF 2.1: no statement fusion at all — it "hoped to leverage the
/// optimizations performed by the back end Fortran 77 compiler", which
/// fuses but never contracts.
pub fn pgi() -> CompilerModel {
    CompilerModel {
        name: "PGI HPF 2.1",
        level: Level::Baseline,
        no_loop_carried_anti: true,
        local_temp_elimination: true,
    }
}

/// IBM XLHPF 1.2: same observed behavior as PGI — each array statement
/// compiles to its own loop nest.
pub fn ibm() -> CompilerModel {
    CompilerModel {
        name: "IBM XLHPF 1.2",
        level: Level::Baseline,
        no_loop_carried_anti: true,
        local_temp_elimination: true,
    }
}

/// APR XHPF 2.0: fuses for locality and contracts compiler arrays, but
/// cannot fuse loops that carry anti-dependences.
pub fn apr() -> CompilerModel {
    CompilerModel {
        name: "APR XHPF 2.0",
        level: Level::F3,
        no_loop_carried_anti: true,
        local_temp_elimination: true,
    }
}

/// Cray F90 2.0.1.0: fuses and contracts both temporary classes, but not
/// across loop-carried anti-dependences, and considers compiler and user
/// temporaries separately.
pub fn cray() -> CompilerModel {
    CompilerModel {
        name: "Cray F90 2.0.1.0",
        level: Level::C2F3,
        no_loop_carried_anti: true,
        local_temp_elimination: true,
    }
}

/// ZPL 1.13: the paper's technique — this crate's `fusion-core` pipeline,
/// unrestricted.
pub fn zpl() -> CompilerModel {
    CompilerModel {
        name: "ZPL 1.13",
        level: Level::C2F3,
        no_loop_carried_anti: false,
        local_temp_elimination: true,
    }
}

/// All five models, in the paper's row order.
pub fn all_models() -> Vec<CompilerModel> {
    vec![pgi(), ibm(), apr(), cray(), zpl()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zpl_is_unrestricted() {
        let z = zpl();
        assert!(!z.no_loop_carried_anti);
        assert_eq!(z.level, Level::C2F3);
    }

    #[test]
    fn model_names_match_figure6() {
        let names: Vec<_> = all_models().iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            vec![
                "PGI HPF 2.1",
                "IBM XLHPF 1.2",
                "APR XHPF 2.0",
                "Cray F90 2.0.1.0",
                "ZPL 1.13"
            ]
        );
    }
}
