//! Scalarized loop-nest IR.
//!
//! After the array-level optimizer (`fusion-core`) chooses a fusion
//! partition and a loop structure vector for each fusible cluster, the
//! program is *scalarized*: each cluster becomes one [`LoopNest`] and each
//! contracted array becomes a loop-local scalar ([`TempId`]). This crate
//! defines that representation, a pseudo-C pretty printer, and two
//! execution engines behind the [`Executor`] API — a tree-walking
//! interpreter ([`Interp`]) and a bytecode compiler + virtual machine
//! ([`Vm`]) — whose memory accesses stream through an [`Observer`]
//! (implemented by the `machine` crate's cache simulator).
//!
//! The IR corresponds to the Fortran 77 output of the paper's ZPL compiler
//! (Figure 2(c) of the paper).

mod bytecode;
pub mod exec;
pub mod interp;
pub mod ir;
mod par;
pub mod printer;
mod simd;
pub mod verifier;
pub mod vm;

pub use exec::{Engine, ExecLimits, ExecOpts, Executor, RunOutcome, TileStats};
pub use interp::{ErrorKind, ExecError, Interp, NoopObserver, Observer, RunStats};
pub use ir::{EExpr, ElemRef, ElemStmt, LStmt, LoopNest, ScalarProgram, TempId};
pub use verifier::VerifyDiagnostic;
pub use vm::{SharedProgram, Vm};
